"""The ZIV LLC: the zero-inclusion-victim guarantee and its machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import build, drive, tiny_config

ALL_ZIV = (
    "ziv:notinprc",
    "ziv:lrunotinprc",
    "ziv:maxrrpvnotinprc",
    "ziv:likelydead",
    "ziv:mrlikelydead",
)


def policy_for(scheme: str) -> str:
    return "hawkeye" if scheme in (
        "ziv:maxrrpvnotinprc", "ziv:mrlikelydead"
    ) else "lru"


class TestZeroInclusionVictimGuarantee:
    @pytest.mark.parametrize("scheme", ALL_ZIV)
    def test_no_llc_back_invalidations(self, scheme):
        h = drive(build(scheme, policy=policy_for(scheme)), 4000, seed=1)
        assert h.stats.back_invalidations_llc == 0
        assert h.stats.inclusion_victims_llc == 0

    @pytest.mark.parametrize("scheme", ALL_ZIV)
    def test_inclusion_property_holds(self, scheme):
        h = drive(build(scheme, policy=policy_for(scheme)), 3000, seed=2)
        assert h.inclusion_holds()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        scheme=st.sampled_from(ALL_ZIV),
    )
    def test_guarantee_on_random_traces(self, seed, scheme):
        """Property test of the paper's headline claim: for ANY access
        stream, the ZIV LLC generates zero LLC-replacement inclusion
        victims while keeping the hierarchy inclusive."""
        h = drive(build(scheme, policy=policy_for(scheme)), 500, seed=seed)
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()
        assert h.directory_consistent()

    def test_guarantee_under_heavy_pressure(self):
        """Private caches at 3/4 of the LLC: relocation happens constantly
        and must still never back-invalidate."""
        cfg = tiny_config(cores=2, l2=(1, 6), llc=(2, 2, 5))
        h = drive(build("ziv:notinprc", cfg), 6000, seed=4)
        assert h.stats.inclusion_victims_llc == 0
        assert h.stats.relocations > 0
        assert h.inclusion_holds()


class TestRelocationMechanics:
    def test_relocated_block_is_accessible(self):
        """After relocation, an access to the block from a new core is
        served through the directory pointer (paper III-C1)."""
        h = drive(build("ziv:notinprc"), 4000, seed=6)
        assert h.stats.relocations > 0

    def test_relocated_hits_counted(self):
        # shared-block workload over a small LLC, so relocations happen
        # and a second core later accesses relocated blocks
        import random

        cfg = tiny_config(cores=2, l1=(1, 2), l2=(1, 3), llc=(2, 2, 3))
        rng = random.Random(3)
        accesses = [
            (rng.randrange(2), rng.randrange(16), rng.random() < 0.2)
            for _ in range(6000)
        ]
        h = drive(build("ziv:notinprc", cfg), accesses)
        assert h.stats.relocations > 0
        assert h.stats.relocated_hits > 0

    def test_same_set_fallback_preferred(self):
        """When the original set satisfies the property, no relocation is
        performed (paper III-D: 'no need for a relocation')."""
        h = drive(build("ziv:notinprc"), 4000, seed=1)
        assert h.stats.relocation_same_set > 0

    def test_relocation_updates_directory_pointer(self):
        h = drive(build("ziv:notinprc"), 4000, seed=8)
        found_relocated = False
        for entry in h.directory.iter_valid():
            if entry.relocated:
                found_relocated = True
                blk = h.llc.block(
                    entry.reloc_bank, entry.reloc_set, entry.reloc_way
                )
                assert blk.relocated
                assert blk.addr == entry.addr
        # with this much traffic some relocated block should be live
        assert found_relocated or h.stats.relocations == 0

    def test_relocated_blocks_never_not_in_prc(self):
        h = drive(build("ziv:lrunotinprc"), 4000, seed=9)
        for bank in h.llc.banks:
            for _s, _w, blk in bank.iter_valid():
                if blk.relocated:
                    assert not blk.not_in_prc
                    assert h.privately_cached(blk.addr)

    def test_rechaining_counted(self):
        """A relocated block chosen again as victim relocates again."""
        cfg = tiny_config(cores=2, l2=(1, 6), llc=(2, 2, 5))
        h = drive(build("ziv:notinprc", cfg), 8000, seed=10)
        assert h.stats.relocations_rechained > 0

    def test_energy_records_relocations(self):
        h = drive(build("ziv:notinprc"), 4000, seed=6)
        assert h.energy.relocations == h.stats.relocations

    def test_interval_tracker_populated(self):
        h = drive(build("ziv:notinprc"), 4000, seed=6)
        stats = h.scheme.on_stats()
        if h.stats.relocations > 1:
            assert stats["reloc_intervals"] > 0


class TestCrossBank:
    def test_cross_bank_relocation_when_bank_saturated(self):
        """One bank entirely privately cached forces relocation into a
        neighbour bank (paper III-D1)."""
        # 2 banks x 2 sets x 2 ways = 8 LLC blocks; private capacity 6
        cfg = tiny_config(cores=2, l1=(1, 2), l2=(1, 3), llc=(2, 2, 3),
                          dir_geom=(2, 8))
        import random

        rng = random.Random(0)
        # core 0 hammers bank-0 addresses only (even addrs), filling bank 0
        # with privately cached blocks; core 1 sprays to keep pressure.
        accesses = []
        for i in range(4000):
            if i % 3 != 2:
                accesses.append((0, rng.randrange(8) * 2, False))
            else:
                accesses.append((1, rng.randrange(6) * 2, False))
        h = drive(build("ziv:notinprc", cfg), accesses)
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()

    def test_invariant_error_when_impossible(self):
        """If aggregate private capacity >= LLC capacity the config is
        rejected up front (the guarantee's precondition)."""
        from repro.params import ConfigError

        with pytest.raises(ConfigError):
            tiny_config(cores=2, l2=(4, 4), llc=(2, 2, 4))


class TestZIVWithDirectoryEvictions:
    def test_dir_eviction_kills_relocated_block(self):
        """A displaced directory entry tracking a relocated block must
        invalidate that block (paper III-F) -- under-provisioned
        directory."""
        cfg = tiny_config(cores=2, l2=(2, 4), llc=(2, 4, 4),
                          dir_geom=(1, 4))  # tiny directory
        h = drive(build("ziv:notinprc", cfg), 6000, seed=11)
        assert h.stats.directory_evictions > 0
        # inclusion victims from the LLC remain zero; directory evictions
        # may create dir-class victims (that is ZeroDEV's job to fix)
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()
        assert h.directory_consistent()

    def test_zerodev_eliminates_dir_victims(self):
        cfg = tiny_config(cores=2, l2=(2, 4), llc=(2, 4, 4),
                          dir_geom=(1, 4), directory_mode="zerodev")
        h = drive(build("ziv:notinprc", cfg), 6000, seed=11)
        assert h.stats.inclusion_victims_dir == 0
        assert h.stats.inclusion_victims_llc == 0
        assert h.directory.spill_count > 0
        assert h.inclusion_holds()


class TestAblationKnobs:
    def test_round_robin_flag_propagates(self):
        h = build("ziv:notinprc", round_robin=False)
        for bank_pvs in h.scheme.tracker.pvs:
            for pv in bank_pvs.values():
                assert pv.round_robin is False

    def test_round_robin_off_still_guarantees(self):
        h = drive(build("ziv:notinprc", round_robin=False), 3000, seed=3)
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()
