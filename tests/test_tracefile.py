"""Trace file round-trip and validation."""

import gzip

import pytest

from repro.sim.trace import CoreTrace, TraceRecord, Workload
from repro.sim.tracefile import TraceFormatError, load_workload, save_workload
from repro.workloads import homogeneous_mix


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        wl = homogeneous_mix("gcc.1", cores=3, n_accesses=120, seed=4)
        path = tmp_path / "mix.trace.gz"
        save_workload(wl, path)
        loaded = load_workload(path)
        assert loaded.name == wl.name
        assert loaded.cores == wl.cores
        for t1, t2 in zip(wl, loaded):
            assert t1.name == t2.name
            assert list(t1) == list(t2)

    def test_roundtrip_runs_identically(self, tmp_path):
        from tests.conftest import tiny_config
        from repro.sim.engine import run_workload

        wl = Workload(
            [CoreTrace([TraceRecord(1, a, a % 3 == 0, a) for a in
                        range(40)], "t")] * 2,
            "w",
        )
        path = tmp_path / "w.gz"
        save_workload(wl, path)
        loaded = load_workload(path)
        r1 = run_workload(tiny_config(), wl, "inclusive")
        r2 = run_workload(tiny_config(), loaded, "inclusive")
        assert r1.stats.llc_misses == r2.stats.llc_misses


class TestValidation:
    def write(self, tmp_path, text):
        p = tmp_path / "bad.gz"
        with gzip.open(p, "wt") as f:
            f.write(text)
        return p

    def test_wrong_field_count(self, tmp_path):
        p = self.write(tmp_path, "0 1 2 3\n")
        with pytest.raises(TraceFormatError, match="5 fields"):
            load_workload(p)

    def test_non_integer(self, tmp_path):
        p = self.write(tmp_path, "0 1 x 0 5\n")
        with pytest.raises(TraceFormatError, match="non-integer"):
            load_workload(p)

    def test_bad_rw_flag(self, tmp_path):
        p = self.write(tmp_path, "0 1 2 7 5\n")
        with pytest.raises(TraceFormatError, match="out of range"):
            load_workload(p)

    def test_empty_file(self, tmp_path):
        p = self.write(tmp_path, "# workload empty\n")
        with pytest.raises(TraceFormatError, match="no records"):
            load_workload(p)

    def test_sparse_core_ids(self, tmp_path):
        p = self.write(tmp_path, "0 1 2 0 5\n2 1 2 0 5\n")
        with pytest.raises(TraceFormatError, match="dense"):
            load_workload(p)

    def test_names_from_headers(self, tmp_path):
        p = self.write(
            tmp_path,
            "# workload myload\n# core 0 appA\n0 1 2 0 5\n",
        )
        wl = load_workload(p)
        assert wl.name == "myload"
        assert wl[0].name == "appA"
