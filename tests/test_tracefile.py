"""Trace file round-trip and validation."""

import gzip

import pytest

from repro.sim.trace import CoreTrace, TraceRecord, Workload
from repro.sim.tracefile import TraceFormatError, load_workload, save_workload
from repro.workloads import homogeneous_mix


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        wl = homogeneous_mix("gcc.1", cores=3, n_accesses=120, seed=4)
        path = tmp_path / "mix.trace.gz"
        save_workload(wl, path)
        loaded = load_workload(path)
        assert loaded.name == wl.name
        assert loaded.cores == wl.cores
        for t1, t2 in zip(wl, loaded):
            assert t1.name == t2.name
            assert list(t1) == list(t2)

    def test_roundtrip_runs_identically(self, tmp_path):
        from tests.conftest import tiny_config
        from repro.sim.engine import run_workload

        wl = Workload(
            [CoreTrace([TraceRecord(1, a, a % 3 == 0, a) for a in
                        range(40)], "t")] * 2,
            "w",
        )
        path = tmp_path / "w.gz"
        save_workload(wl, path)
        loaded = load_workload(path)
        r1 = run_workload(tiny_config(), wl, "inclusive")
        r2 = run_workload(tiny_config(), loaded, "inclusive")
        assert r1.stats.llc_misses == r2.stats.llc_misses


class TestValidation:
    def write(self, tmp_path, text):
        p = tmp_path / "bad.gz"
        with gzip.open(p, "wt") as f:
            f.write(text)
        return p

    def test_wrong_field_count(self, tmp_path):
        p = self.write(tmp_path, "0 1 2 3\n")
        with pytest.raises(TraceFormatError, match="5 fields"):
            load_workload(p)

    def test_non_integer(self, tmp_path):
        p = self.write(tmp_path, "0 1 x 0 5\n")
        with pytest.raises(TraceFormatError, match="non-integer"):
            load_workload(p)

    def test_bad_rw_flag(self, tmp_path):
        p = self.write(tmp_path, "0 1 2 7 5\n")
        with pytest.raises(TraceFormatError, match="out of range"):
            load_workload(p)

    def test_empty_file(self, tmp_path):
        p = self.write(tmp_path, "# workload empty\n")
        with pytest.raises(TraceFormatError, match="no records"):
            load_workload(p)

    def test_sparse_core_ids(self, tmp_path):
        p = self.write(tmp_path, "0 1 2 0 5\n2 1 2 0 5\n")
        with pytest.raises(TraceFormatError, match="dense"):
            load_workload(p)

    def test_names_from_headers(self, tmp_path):
        p = self.write(
            tmp_path,
            "# workload myload\n# core 0 appA\n0 1 2 0 5\n",
        )
        wl = load_workload(p)
        assert wl.name == "myload"
        assert wl[0].name == "appA"


class TestEmptyCoreRoundTrip:
    def test_empty_core_round_trips(self, tmp_path):
        # Regression: a '# core' header with no records used to vanish
        # on reload, failing the dense-core-id check.
        wl = Workload(
            [CoreTrace([TraceRecord(0, 1, False, 2)], "busy"),
             CoreTrace([], "idle")],
            name="halfidle",
        )
        path = tmp_path / "halfidle.trace.gz"
        save_workload(wl, path)
        loaded = load_workload(path)
        assert loaded.cores == 2
        assert len(loaded[1]) == 0
        assert loaded[1].name == "idle"
        assert loaded.fingerprint() == wl.fingerprint()

    def test_all_but_one_empty(self, tmp_path):
        wl = Workload(
            [CoreTrace([], "idle0"),
             CoreTrace([TraceRecord(1, 2, True, 3)], "busy"),
             CoreTrace([], "idle2")],
            name="mostlyidle",
        )
        path = tmp_path / "mostlyidle.trace.gz"
        save_workload(wl, path)
        loaded = load_workload(path)
        assert [len(t) for t in loaded] == [0, 1, 0]
        assert loaded.fingerprint() == wl.fingerprint()


class TestCorruptInput:
    def test_not_gzip_raises_trace_format_error(self, tmp_path):
        # Regression: raw BadGzipFile used to escape to the caller.
        p = tmp_path / "junk.trace.gz"
        p.write_bytes(b"this is not gzip data")
        with pytest.raises(TraceFormatError, match="corrupt or truncated"):
            load_workload(p)

    def test_truncated_gzip_raises_trace_format_error(self, tmp_path):
        good = tmp_path / "good.trace.gz"
        wl = homogeneous_mix("gcc.1", cores=2, n_accesses=200, seed=1)
        save_workload(wl, good)
        cut = tmp_path / "cut.trace.gz"
        cut.write_bytes(good.read_bytes()[:60])
        with pytest.raises(TraceFormatError, match="corrupt or truncated"):
            load_workload(cut)

    def test_error_names_the_path(self, tmp_path):
        p = tmp_path / "junk.trace.gz"
        p.write_bytes(b"nope")
        with pytest.raises(TraceFormatError, match="junk.trace.gz"):
            load_workload(p)

    def test_missing_file_is_not_wrapped(self, tmp_path):
        # Genuine I/O errors must keep their type (they are not a
        # malformed trace).
        with pytest.raises(FileNotFoundError):
            load_workload(tmp_path / "absent.trace.gz")


class TestNameResolution:
    def write_headerless(self, path):
        with gzip.open(path, "wt") as f:
            f.write("0 1 2 0 5\n")

    def test_strips_trace_gz(self, tmp_path):
        # Regression: path.stem left 'foo.trace' for 'foo.trace.gz'.
        p = tmp_path / "foo.trace.gz"
        self.write_headerless(p)
        assert load_workload(p).name == "foo"

    @pytest.mark.parametrize("filename,expected", [
        ("foo.gz", "foo"),
        ("foo.trace", "foo"),
        ("foo.txt.gz", "foo"),
        ("foo", "foo"),
        (".trace", ".trace"),  # suffix-only names are kept whole
    ])
    def test_suffix_stripping(self, tmp_path, filename, expected):
        from repro.sim.tracefile import default_workload_name

        assert default_workload_name(tmp_path / filename) == expected

    def test_header_beats_filename(self, tmp_path):
        p = tmp_path / "foo.trace.gz"
        with gzip.open(p, "wt") as f:
            f.write("# workload named\n0 1 2 0 5\n")
        assert load_workload(p).name == "named"
