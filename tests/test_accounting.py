"""Accounting identities: counters must balance exactly.

These identities hold by construction of the access flow and catch
double-counting regressions anywhere in the hierarchy:

* every access is an L1 hit or an L1 miss;
* every L1 miss is an L2 hit or an L2 miss;
* every (demand) L2 miss is an LLC hit or an LLC miss;
* in an inclusive hierarchy every demand LLC miss reads memory;
* DRAM reads = demand misses to memory + prefetch fills from memory.
"""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import build, drive, tiny_config

from repro.params import PrefetchParams

SCHEMES = (
    "inclusive",
    "noninclusive",
    "qbs",
    "sharp",
    "charonbase",
    "tlh",
    "eci",
    "ziv:notinprc",
    "ziv:likelydead",
)


def check_identities(h):
    s = h.stats
    l1_hits = sum(c.l1_hits for c in s.cores)
    l1_misses = sum(c.l1_misses for c in s.cores)
    l2_hits = sum(c.l2_hits for c in s.cores)
    l2_misses = s.l2_misses
    assert l1_hits + l1_misses == s.total_accesses
    assert l2_hits + l2_misses == l1_misses
    assert s.llc_hits + s.llc_misses == l2_misses


@pytest.mark.parametrize("scheme", SCHEMES)
def test_identities_per_scheme(scheme):
    h = drive(build(scheme), 2500, seed=3)
    check_identities(h)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    scheme=st.sampled_from(["inclusive", "noninclusive", "ziv:mrlikelydead"]),
)
def test_identities_random(seed, scheme):
    policy = "hawkeye" if scheme == "ziv:mrlikelydead" else "lru"
    h = drive(build(scheme, policy=policy), 600, seed=seed)
    check_identities(h)


def test_inclusive_demand_misses_all_read_memory():
    h = drive(build("inclusive"), 2500, seed=3)
    assert h.stats.dram_reads == h.stats.llc_misses


def test_prefetch_reads_accounted_separately():
    cfg = tiny_config(llc=(2, 8, 4)).replace(
        prefetch=PrefetchParams(kind="nextline", degree=1)
    )
    h = drive(build("inclusive", cfg), 2500, seed=3)
    check_identities(h)
    # demand misses + prefetch memory fetches = all DRAM reads
    assert h.stats.dram_reads >= h.stats.llc_misses
    assert h.stats.dram_reads <= h.stats.llc_misses + h.stats.prefetch_fills


def test_energy_access_counters_match_stats():
    h = drive(build("inclusive"), 1500, seed=4)
    s = h.stats
    assert h.energy.l1_accesses == s.total_accesses
    assert h.energy.l2_accesses == sum(c.l1_misses for c in s.cores)
    assert h.energy.llc_tag_accesses == s.l2_misses
    assert h.energy.dram_accesses == s.dram_reads + s.dram_writes


def test_ziv_relocation_energy_matches_relocation_count():
    h = drive(build("ziv:lrunotinprc"), 3000, seed=5)
    assert h.energy.relocations == h.stats.relocations
