"""Relocation FIFO model and interval statistics."""

from repro.core.relocation import RelocationTracker


class TestIntervals:
    def test_first_relocation_records_no_interval(self):
        t = RelocationTracker(banks=2)
        t.record(0, cycle=100)
        assert t.intervals_recorded == 0

    def test_interval_bucketing(self):
        t = RelocationTracker(banks=1)
        t.record(0, cycle=0)
        t.record(0, cycle=1)     # interval 1 -> bucket 0
        t.record(0, cycle=9)     # interval 8 -> bucket 3
        t.record(0, cycle=1033)  # interval 1024 -> bucket 10
        assert t.interval_log2_histogram == {0: 1, 3: 1, 10: 1}

    def test_per_bank_independent(self):
        t = RelocationTracker(banks=2)
        t.record(0, cycle=0)
        t.record(1, cycle=5)
        assert t.intervals_recorded == 0  # different banks, no interval

    def test_short_interval_counter(self):
        t = RelocationTracker(banks=1, nextrs_latency=3)
        t.record(0, 0)
        t.record(0, 1)  # interval 1 < 3
        t.record(0, 100)
        assert t.short_intervals == 1

    def test_cdf_monotone_to_one(self):
        t = RelocationTracker(banks=1)
        cycles = [0, 2, 3, 10, 500, 501, 5000]
        for c in cycles:
            t.record(0, c)
        cdf = t.cdf()
        fracs = [f for _b, f in cdf]
        assert fracs == sorted(fracs)
        assert abs(fracs[-1] - 1.0) < 1e-9

    def test_fraction_below(self):
        t = RelocationTracker(banks=1)
        t.record(0, 0)
        t.record(0, 1)      # bucket 0
        t.record(0, 1001)   # bucket 9
        assert t.fraction_below(2) == 0.5
        assert t.fraction_below(1 << 20) == 1.0


class TestFIFO:
    def test_spaced_relocations_keep_fifo_shallow(self):
        t = RelocationTracker(banks=1, nextrs_latency=3)
        for i in range(20):
            t.record(0, i * 100)
        assert t.fifo_peak == 1
        assert t.fifo_overflows == 0

    def test_burst_grows_occupancy(self):
        t = RelocationTracker(banks=1, fifo_depth=8, nextrs_latency=3)
        for _ in range(4):
            t.record(0, 10)  # simultaneous burst
        assert t.fifo_peak == 4

    def test_overflow_detected(self):
        t = RelocationTracker(banks=1, fifo_depth=2, nextrs_latency=3)
        for _ in range(5):
            t.record(0, 0)
        assert t.fifo_overflows > 0
