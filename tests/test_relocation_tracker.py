"""Relocation FIFO model and interval statistics."""

import random

from repro.core.relocation import RelocationTracker, interval_bucket


class TestIntervals:
    def test_first_relocation_records_no_interval(self):
        t = RelocationTracker(banks=2)
        t.record(0, cycle=100)
        assert t.intervals_recorded == 0

    def test_interval_bucketing(self):
        t = RelocationTracker(banks=1)
        t.record(0, cycle=0)
        t.record(0, cycle=1)     # interval 1 -> bucket 0
        t.record(0, cycle=9)     # interval 8 -> bucket 3
        t.record(0, cycle=1033)  # interval 1024 -> bucket 10
        assert t.interval_log2_histogram == {0: 1, 3: 1, 10: 1}

    def test_per_bank_independent(self):
        t = RelocationTracker(banks=2)
        t.record(0, cycle=0)
        t.record(1, cycle=5)
        assert t.intervals_recorded == 0  # different banks, no interval

    def test_short_interval_counter(self):
        t = RelocationTracker(banks=1, nextrs_latency=3)
        t.record(0, 0)
        t.record(0, 1)  # interval 1 < 3
        t.record(0, 100)
        assert t.short_intervals == 1

    def test_cdf_monotone_to_one(self):
        t = RelocationTracker(banks=1)
        cycles = [0, 2, 3, 10, 500, 501, 5000]
        for c in cycles:
            t.record(0, c)
        cdf = t.cdf()
        fracs = [f for _b, f in cdf]
        assert fracs == sorted(fracs)
        assert abs(fracs[-1] - 1.0) < 1e-9

    def test_fraction_below(self):
        t = RelocationTracker(banks=1)
        t.record(0, 0)
        t.record(0, 1)      # bucket 0
        t.record(0, 1001)   # bucket 9
        assert t.fraction_below(2) == 0.5
        assert t.fraction_below(1 << 20) == 1.0

    def test_fraction_below_exact_for_non_power_of_two(self):
        """Regression: fraction_below used to be computed from the log2
        buckets, which lumps intervals 2 and 3 together -- so a threshold
        of 3 (the nextRS latency) over-counted.  It must be exact."""
        t = RelocationTracker(banks=1, nextrs_latency=3)
        t.record(0, 0)
        for cycle in (1, 3, 6, 10):  # intervals 1, 2, 3, 4
            t.record(0, cycle)
        assert t.fraction_below(3) == 2 / 4   # intervals 1, 2
        assert t.fraction_below(4) == 3 / 4   # + interval 3
        assert t.fraction_below(1) == 0.0     # interval 0 never recorded

    def test_fraction_below_agrees_with_short_interval_counter(self):
        """The two views of 'interval shorter than the nextRS latency'
        must always coincide, whatever the latency."""
        for latency in (2, 3, 5):
            t = RelocationTracker(banks=2, nextrs_latency=latency)
            rng = random.Random(latency)
            cycles = [0, 0]
            for _ in range(200):
                bank = rng.randrange(2)
                cycles[bank] += rng.randrange(12)
                t.record(bank, cycles[bank])
            assert (
                t.fraction_below(latency)
                == t.short_intervals / t.intervals_recorded
            )

    def test_log2_histogram_derived_from_exact_counts(self):
        t = RelocationTracker(banks=1)
        t.record(0, 0)
        for cycle in (2, 5, 12):  # intervals 2, 3, 7 -> buckets 1, 1, 2
            t.record(0, cycle)
        assert t.interval_counts == {2: 1, 3: 1, 7: 1}
        assert t.interval_log2_histogram == {1: 2, 2: 1}
        assert interval_bucket(1) == 0
        assert interval_bucket(1024) == 10


class TestFIFO:
    def test_spaced_relocations_keep_fifo_shallow(self):
        t = RelocationTracker(banks=1, nextrs_latency=3)
        for i in range(20):
            t.record(0, i * 100)
        assert t.fifo_peak == 1
        assert t.fifo_overflows == 0

    def test_burst_grows_occupancy(self):
        t = RelocationTracker(banks=1, fifo_depth=8, nextrs_latency=3)
        for _ in range(4):
            t.record(0, 10)  # simultaneous burst
        assert t.fifo_peak == 4

    def test_overflow_detected(self):
        t = RelocationTracker(banks=1, fifo_depth=2, nextrs_latency=3)
        for _ in range(5):
            t.record(0, 0)
        assert t.fifo_overflows > 0

    def test_deque_matches_list_reference_on_burst_trace(self):
        """Regression for the departures queue moving from a list with
        ``pop(0)`` to ``deque.popleft()``: the occupancy statistics must
        be identical on a bursty trace that exercises overflow."""
        def reference(events, fifo_depth, latency):
            pending, peak, overflows = [], 0, 0
            for cycle in events:
                while pending and pending[0] <= cycle:
                    pending.pop(0)  # the old O(n) behaviour, verbatim
                start = max(cycle, pending[-1] if pending else cycle)
                pending.append(start + latency)
                peak = max(peak, len(pending))
                if len(pending) > fifo_depth:
                    overflows += 1
            return peak, overflows

        rng = random.Random(7)
        cycle, events = 0, []
        for _ in range(500):
            # bursts of back-to-back relocations with quiet gaps between
            cycle += rng.choice((0, 0, 1, 1, 2, 40))
            events.append(cycle)
        t = RelocationTracker(banks=1, fifo_depth=8, nextrs_latency=3)
        for c in events:
            t.record(0, c)
        peak, overflows = reference(events, fifo_depth=8, latency=3)
        assert t.fifo_peak == peak
        assert t.fifo_overflows == overflows
        assert t.fifo_overflows > 0  # the trace actually overflowed
        assert t.intervals_recorded == len(events) - 1
