"""The banked LLC wrapper."""

import pytest

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext
from repro.hierarchy.llc import LastLevelCache
from repro.params import LLCGeometry

GEOM = LLCGeometry(banks=4, sets_per_bank=8, ways=2)


def make(policy="lru", **kw):
    return LastLevelCache(GEOM, policy, **kw)


class TestAddressing:
    def test_bank_and_set_consistent_with_geometry(self):
        llc = make()
        for addr in (0, 5, 123, 4096 + 17):
            assert llc.bank_of(addr) == GEOM.bank_index(addr)
            assert llc.set_of(addr) == GEOM.set_index(addr)

    def test_bank_set_assoc_uses_shifted_index(self):
        llc = make()
        addr = 0b101100  # bank = 0b00, set = 0b1011
        bank = llc.bank_of(addr)
        assert llc.banks[bank].set_index(addr) == llc.set_of(addr)

    def test_consecutive_addrs_stripe_over_banks(self):
        llc = make()
        banks = [llc.bank_of(a) for a in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]


class TestResidency:
    def fill(self, llc, addr):
        bank, set_idx = llc.bank_of(addr), llc.set_of(addr)
        way = llc.banks[bank].find_invalid_way(set_idx)
        return llc.banks[bank].install(set_idx, way, addr, AccessContext())

    def test_location_and_probe(self):
        llc = make()
        self.fill(llc, 77)
        bank, set_idx, way = llc.location(77)
        assert way >= 0
        assert llc.block(bank, set_idx, way).addr == 77
        assert llc.probe(77) == way
        assert llc.probe(78) < 0

    def test_relocated_copy_invisible_to_probe_but_findable(self):
        llc = make()
        src = CacheBlock()
        src.addr = 77
        src.valid = True
        host_bank, host_set = 2, 5
        llc.banks[host_bank].install_relocated(
            host_set, 0, src, AccessContext()
        )
        assert llc.probe(77) < 0
        assert llc.find_anywhere(77) == (host_bank, host_set, 0)

    def test_find_anywhere_absent(self):
        assert make().find_anywhere(99) is None

    def test_resident_addrs_and_occupancy(self):
        llc = make()
        for a in (1, 2, 3, 64):
            self.fill(llc, a)
        assert llc.resident_addrs() == {1, 2, 3, 64}
        assert llc.occupancy() == 4
        assert llc.blocks_total == GEOM.blocks


class TestPolicies:
    def test_hawkeye_predictor_shared_across_banks(self):
        llc = make(policy="hawkeye")
        predictors = {id(b.policy.predictor) for b in llc.banks}
        assert len(predictors) == 1
        assert llc.hawkeye_predictor is not None

    def test_belady_requires_oracle(self):
        with pytest.raises(ValueError):
            make(policy="belady")

    def test_belady_with_oracle(self):
        from repro.cache.replacement import NextUseOracle

        llc = make(policy="belady", oracle=NextUseOracle([1, 2, 1]))
        assert llc.banks[0].policy.oracle is llc.banks[1].policy.oracle

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make(policy="mockingjay")

    def test_policy_kwargs_forwarded(self):
        llc = make(policy="srrip", policy_kwargs={"rrpv_bits": 2})
        assert llc.banks[0].policy.max_rrpv == 3
