"""SRRIP / BRRIP / DRRIP policies."""

from repro.cache.replacement import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.cache.set_assoc import AccessContext, SetAssociativeCache


def fresh(policy, sets=4, ways=4):
    return SetAssociativeCache(sets, ways, policy)


def fill_way(cache, set_idx, way, addr):
    cache.install(set_idx, way, addr, AccessContext())


class TestSRRIP:
    def test_insertion_rrpv_is_long(self):
        c = fresh(SRRIPPolicy())
        fill_way(c, 0, 0, 0)
        assert c.blocks[0][0].rrpv == c.policy.max_rrpv - 1

    def test_hit_promotes_to_zero(self):
        c = fresh(SRRIPPolicy())
        fill_way(c, 0, 0, 0)
        c.touch(0, AccessContext())
        assert c.blocks[0][0].rrpv == 0

    def test_victim_ages_set_until_max(self):
        c = fresh(SRRIPPolicy(), sets=1, ways=2)
        fill_way(c, 0, 0, 0)
        fill_way(c, 0, 1, 8)
        c.touch(0, AccessContext())  # rrpv 0
        way = c.policy.victim(0, AccessContext())
        assert c.blocks[0][way].addr == 8
        assert c.blocks[0][way].rrpv == c.policy.max_rrpv

    def test_ranked_is_descending_rrpv(self):
        c = fresh(SRRIPPolicy(), sets=1, ways=3)
        for w, a in enumerate((0, 8, 16)):
            fill_way(c, 0, w, a)
        c.touch(8, AccessContext())
        ranked = list(c.policy.ranked_victims(0, AccessContext()))
        rrpvs = [c.blocks[0][w].rrpv for w in ranked]
        assert rrpvs == sorted(rrpvs, reverse=True)

    def test_rrpv_bits_parameter(self):
        assert SRRIPPolicy(rrpv_bits=2).max_rrpv == 3

    def test_promote_resets_rrpv(self):
        c = fresh(SRRIPPolicy())
        fill_way(c, 0, 0, 0)
        c.promote(0, 0, AccessContext())
        assert c.blocks[0][0].rrpv == 0


class TestBRRIP:
    def test_mostly_distant_insertion(self):
        c = fresh(BRRIPPolicy(seed=3), sets=1, ways=8)
        maxr = c.policy.max_rrpv
        rrpvs = []
        for w in range(8):
            fill_way(c, 0, w, w * 8)
            rrpvs.append(c.blocks[0][w].rrpv)
        assert rrpvs.count(maxr) >= 6  # long insertions dominate


class TestDRRIP:
    def test_leader_sets_exist(self):
        c = fresh(DRRIPPolicy(), sets=16, ways=2)
        kinds = {c.policy._leader(s) for s in range(16)}
        assert "srrip" in kinds and "brrip" in kinds and "follower" in kinds

    def test_psel_moves(self):
        c = fresh(DRRIPPolicy(), sets=16, ways=2)
        p0 = c.policy._psel
        # fill into an srrip leader set -> psel increments
        srrip_set = next(
            s for s in range(16) if c.policy._leader(s) == "srrip"
        )
        fill_way(c, srrip_set, 0, srrip_set)
        assert c.policy._psel == p0 + 1

    def test_followers_follow_psel(self):
        c = fresh(DRRIPPolicy(), sets=16, ways=2)
        follower = next(
            s for s in range(16) if c.policy._leader(s) == "follower"
        )
        c.policy._psel = c.policy._psel_max  # strongly SRRIP
        fill_way(c, follower, 0, follower)
        assert c.blocks[follower][0].rrpv == c.policy.max_rrpv - 1
