"""Simulation engine: scheduling modes, accounting, determinism."""

import pytest

from tests.conftest import tiny_config

from repro.hierarchy.cmp import CacheHierarchy
from repro.schemes import make_scheme
from repro.sim.engine import Simulation, run_workload
from repro.sim.trace import CoreTrace, TraceRecord, Workload


def workload(cores=2, length=100, stride=1):
    traces = []
    for c in range(cores):
        recs = [
            TraceRecord(2, (c + 1) * 1000 + i * stride, i % 5 == 0, i % 7)
            for i in range(length)
        ]
        traces.append(CoreTrace(recs, name=f"app{c}"))
    return Workload(traces, name="wl")


def sim(wl=None, scheduling="timing", scheme="inclusive", cfg=None):
    cfg = cfg or tiny_config()
    wl = wl or workload(cfg.cores)
    h = CacheHierarchy(cfg, make_scheme(scheme))
    return Simulation(h, wl, scheduling=scheduling)


class TestValidation:
    def test_bad_scheduling_mode(self):
        with pytest.raises(ValueError):
            sim(scheduling="ooo")

    def test_core_count_mismatch(self):
        with pytest.raises(ValueError):
            sim(wl=workload(cores=3))


class TestTimingMode:
    def test_instructions_accounted(self):
        r = sim().run()
        # each record represents gap+1 = 3 instructions
        assert r.stats.cores[0].instructions == 300
        assert r.stats.total_accesses == 200

    def test_cycles_positive_and_max_of_cores(self):
        r = sim().run()
        assert r.cycles == max(c.cycles for c in r.stats.cores)
        assert all(c.cycles > 0 for c in r.stats.cores)

    def test_ipc_computed(self):
        r = sim().run()
        assert all(0 < c.ipc < 4 for c in r.stats.cores)

    def test_deterministic(self):
        r1 = sim().run()
        r2 = sim().run()
        assert r1.cycles == r2.cycles
        assert r1.stats.llc_misses == r2.stats.llc_misses

    def test_result_carries_energy_and_scheme_stats(self):
        r = sim(scheme="ziv:notinprc").run()
        assert r.energy is not None
        assert isinstance(r.scheme_stats, dict)

    def test_memory_latency_slows_execution(self):
        """A trace with no reuse must take longer than a cache-resident
        one of equal length."""
        cfg = tiny_config()
        hot = Workload(
            [
                CoreTrace(
                    [TraceRecord(2, 1000 * (c + 1) + (i % 2), False, 0)
                     for i in range(200)]
                )
                for c in range(2)
            ],
            "hot",
        )
        cold = Workload(
            [
                CoreTrace(
                    [TraceRecord(2, 1000 * (c + 1) + i * 64, False, 0)
                     for i in range(200)]
                )
                for c in range(2)
            ],
            "cold",
        )
        r_hot = sim(wl=hot, cfg=cfg).run()
        r_cold = sim(wl=cold, cfg=tiny_config()).run()
        assert r_cold.cycles > r_hot.cycles


class TestLockstepMode:
    def test_lockstep_interleaves_by_index(self):
        r = sim(scheduling="lockstep").run()
        assert r.cycles == 200  # one "cycle" per access

    def test_lockstep_vs_timing_same_functional_counts_single_core(self):
        """With one core there is no interleaving ambiguity: both modes
        must produce identical miss counts."""
        cfg = tiny_config(cores=1)
        wl = workload(cores=1)
        r1 = sim(wl=wl, cfg=cfg, scheduling="timing").run()
        wl2 = workload(cores=1)
        r2 = sim(wl=wl2, cfg=tiny_config(cores=1),
                 scheduling="lockstep").run()
        assert r1.stats.llc_misses == r2.stats.llc_misses
        assert r1.stats.l2_misses == r2.stats.l2_misses


class TestRunWorkload:
    def test_one_call_runner(self):
        cfg = tiny_config()
        r = run_workload(cfg, workload(), "ziv:notinprc", llc_policy="lru")
        assert r.scheme == "ziv:notinprc"
        assert r.policy == "lru"
        assert r.stats.inclusion_victims_llc == 0

    def test_belady_with_oracle(self):
        from repro.cache.replacement import NextUseOracle
        from repro.sim.trace import lockstep_stream

        cfg = tiny_config()
        wl = workload()
        oracle = NextUseOracle(lockstep_stream(wl))
        r = run_workload(
            cfg, wl, "inclusive", llc_policy="belady",
            scheduling="lockstep", oracle=oracle,
        )
        assert r.stats.llc_misses > 0
