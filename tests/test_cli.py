"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        p = build_parser()
        for cmd in (["list"], ["config"], ["figure", "table1"],
                    ["run"], ["sidechannel"]):
            assert p.parse_args(cmd).command == cmd[0]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ziv:likelydead" in out
        assert "hawkeye" in out
        assert "fig08_lru_perf" in out

    def test_config(self, capsys):
        assert main(["config"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_figure_smoke(self, capsys):
        assert main(["figure", "table1", "--scale", "smoke"]) == 0
        assert "scaled" in capsys.readouterr().out

    def test_run_reports_stats(self, capsys):
        assert main([
            "run", "--workload", "leela.1", "--scheme", "ziv:notinprc",
            "--accesses", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "incl. victims : 0 (LLC)" in out
        assert "relocations" in out

    def test_run_audited(self, capsys):
        assert main([
            "run", "--workload", "leela.1", "--scheme", "ziv:notinprc",
            "--accesses", "400", "--audit", "50,fail",
        ]) == 0
        out = capsys.readouterr().out
        assert "audit: OK" in out
        assert "0 violations" in out

    def test_run_audit_flag_defaults_to_end(self, capsys):
        assert main([
            "run", "--workload", "leela.1", "--accesses", "300", "--audit",
        ]) == 0
        assert "audit: OK (1 sweep(s), 0 violations)" in \
            capsys.readouterr().out

    def test_run_unaudited_prints_no_audit_line(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert main([
            "run", "--workload", "leela.1", "--accesses", "300",
        ]) == 0
        assert "audit:" not in capsys.readouterr().out

    def test_run_multithreaded(self, capsys):
        assert main([
            "run", "--workload", "mt:vips", "--accesses", "300",
        ]) == 0
        assert "vips" in capsys.readouterr().out

    def test_sidechannel(self, capsys):
        assert main(["sidechannel", "--trials", "8"]) == 0
        out = capsys.readouterr().out
        assert "inclusive" in out and "noninclusive" in out

    def test_run_with_config_file(self, capsys, tmp_path):
        from repro.config_io import save_config
        from repro.params import scaled_config

        path = tmp_path / "m.json"
        save_config(scaled_config("256KB"), path)
        assert main([
            "run", "--workload", "leela.1", "--accesses", "300",
            "--config", str(path),
        ]) == 0
        assert "cycles" in capsys.readouterr().out


class TestTraceCommands:
    @pytest.fixture()
    def text_trace(self, tmp_path):
        from repro.sim.tracefile import save_workload
        from repro.workloads import homogeneous_mix

        wl = homogeneous_mix("gcc.1", cores=2, n_accesses=400, seed=2)
        path = tmp_path / "gcc.trace.gz"
        save_workload(wl, path)
        return path

    def test_convert_info_verify(self, capsys, text_trace, tmp_path):
        dst = tmp_path / "gcc.tracebin"
        assert main(["trace", "convert", str(text_trace), str(dst)]) == 0
        out = capsys.readouterr().out
        assert "fingerprint:" in out
        assert main(["trace", "info", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "records: 800" in out and "cores: 2" in out
        assert main(["trace", "verify", str(dst)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_convert_needs_destination(self, capsys, text_trace):
        assert main(["trace", "convert", str(text_trace)]) == 2

    def test_verify_reports_corruption(self, capsys, text_trace, tmp_path):
        dst = tmp_path / "gcc.tracebin"
        assert main(["trace", "convert", str(text_trace), str(dst)]) == 0
        capsys.readouterr()
        data = bytearray(dst.read_bytes())
        data[200] ^= 0x01
        dst.write_bytes(bytes(data))
        assert main(["trace", "verify", str(dst)]) == 1
        assert "corrupt" in capsys.readouterr().err

    def test_run_streams_binary_trace(self, capsys, text_trace, tmp_path,
                                      monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        dst = tmp_path / "gcc.tracebin"
        assert main(["trace", "convert", str(text_trace), str(dst)]) == 0
        capsys.readouterr()
        assert main([
            "run", "--trace", str(dst), "--scheme", "ziv:notinprc",
        ]) == 0
        out = capsys.readouterr().out
        assert "accesses      : 800" in out

    def test_run_checkpoint_stop_and_resume(self, capsys, text_trace,
                                            tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        dst = tmp_path / "gcc.tracebin"
        assert main(["trace", "convert", str(text_trace), str(dst)]) == 0
        ckpt = tmp_path / "run.ckpt"
        capsys.readouterr()
        assert main([
            "run", "--trace", str(dst), "--scheme", "inclusive",
            "--checkpoint", str(ckpt), "--checkpoint-every", "200",
            "--stop-after", "400",
        ]) == 3
        assert "resume with --resume" in capsys.readouterr().out
        assert ckpt.exists()
        assert main([
            "run", "--trace", str(dst), "--scheme", "inclusive",
            "--checkpoint", str(ckpt), "--resume",
        ]) == 0
        assert "accesses      : 800" in capsys.readouterr().out

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["run", "--resume"]) == 2
