"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        p = build_parser()
        for cmd in (["list"], ["config"], ["figure", "table1"],
                    ["run"], ["sidechannel"]):
            assert p.parse_args(cmd).command == cmd[0]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ziv:likelydead" in out
        assert "hawkeye" in out
        assert "fig08_lru_perf" in out

    def test_config(self, capsys):
        assert main(["config"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_figure_smoke(self, capsys):
        assert main(["figure", "table1", "--scale", "smoke"]) == 0
        assert "scaled" in capsys.readouterr().out

    def test_run_reports_stats(self, capsys):
        assert main([
            "run", "--workload", "leela.1", "--scheme", "ziv:notinprc",
            "--accesses", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "incl. victims : 0 (LLC)" in out
        assert "relocations" in out

    def test_run_audited(self, capsys):
        assert main([
            "run", "--workload", "leela.1", "--scheme", "ziv:notinprc",
            "--accesses", "400", "--audit", "50,fail",
        ]) == 0
        out = capsys.readouterr().out
        assert "audit: OK" in out
        assert "0 violations" in out

    def test_run_audit_flag_defaults_to_end(self, capsys):
        assert main([
            "run", "--workload", "leela.1", "--accesses", "300", "--audit",
        ]) == 0
        assert "audit: OK (1 sweep(s), 0 violations)" in \
            capsys.readouterr().out

    def test_run_unaudited_prints_no_audit_line(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert main([
            "run", "--workload", "leela.1", "--accesses", "300",
        ]) == 0
        assert "audit:" not in capsys.readouterr().out

    def test_run_multithreaded(self, capsys):
        assert main([
            "run", "--workload", "mt:vips", "--accesses", "300",
        ]) == 0
        assert "vips" in capsys.readouterr().out

    def test_sidechannel(self, capsys):
        assert main(["sidechannel", "--trials", "8"]) == 0
        out = capsys.readouterr().out
        assert "inclusive" in out and "noninclusive" in out

    def test_run_with_config_file(self, capsys, tmp_path):
        from repro.config_io import save_config
        from repro.params import scaled_config

        path = tmp_path / "m.json"
        save_config(scaled_config("256KB"), path)
        assert main([
            "run", "--workload", "leela.1", "--accesses", "300",
            "--config", str(path),
        ]) == 0
        assert "cycles" in capsys.readouterr().out
