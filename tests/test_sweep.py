"""The parameter-sweep utility."""

import pytest

from tests.conftest import tiny_config

from repro.sim.sweep import SweepPoint, format_sweep, run_sweep
from repro.sim.trace import CoreTrace, TraceRecord, Workload


def workloads(n=2):
    out = []
    for k in range(n):
        traces = [
            CoreTrace(
                [TraceRecord(1, (c + 1) * 256 + (i * (k + 1)) % 30,
                             False, i % 4) for i in range(250)]
            )
            for c in range(2)
        ]
        out.append(Workload(traces, f"wl{k}"))
    return out


def points():
    return [
        SweepPoint("I-LRU", tiny_config(), "inclusive", "lru"),
        SweepPoint("ZIV", tiny_config(), "ziv:notinprc", "lru"),
    ]


class TestRunSweep:
    def test_baseline_speedup_is_one(self):
        rows = run_sweep(points(), workloads())
        assert rows[0].speedup == pytest.approx(1.0)
        assert rows[0].speedup_min == pytest.approx(1.0)

    def test_row_fields_populated(self):
        rows = run_sweep(points(), workloads())
        ziv = rows[1]
        assert ziv.scheme == "ziv:notinprc"
        assert ziv.inclusion_victims == 0
        assert ziv.llc_misses > 0
        assert len(ziv.results) == 2

    def test_progress_callback(self):
        seen = []
        run_sweep(points(), workloads(1), progress=seen.append)
        assert any("ZIV" in s for s in seen)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep([], workloads())
        with pytest.raises(ValueError):
            run_sweep(points(), [])

    def test_explicit_baseline(self):
        pts = points()
        rows = run_sweep(pts, workloads(), baseline=pts[1])
        assert rows[1].speedup == pytest.approx(1.0)

    def test_format(self):
        rows = run_sweep(points(), workloads(1))
        out = format_sweep(rows)
        assert "I-LRU" in out and "ZIV" in out and "speedup" in out
