"""Workload characterisation tooling."""

import pytest

from repro.sim.trace import CoreTrace, TraceRecord, Workload
from repro.workloads import build_trace, multithreaded_workload
from repro.workloads.analysis import (
    format_profile_table,
    profile_trace,
    profile_workload,
    reuse_distances,
    shared_footprint,
)


def trace(addrs, writes=(), name="t"):
    return CoreTrace(
        [TraceRecord(1, a, a in writes, a & 7) for a in addrs], name
    )


class TestReuseDistances:
    def test_all_cold(self):
        hist, cold = reuse_distances([1, 2, 3])
        assert hist == {}
        assert cold == 3

    def test_immediate_reuse_distance_zero(self):
        hist, cold = reuse_distances([1, 1])
        assert hist == {0: 1}
        assert cold == 1

    def test_stack_distance_counts_distinct_blocks(self):
        # 1 2 3 1: distance of the second 1 is 2 -> bucket log2(2) = 1
        hist, cold = reuse_distances([1, 2, 3, 1])
        assert hist == {1: 1}
        assert cold == 3

    def test_touching_same_block_does_not_grow_distance(self):
        # 1 2 2 2 1: only one distinct block between the 1s
        hist, _ = reuse_distances([1, 2, 2, 2, 1])
        assert 0 in hist  # distance 1 -> bucket 0


class TestProfile:
    def test_basic_fields(self):
        p = profile_trace(trace([1, 2, 1, 3], writes={2}))
        assert p.accesses == 4
        assert p.footprint == 3
        assert p.write_ratio == 0.25
        assert p.cold_fraction == 0.75
        assert p.instructions == 8
        assert p.apki == pytest.approx(500.0)

    def test_reuse_fraction_within(self):
        # tight loop over 2 blocks: every reuse fits in any capacity >= 2
        p = profile_trace(trace([1, 2] * 50))
        assert p.reuse_fraction_within(4) == 1.0
        assert p.reuse_fraction_within(1) == 0.0

    def test_profiles_match_generator_parameters(self):
        from repro.workloads.profiles import get_profile

        prof = get_profile("leela.2")
        t = build_trace(prof, 3000, seed=1)
        p = profile_trace(t)
        assert p.footprint <= prof.footprint() + 8
        assert abs(p.write_ratio - prof.write_ratio) < 0.05

    def test_hot_profile_has_short_reuse(self):
        hot = profile_trace(build_trace("exchange2.2", 2000, seed=1))
        streaming = profile_trace(build_trace("lbm.2", 2000, seed=1))
        assert hot.reuse_fraction_within(64) > 0.9
        assert streaming.reuse_fraction_within(64) < 0.5


class TestWorkloadLevel:
    def test_profile_workload(self):
        wl = Workload([trace([1, 2]), trace([3])], "w")
        assert len(profile_workload(wl)) == 2

    def test_shared_footprint_multiprogrammed_zero(self):
        wl = Workload([trace([1, 2]), trace([10, 11])], "w")
        assert shared_footprint(wl) == 0

    def test_shared_footprint_multithreaded_positive(self):
        wl = multithreaded_workload("applu", cores=4, n_accesses=1500)
        assert shared_footprint(wl) > 0

    def test_format_table(self):
        wl = Workload([trace([1, 2, 1], name="demo")], "w")
        out = format_profile_table(profile_workload(wl))
        assert "demo" in out
        assert "APKI" in out
