"""SHiP replacement policy."""

import pytest

from repro.cache.replacement import SHiPPolicy, make_policy
from repro.cache.set_assoc import AccessContext, SetAssociativeCache


def fresh(sets=2, ways=4, **kw):
    return SetAssociativeCache(sets, ways, SHiPPolicy(**kw))


class TestSHCT:
    def test_factory(self):
        assert isinstance(make_policy("ship"), SHiPPolicy)

    def test_entries_pow2(self):
        with pytest.raises(ValueError):
            SHiPPolicy(shct_entries=1000)

    def test_initially_predicts_reuse(self):
        c = fresh()
        c.install(0, 0, 0, AccessContext(pc=0x5))
        assert c.blocks[0][0].rrpv == c.policy.max_rrpv - 1

    def test_dead_signature_inserts_at_max(self):
        c = fresh()
        p = c.policy
        # fills from pc 0x5 never reused: evictions detrain the signature
        for i in range(8):
            c.install(0, 0, i * 2, AccessContext(pc=0x5))
            c.evict_way(0, 0, AccessContext())
        c.install(0, 0, 100, AccessContext(pc=0x5))
        assert c.blocks[0][0].rrpv == p.max_rrpv

    def test_reuse_trains_signature_up(self):
        c = fresh()
        p = c.policy
        for _ in range(4):  # drive the counter to zero
            c.install(0, 0, 2, AccessContext(pc=0x9))
            c.evict_way(0, 0, AccessContext())
        for _ in range(6):  # reuse re-trains it
            c.install(0, 0, 2, AccessContext(pc=0x9))
            c.touch(2, AccessContext(pc=0x9))
            c.evict_way(0, 0, AccessContext())
        c.install(0, 0, 4, AccessContext(pc=0x9))
        assert c.blocks[0][0].rrpv == p.max_rrpv - 1

    def test_hit_promotes_and_marks_reused(self):
        c = fresh()
        c.install(0, 0, 0, AccessContext(pc=0x5))
        c.touch(0, AccessContext(pc=0x5))
        blk = c.blocks[0][0]
        assert blk.rrpv == 0
        assert blk.friendly  # outcome bit earned

    def test_single_hit_trains_once(self):
        c = fresh()
        p = c.policy
        from repro.cache.replacement.ship import _sign

        idx = _sign(0x5, p.mask)
        before = p.shct[idx]
        c.install(0, 0, 0, AccessContext(pc=0x5))
        c.touch(0, AccessContext(pc=0x5))
        c.touch(0, AccessContext(pc=0x5))
        assert p.shct[idx] == min(p.counter_max, before + 1)

    def test_relocation_fill_uses_signature(self):
        from repro.cache.block import CacheBlock

        c = fresh()
        src = CacheBlock()
        src.addr = 1
        src.valid = True
        src.last_pc = 0x5
        c.install_relocated(0, 0, src, AccessContext())
        assert c.blocks[0][0].rrpv in (
            c.policy.max_rrpv, c.policy.max_rrpv - 1
        )


class TestSHiPInHierarchy:
    def test_runs_as_llc_policy(self):
        from tests.conftest import build, drive

        h = drive(build("ziv:maxrrpvnotinprc", policy="ship"), 2500, seed=1)
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()
