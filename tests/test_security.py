"""Prime+probe side-channel harness (paper Section I-A)."""

import pytest

from repro.params import scaled_config
from repro.security import prime_probe_experiment


@pytest.fixture(scope="module")
def cfg():
    return scaled_config("512KB")


class TestPrimeProbe:
    def test_inclusive_llc_leaks(self, cfg):
        r = prime_probe_experiment(cfg, "inclusive", trials=24)
        assert r.accuracy >= 0.9
        assert r.leaks
        assert r.noise_probe_misses == 0  # noise-free channel

    def test_ziv_blinds_attacker(self, cfg):
        r = prime_probe_experiment(cfg, "ziv:notinprc", trials=24)
        assert not r.leaks
        assert r.signal_probe_misses == 0

    def test_noninclusive_blinds_attacker(self, cfg):
        r = prime_probe_experiment(cfg, "noninclusive", trials=24)
        assert not r.leaks

    def test_ziv_likelydead_blinds_attacker(self, cfg):
        r = prime_probe_experiment(cfg, "ziv:likelydead", trials=24)
        assert not r.leaks

    def test_deterministic_given_seed(self, cfg):
        a = prime_probe_experiment(cfg, "inclusive", trials=10, seed=3)
        b = prime_probe_experiment(cfg, "inclusive", trials=10, seed=3)
        assert a.correct == b.correct

    def test_result_fields(self, cfg):
        r = prime_probe_experiment(cfg, "inclusive", trials=8)
        assert r.trials == 8
        assert 0 <= r.correct <= 8
        assert r.scheme == "inclusive"


class TestEvictReload:
    def test_inclusive_leaks(self, cfg):
        from repro.security import evict_reload_experiment

        r = evict_reload_experiment(cfg, "inclusive", trials=24)
        assert r.leaks
        assert r.fast_reloads_noise == 0  # noise-free channel

    def test_ziv_blinds(self, cfg):
        from repro.security import evict_reload_experiment

        r = evict_reload_experiment(cfg, "ziv:notinprc", trials=24)
        assert not r.leaks
        # the reload is fast regardless of the secret: zero information
        assert r.fast_reloads_noise > 0

    def test_noninclusive_blinds(self, cfg):
        from repro.security import evict_reload_experiment

        r = evict_reload_experiment(cfg, "noninclusive", trials=24)
        assert not r.leaks


class TestRelocationLatencyChannel:
    def test_zero_noise_channel_is_open(self, cfg):
        """Without queueing noise the 1-3 cycle relocated-access delta is
        perfectly distinguishable -- the residual risk the paper
        acknowledges in III-C1."""
        from repro.security import relocation_latency_probe

        r = relocation_latency_probe(cfg, samples=32, jitter_sigma=0.0)
        assert r.relocated_mean > r.normal_mean
        assert r.channel_open

    def test_realistic_noise_closes_channel(self, cfg):
        """With jitter on the order of the delta, the distinguisher
        collapses -- the paper's III-C1 claim."""
        from repro.security import relocation_latency_probe

        r = relocation_latency_probe(cfg, samples=32, jitter_sigma=4.0)
        assert not r.channel_open

    def test_delta_matches_configured_penalty(self, cfg):
        from repro.security import relocation_latency_probe

        r = relocation_latency_probe(cfg, samples=32, jitter_sigma=0.0)
        assert r.relocated_mean - r.normal_mean == pytest.approx(
            cfg.core.relocated_access_penalty, abs=1.0
        )
