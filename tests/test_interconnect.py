"""Mesh and flat interconnect models."""

import dataclasses

import pytest

from tests.conftest import tiny_config

from repro.hierarchy.interconnect import (
    FlatInterconnect,
    MeshInterconnect,
    make_interconnect,
)
from repro.params import ConfigError, CoreParams


class TestMesh:
    def test_validation(self):
        with pytest.raises(ValueError):
            MeshInterconnect(cores=0, banks=4)

    def test_symmetry_of_hops(self):
        m = MeshInterconnect(cores=8, banks=8)
        assert m._hops(0, 9) == m._hops(9, 0)

    def test_latency_grows_with_distance(self):
        m = MeshInterconnect(cores=8, banks=8)
        # core 0 at (0,0); banks at nodes 8..15; the farthest bank must
        # cost at least as much as the nearest
        lats = [m.latency(0, b) for b in range(8)]
        assert max(lats) > min(lats)

    def test_triangle_inequality_ish(self):
        """Manhattan distance: one-hop latency is the minimum non-local
        latency and everything is a multiple of hop cost."""
        m = MeshInterconnect(cores=4, banks=4)
        step = m.router_delay + m.link_delay
        for core in range(4):
            for bank in range(4):
                lat = m.latency(core, bank)
                assert lat == m.router_delay or lat % step == 0

    def test_average_and_max(self):
        m = MeshInterconnect(cores=8, banks=8)
        assert m.average_latency() <= m.max_latency()

    def test_grid_is_near_square(self):
        m = MeshInterconnect(cores=8, banks=8)
        assert m.width == 4  # 16 nodes -> 4x4


class TestFlat:
    def test_constant(self):
        f = FlatInterconnect(8)
        assert f.latency(0, 0) == f.latency(3, 7) == 8
        assert f.average_latency() == 8.0
        assert f.max_latency() == 8


class TestFactoryAndIntegration:
    def test_factory_flat_default(self):
        icn = make_interconnect(CoreParams(), cores=8, banks=8)
        assert isinstance(icn, FlatInterconnect)

    def test_factory_mesh(self):
        params = CoreParams(interconnect_kind="mesh")
        icn = make_interconnect(params, cores=8, banks=8)
        assert isinstance(icn, MeshInterconnect)

    def test_kind_validated(self):
        with pytest.raises(ConfigError):
            CoreParams(interconnect_kind="torus")

    def test_mesh_changes_llc_latency_per_bank(self):
        from tests.conftest import build

        cfg = tiny_config()
        cfg = cfg.replace(
            core=dataclasses.replace(cfg.core, interconnect_kind="mesh")
        )
        h = build("inclusive", cfg)
        # miss to bank 0 vs bank 1 can differ by hop count
        lat0 = h.access(0, 0)  # bank 0
        lat1 = h.access(0, 1)  # bank 1
        m = h.interconnect
        expected_delta = 2 * (m.latency(0, 1) - m.latency(0, 0))
        # both misses, same DRAM state per bank -> pure interconnect delta
        assert abs((lat1 - lat0) - expected_delta) <= max(
            h.dram.params.row_conflict_latency, 1
        )

    def test_mesh_run_end_to_end(self):
        from tests.conftest import build, drive

        cfg = tiny_config()
        cfg = cfg.replace(
            core=dataclasses.replace(cfg.core, interconnect_kind="mesh")
        )
        h = drive(build("ziv:notinprc", cfg), 1500, seed=2)
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()
