"""The chunked binary trace format: round-trips, fingerprints,
corruption detection, streamed-run equivalence, recipe references."""

from __future__ import annotations

import dataclasses
import pickle
import random

import pytest

from tests.conftest import tiny_config
from repro.sim.engine import run_workload
from repro.sim.parallel import RunRecipe
from repro.sim.trace import (
    CoreTrace,
    TraceRecord,
    Workload,
    interleave_records,
    lockstep_stream,
)
from repro.sim.tracebin import (
    RECORD_BYTES,
    BinWorkload,
    TraceBinReader,
    TraceBinWriter,
    TraceRef,
    convert_din_trace,
    convert_text_trace,
    load_workload_bin,
    make_trace_ref,
    open_trace,
    resolve_workload,
    save_workload_bin,
)
from repro.sim.tracefile import TraceFormatError, save_workload

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # minimal environment: seeded-random fallback below
    HAVE_HYPOTHESIS = False


def make_workload(seed=0, cores=2, n=600, name="wl"):
    rng = random.Random(seed)
    traces = [
        CoreTrace(
            [
                TraceRecord(
                    rng.randrange(0, 8),
                    rng.randrange(0, 2048),
                    rng.random() < 0.3,
                    rng.randrange(0, 1 << 16),
                )
                for _ in range(n + 37 * c)
            ],
            f"app{c}",
        )
        for c in range(cores)
    ]
    return Workload(traces, name=name)


# ---------------------------------------------------------------------------
# Round-trip
# ---------------------------------------------------------------------------


def test_round_trip_exact(tmp_path):
    wl = make_workload(seed=1)
    path = tmp_path / "wl.tracebin"
    fp = save_workload_bin(wl, path, chunk_records=128)
    assert fp == wl.fingerprint()
    back = load_workload_bin(path)
    assert back.name == wl.name
    assert back.cores == wl.cores
    for a, b in zip(back, wl):
        assert a.name == b.name
        assert list(a) == list(b)
    assert back.fingerprint() == wl.fingerprint()


def test_round_trip_preserves_empty_core(tmp_path):
    wl = Workload(
        [CoreTrace([TraceRecord(0, 1, False, 2)], "busy"),
         CoreTrace([], "idle")],
        name="halfidle",
    )
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path)
    back = load_workload_bin(path)
    assert back.cores == 2
    assert len(back[1]) == 0
    assert back[1].name == "idle"
    assert back.fingerprint() == wl.fingerprint()


def test_streaming_view_matches_materialised(tmp_path):
    wl = make_workload(seed=2, n=500)
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path, chunk_records=64)
    with open_trace(path) as bw:
        assert isinstance(bw, BinWorkload)
        assert bw.total_accesses() == wl.total_accesses()
        # sequence protocol over chunk seams, including negative index
        assert bw[0][63] == wl[0][63]
        assert bw[0][64] == wl[0][64]
        assert bw[1][-1] == wl[1][-1]
        with pytest.raises(IndexError):
            bw[0][len(wl[0])]
        # the canonical interleavings the engines consume
        assert lockstep_stream(bw) == lockstep_stream(wl)
        assert list(interleave_records(bw)) == list(interleave_records(wl))
        # per-core metadata
        assert bw[0].fingerprint() == wl[0].fingerprint()
        assert bw[0].instructions == wl[0].instructions
        assert bw[0].footprint() == wl[0].footprint()


def test_decoded_chunk_cache_stays_bounded(tmp_path):
    wl = make_workload(seed=3, cores=1, n=1000)
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path, chunk_records=50)
    with open_trace(path) as bw:
        trace = bw[0]
        for i in range(len(trace)):
            trace[i]
        assert len(trace._cache) <= trace._CACHE_SLOTS


def test_binworkload_pickles_by_path(tmp_path):
    wl = make_workload(seed=4, n=120)
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path)
    with open_trace(path) as bw:
        clone = pickle.loads(pickle.dumps(bw))
        try:
            assert clone.fingerprint() == wl.fingerprint()
            assert list(clone[0]) == list(wl[0])
        finally:
            clone.close()


def test_supports_fused_opt_out():
    # Simulation.run keys the fused fast-engine driver off this flag;
    # streamed workloads must refuse it (it materialises whole traces).
    assert BinWorkload.supports_fused is False
    assert getattr(Workload, "supports_fused", True) is True


if HAVE_HYPOTHESIS:

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(0, 2**32 - 1),
                    st.integers(0, 2**64 - 1),
                    st.booleans(),
                    st.integers(0, 2**64 - 1),
                ),
                max_size=40,
            ),
            min_size=1,
            max_size=3,
        ),
        st.integers(1, 17),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip(tmp_path_factory, cores, chunk_records):
        wl = Workload(
            [
                CoreTrace([TraceRecord(*t) for t in recs], f"c{i}")
                for i, recs in enumerate(cores)
            ],
            name="prop",
        )
        path = tmp_path_factory.mktemp("bin") / "wl.tracebin"
        save_workload_bin(wl, path, chunk_records=chunk_records)
        back = load_workload_bin(path)
        assert [list(t) for t in back] == [list(t) for t in wl]
        assert back.fingerprint() == wl.fingerprint()
        with TraceBinReader(path) as reader:
            reader.verify()

else:  # pragma: no cover - hypothesis always present in CI

    def test_property_round_trip_fallback(tmp_path):
        rng = random.Random(99)
        for trial in range(15):
            wl = make_workload(seed=trial, cores=rng.randrange(1, 4),
                               n=rng.randrange(0, 80))
            path = tmp_path / f"wl{trial}.tracebin"
            save_workload_bin(wl, path,
                              chunk_records=rng.randrange(1, 18))
            back = load_workload_bin(path)
            assert [list(t) for t in back] == [list(t) for t in wl]
            assert back.fingerprint() == wl.fingerprint()


# ---------------------------------------------------------------------------
# Corruption and writer validation
# ---------------------------------------------------------------------------


def test_bit_flip_fails_verification(tmp_path):
    wl = make_workload(seed=5, n=300)
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path, chunk_records=64)
    data = bytearray(path.read_bytes())
    data[128 + 3 * RECORD_BYTES] ^= 0x10  # inside the first chunk
    bad = tmp_path / "bad.tracebin"
    bad.write_bytes(bytes(data))
    with TraceBinReader(bad) as reader:
        with pytest.raises(TraceFormatError, match="CRC mismatch"):
            reader.verify()


def test_truncated_file_fails_loudly(tmp_path):
    wl = make_workload(seed=6, n=200)
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path)
    cut = tmp_path / "cut.tracebin"
    cut.write_bytes(path.read_bytes()[:700])
    with pytest.raises(TraceFormatError):
        TraceBinReader(cut)


def test_not_a_tracebin_file(tmp_path):
    path = tmp_path / "junk.tracebin"
    path.write_bytes(b"not a trace" * 20)
    with pytest.raises(TraceFormatError, match="bad magic"):
        TraceBinReader(path)


def test_writer_rejects_out_of_range_fields(tmp_path):
    with TraceBinWriter(tmp_path / "wl.tracebin") as w:
        with pytest.raises(TraceFormatError, match="out of range"):
            w.write_core([TraceRecord(2**32, 0, False, 0)])
        w.abort()


def test_writer_needs_a_core(tmp_path):
    w = TraceBinWriter(tmp_path / "wl.tracebin")
    with pytest.raises(TraceFormatError, match="at least one core"):
        w.close()
    assert not (tmp_path / "wl.tracebin").exists()


def test_aborted_writer_leaves_no_file(tmp_path):
    try:
        with TraceBinWriter(tmp_path / "wl.tracebin") as w:
            w.write_core([TraceRecord(0, 1, False, 2)])
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Importers
# ---------------------------------------------------------------------------


def test_text_conversion_matches_in_memory(tmp_path):
    wl = make_workload(seed=7, n=250, name="conv")
    src = tmp_path / "conv.trace.gz"
    save_workload(wl, src)
    info = convert_text_trace(src, tmp_path / "conv.tracebin",
                              chunk_records=100)
    assert info["fingerprint"] == wl.fingerprint()
    back = load_workload_bin(tmp_path / "conv.tracebin")
    assert [list(t) for t in back] == [list(t) for t in wl]
    assert [t.name for t in back] == [t.name for t in wl]


def test_text_conversion_preserves_empty_core(tmp_path):
    wl = Workload(
        [CoreTrace([TraceRecord(1, 2, True, 3)], "busy"),
         CoreTrace([], "idle")],
        name="halfidle",
    )
    src = tmp_path / "halfidle.trace.gz"
    save_workload(wl, src)
    convert_text_trace(src, tmp_path / "halfidle.tracebin")
    back = load_workload_bin(tmp_path / "halfidle.tracebin")
    assert back.cores == 2 and len(back[1]) == 0
    assert back.fingerprint() == wl.fingerprint()


def test_din_import(tmp_path):
    src = tmp_path / "app.din"
    src.write_text(
        "# a comment\n"
        "r 0x1f40\n"
        "w 8192\n"
        "2 0xffc0\n"
        "0 64\n"
    )
    info = convert_din_trace(src, tmp_path / "app.tracebin", block_bits=6)
    assert info["records"] == 4 and info["cores"] == 1
    back = load_workload_bin(tmp_path / "app.tracebin")
    recs = list(back[0])
    assert recs[0].addr == 0x1F40 >> 6 and not recs[0].is_write
    assert recs[1].addr == 8192 >> 6 and recs[1].is_write
    assert recs[2].addr == 0xFFC0 >> 6 and not recs[2].is_write
    assert back.name == "app"


def test_din_import_rejects_bad_label(tmp_path):
    src = tmp_path / "bad.din"
    src.write_text("q 0x40\n")
    with pytest.raises(TraceFormatError, match="unknown access label"):
        convert_din_trace(src, tmp_path / "bad.tracebin")


# ---------------------------------------------------------------------------
# Streamed runs are bit-identical to in-memory runs
# ---------------------------------------------------------------------------


def result_signature(r):
    return (
        dataclasses.asdict(r.stats),
        r.cycles,
        r.energy.total_energy_pj() if r.energy is not None else None,
        r.telemetry.series.to_dict() if r.telemetry is not None else None,
        r.scheme_stats,
    )


@pytest.mark.parametrize("engine", ["object", "fast"])
@pytest.mark.parametrize("scheduling", ["timing", "lockstep"])
def test_streamed_run_bit_identical(tmp_path, engine, scheduling):
    wl = make_workload(seed=8, n=900, name="stream")
    path = tmp_path / "stream.tracebin"
    save_workload_bin(wl, path, chunk_records=256)
    config = tiny_config(cores=2).replace(engine=engine)
    kwargs = dict(
        scheme_name="ziv:notinprc",
        scheduling=scheduling,
        telemetry="400",
    )
    base = run_workload(config, wl, **kwargs)
    with open_trace(path) as bw:
        streamed = run_workload(config, bw, **kwargs)
    assert result_signature(streamed) == result_signature(base)


# ---------------------------------------------------------------------------
# TraceRef: the recipe-layer reference
# ---------------------------------------------------------------------------


def test_trace_ref_shares_cache_key_with_in_memory(tmp_path):
    wl = make_workload(seed=9, n=150, name="ref")
    path = tmp_path / "ref.tracebin"
    save_workload_bin(wl, path)
    ref = make_trace_ref(path)
    config = tiny_config(cores=2)
    by_ref = RunRecipe(workload=ref, scheme="inclusive", config=config)
    in_mem = RunRecipe(workload=wl, scheme="inclusive", config=config)
    # Same content -> same key: sound because streamed and in-memory
    # runs are bit-identical (test_streamed_run_bit_identical).
    assert by_ref.key() == in_mem.key()
    assert result_signature(by_ref.execute()) == result_signature(
        in_mem.execute()
    )


def test_trace_ref_detects_changed_file(tmp_path):
    wl = make_workload(seed=10, n=80)
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path)
    ref = make_trace_ref(path)
    save_workload_bin(make_workload(seed=11, n=80), path)
    with pytest.raises(TraceFormatError, match="does not match"):
        ref.resolve()


def test_trace_ref_pickles_small(tmp_path):
    wl = make_workload(seed=12, n=5000)
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path)
    ref = make_trace_ref(path)
    blob = pickle.dumps(ref)
    assert len(blob) < 1024  # path + fingerprint, never the records
    clone = pickle.loads(blob)
    assert clone == ref and clone.fingerprint() == wl.fingerprint()


def test_resolve_workload_passthrough(tmp_path):
    wl = make_workload(seed=13, n=10)
    assert resolve_workload(wl) is wl
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path)
    resolved = resolve_workload(make_trace_ref(path))
    try:
        assert isinstance(resolved, BinWorkload)
        assert resolved.fingerprint() == wl.fingerprint()
    finally:
        resolved.close()


def test_trace_ref_config_io_round_trip(tmp_path):
    from repro.config_io import trace_ref_from_dict, trace_ref_to_dict

    wl = make_workload(seed=14, n=20)
    path = tmp_path / "wl.tracebin"
    save_workload_bin(wl, path)
    ref = make_trace_ref(path)
    clone = trace_ref_from_dict(trace_ref_to_dict(ref))
    assert isinstance(clone, TraceRef)
    assert clone == ref
