"""Checkpoint/resume: a resumed run must be bit-identical to an
uninterrupted one, on both engines, in both scheduling modes."""

from __future__ import annotations

import dataclasses
import random

import pytest

from tests.conftest import tiny_config
from repro.sim.checkpoint import (
    CheckpointError,
    SimulationInterrupted,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.engine import run_workload
from repro.sim.telemetry import StreamProgress
from repro.sim.trace import CoreTrace, TraceRecord, Workload
from repro.sim.tracebin import open_trace, save_workload_bin


def make_workload(seed=0, cores=2, n=1100, name="ck"):
    rng = random.Random(seed)
    traces = [
        CoreTrace(
            [
                TraceRecord(
                    rng.randrange(0, 4),
                    rng.randrange(0, 512),
                    rng.random() < 0.35,
                    rng.randrange(0, 2048),
                )
                for _ in range(n - 113 * c)
            ],
            f"app{c}",
        )
        for c in range(cores)
    ]
    return Workload(traces, name=name)


def result_signature(r):
    return (
        dataclasses.asdict(r.stats),
        r.cycles,
        r.energy.total_energy_pj() if r.energy is not None else None,
        r.telemetry.series.to_dict() if r.telemetry is not None else None,
        len(r.telemetry.events) if r.telemetry is not None else None,
        r.scheme_stats,
    )


@pytest.mark.parametrize("engine", ["object", "fast"])
@pytest.mark.parametrize("scheduling", ["timing", "lockstep"])
def test_resumed_run_bit_identical(tmp_path, engine, scheduling):
    wl = make_workload(seed=1)
    config = tiny_config(cores=2).replace(engine=engine)
    kwargs = dict(
        scheme_name="ziv:notinprc",
        scheduling=scheduling,
        telemetry="300",
    )
    base = run_workload(config, wl, **kwargs)
    ckpt = tmp_path / "run.ckpt"
    with pytest.raises(SimulationInterrupted) as exc_info:
        run_workload(
            config, wl,
            checkpoint_path=ckpt,
            checkpoint_every=400,
            stop_after=800,
            **kwargs,
        )
    assert exc_info.value.accesses_done == 800
    assert exc_info.value.checkpoint_path == str(ckpt)
    assert ckpt.exists()
    resumed = run_workload(config, wl, resume_from=ckpt, **kwargs)
    assert result_signature(resumed) == result_signature(base)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_streamed_checkpoint_resume_bit_identical(tmp_path, engine):
    # The full out-of-core path: binary trace, interrupted streamed run,
    # resumed streamed run, compared against the in-memory run.
    wl = make_workload(seed=2, n=1500)
    path = tmp_path / "ck.tracebin"
    save_workload_bin(wl, path, chunk_records=256)
    config = tiny_config(cores=2).replace(engine=engine)
    kwargs = dict(scheme_name="ziv:notinprc", telemetry="500")
    base = run_workload(config, wl, **kwargs)
    ckpt = tmp_path / "run.ckpt"
    with open_trace(path) as bw:
        with pytest.raises(SimulationInterrupted):
            # checkpoint_every defaults to the trace's chunk size
            run_workload(config, bw, checkpoint_path=ckpt,
                         stop_after=1000, **kwargs)
    with open_trace(path) as bw:
        resumed = run_workload(config, bw, resume_from=ckpt, **kwargs)
    assert result_signature(resumed) == result_signature(base)


def test_resume_across_audit(tmp_path):
    wl = make_workload(seed=3)
    config = tiny_config(cores=2)
    kwargs = dict(scheme_name="ziv:notinprc", audit="250")
    base = run_workload(config, wl, **kwargs)
    ckpt = tmp_path / "run.ckpt"
    with pytest.raises(SimulationInterrupted):
        run_workload(config, wl, checkpoint_path=ckpt,
                     checkpoint_every=300, stop_after=900, **kwargs)
    resumed = run_workload(config, wl, resume_from=ckpt, **kwargs)
    assert dataclasses.asdict(resumed.stats) == dataclasses.asdict(
        base.stats
    )
    assert base.audit is not None and resumed.audit is not None
    assert resumed.audit.ok == base.audit.ok
    assert len(resumed.audit.violations) == len(base.audit.violations)


def test_progress_heartbeats(tmp_path):
    wl = make_workload(seed=4)
    config = tiny_config(cores=2)
    beats: list[StreamProgress] = []
    run_workload(
        config, wl, "inclusive",
        checkpoint_path=tmp_path / "run.ckpt",
        checkpoint_every=500,
        progress=beats.append,
    )
    assert beats
    total = wl.total_accesses()
    assert all(b.total_accesses == total for b in beats)
    assert [b.accesses_done for b in beats] == sorted(
        b.accesses_done for b in beats
    )
    assert all(b.checkpointed for b in beats)
    assert beats[0].chunk == 1
    assert 0.0 < beats[0].fraction <= 1.0
    # Heartbeats name the run they belong to (interleaved-log hygiene).
    assert all(b.label == wl.name for b in beats)
    assert all(b.engine == "object" for b in beats)


def test_progress_without_checkpointing(tmp_path):
    wl = make_workload(seed=5)
    beats = []
    run_workload(
        tiny_config(cores=2), wl, "inclusive",
        checkpoint_every=700, progress=beats.append,
    )
    assert beats and not any(b.checkpointed for b in beats)


def test_stop_after_requires_checkpoint_path():
    wl = make_workload(seed=6, n=50)
    with pytest.raises(ValueError, match="stop_after requires"):
        run_workload(tiny_config(cores=2), wl, "inclusive", stop_after=10)


def test_resume_refuses_wrong_workload(tmp_path):
    config = tiny_config(cores=2)
    ckpt = tmp_path / "run.ckpt"
    with pytest.raises(SimulationInterrupted):
        run_workload(config, make_workload(seed=7), "inclusive",
                     checkpoint_path=ckpt, checkpoint_every=300,
                     stop_after=600)
    with pytest.raises(CheckpointError, match="refusing to mix"):
        run_workload(config, make_workload(seed=8), "inclusive",
                     resume_from=ckpt)


def test_resume_refuses_wrong_scheduling(tmp_path):
    config = tiny_config(cores=2)
    ckpt = tmp_path / "run.ckpt"
    wl = make_workload(seed=9)
    with pytest.raises(SimulationInterrupted):
        run_workload(config, wl, "inclusive", checkpoint_path=ckpt,
                     checkpoint_every=300, stop_after=600)
    with pytest.raises(CheckpointError, match="scheduling"):
        run_workload(config, wl, "inclusive", scheduling="lockstep",
                     resume_from=ckpt)


def test_load_checkpoint_rejects_garbage(tmp_path):
    path = tmp_path / "junk.ckpt"
    path.write_bytes(b"definitely not a checkpoint")
    with pytest.raises(CheckpointError, match="bad magic"):
        load_checkpoint(path)
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(tmp_path / "missing.ckpt")


def test_save_checkpoint_is_atomic(tmp_path):
    # A failed save must leave the previous checkpoint intact.
    config = tiny_config(cores=2)
    ckpt = tmp_path / "run.ckpt"
    with pytest.raises(SimulationInterrupted):
        run_workload(config, make_workload(seed=10), "inclusive",
                     checkpoint_path=ckpt, checkpoint_every=300,
                     stop_after=600)
    before = ckpt.read_bytes()
    with pytest.raises(CheckpointError):
        save_checkpoint(ckpt, object())  # not a SimCheckpoint
    assert ckpt.read_bytes() == before
    assert list(tmp_path.glob("*.tmp")) == []
