"""Model-based cross-check: the full hierarchy against an independent
functional reference.

The reference model is a deliberately naive reimplementation -- plain
dicts, recency lists, no banks, no directory -- of a single core's
L1/L2/LLC *content* under LRU with an inclusive LLC.  For single-core
workloads (no coherence, no sharing), the production hierarchy must agree
with it exactly on every hit/miss outcome.  Hypothesis drives both models
with random access streams.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from tests.conftest import build, tiny_config


class _RefCache:
    """Naive LRU set-associative cache keyed by (set, addr)."""

    def __init__(self, sets, ways, shift=0):
        self.sets = sets
        self.ways = ways
        self.shift = shift
        self.data = [OrderedDict() for _ in range(sets)]

    def set_of(self, addr):
        return (addr >> self.shift) & (self.sets - 1)

    def contains(self, addr):
        return addr in self.data[self.set_of(addr)]

    def touch(self, addr):
        s = self.data[self.set_of(addr)]
        s.move_to_end(addr)

    def fill(self, addr):
        """Insert; returns the evicted address or None."""
        s = self.data[self.set_of(addr)]
        victim = None
        if len(s) >= self.ways:
            victim, _ = s.popitem(last=False)
        s[addr] = True
        return victim

    def invalidate(self, addr):
        self.data[self.set_of(addr)].pop(addr, None)


class _RefHierarchy:
    """Single-core inclusive LRU hierarchy, contents only."""

    def __init__(self, cfg):
        self.l1 = _RefCache(cfg.l1.sets, cfg.l1.ways)
        self.l2 = _RefCache(cfg.l2.sets, cfg.l2.ways)
        bank_shift = (cfg.llc.banks - 1).bit_length()
        # model the banked LLC as per-bank reference caches
        self.llc = [
            _RefCache(cfg.llc.sets_per_bank, cfg.llc.ways, shift=bank_shift)
            for _ in range(cfg.llc.banks)
        ]
        self.banks = cfg.llc.banks

    def _llc_of(self, addr):
        return self.llc[addr & (self.banks - 1)]

    def access(self, addr):
        """Returns the level that served the access: 1, 2, 3 or 0 (mem)."""
        if self.l1.contains(addr):
            self.l1.touch(addr)
            return 1
        if self.l2.contains(addr):
            self.l2.touch(addr)
            self._fill_l1(addr)
            return 2
        llc = self._llc_of(addr)
        if llc.contains(addr):
            llc.touch(addr)
            self._fill_private(addr)
            return 3
        victim = llc.fill(addr)
        if victim is not None:
            # inclusive back-invalidation
            self.l1.invalidate(victim)
            self.l2.invalidate(victim)
        self._fill_private(addr)
        return 0

    def _fill_private(self, addr):
        self.l2.fill(addr)
        self._fill_l1(addr)

    def _fill_l1(self, addr):
        if not self.l1.contains(addr):
            self.l1.fill(addr)


def _outcome(h, core, addr):
    """Which level served the access in the production hierarchy."""
    s = h.stats.cores[core]
    before = (s.l1_hits, s.l2_hits, h.stats.llc_hits, h.stats.llc_misses)
    h.access(core, addr)
    after = (s.l1_hits, s.l2_hits, h.stats.llc_hits, h.stats.llc_misses)
    for level, (b, a) in enumerate(zip(before, after), start=1):
        if a > b:
            return level if level < 4 else 0
    raise AssertionError("access produced no counter change")


@settings(max_examples=30, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=63), min_size=1, max_size=300
    )
)
def test_single_core_inclusive_lru_matches_reference(addrs):
    """Every access must be served from the same level in both models."""
    cfg = tiny_config(cores=1)
    h = build("inclusive", cfg)
    ref = _RefHierarchy(cfg)
    for i, addr in enumerate(addrs):
        got = _outcome(h, 0, addr)
        want = ref.access(addr)
        assert got == want, f"access #{i} to {addr}: sim={got} ref={want}"


@settings(max_examples=20, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=63), min_size=1, max_size=300
    )
)
def test_ziv_never_misses_more_in_private_than_inclusive(addrs):
    """ZIV eliminates inclusion victims, so a single core's private-cache
    hit count can only improve relative to the inclusive baseline."""
    cfg = tiny_config(cores=1)
    base = build("inclusive", cfg)
    cfg2 = tiny_config(cores=1)
    ziv = build("ziv:notinprc", cfg2)
    for i, addr in enumerate(addrs):
        base.access(0, addr)
        ziv.access(0, addr)
    base_priv = base.stats.cores[0].l1_hits + base.stats.cores[0].l2_hits
    ziv_priv = ziv.stats.cores[0].l1_hits + ziv.stats.cores[0].l2_hits
    assert ziv_priv >= base_priv
