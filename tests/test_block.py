"""CacheBlock and DirectoryEntry state transitions."""

from repro.cache.block import CacheBlock, DirectoryEntry


class TestCacheBlock:
    def test_initial_state_invalid(self):
        b = CacheBlock()
        assert not b.valid
        assert not b.dirty
        assert not b.relocated
        assert b.addr == -1

    def test_reset_clears_everything(self):
        b = CacheBlock()
        b.addr = 42
        b.valid = True
        b.dirty = True
        b.relocated = True
        b.not_in_prc = True
        b.likely_dead = True
        b.char_tag = (1, 2)
        b.rrpv = 7
        b.stamp = 99
        b.demand_reuses = 3
        b.reset()
        fresh = CacheBlock()
        for attr in CacheBlock.__slots__:
            assert getattr(b, attr) == getattr(fresh, attr), attr

    def test_repr_shows_flags(self):
        b = CacheBlock()
        b.addr = 0x40
        b.valid = True
        b.dirty = True
        assert "V" in repr(b) and "D" in repr(b)


class TestDirectoryEntry:
    def test_sharer_bitvector(self):
        e = DirectoryEntry()
        e.add_sharer(0)
        e.add_sharer(5)
        assert e.has_sharer(0) and e.has_sharer(5)
        assert not e.has_sharer(3)
        assert e.sharer_count == 2

    def test_remove_sharer_clears_owner(self):
        e = DirectoryEntry()
        e.add_sharer(2)
        e.owner = 2
        e.remove_sharer(2)
        assert e.owner == -1
        assert e.sharers == 0

    def test_remove_other_sharer_keeps_owner(self):
        e = DirectoryEntry()
        e.add_sharer(1)
        e.add_sharer(2)
        e.owner = 2
        e.remove_sharer(1)
        assert e.owner == 2

    def test_relocation_tuple(self):
        e = DirectoryEntry()
        e.set_relocation(3, 7, 11)
        assert e.relocated
        assert (e.reloc_bank, e.reloc_set, e.reloc_way) == (3, 7, 11)
        e.clear_relocation()
        assert not e.relocated
        assert e.reloc_bank == -1

    def test_add_sharer_idempotent(self):
        e = DirectoryEntry()
        e.add_sharer(4)
        e.add_sharer(4)
        assert e.sharer_count == 1
