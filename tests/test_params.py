"""Configuration dataclasses and scaled presets."""

import pytest

from repro.params import (
    BLOCK_BYTES,
    CacheGeometry,
    ConfigError,
    DirectoryGeometry,
    DRAMParams,
    LLCGeometry,
    SCALED_L2_POINTS,
    paper_scale_config,
    scaled_config,
    scaled_manycore_config,
)


class TestCacheGeometry:
    def test_blocks_and_capacity(self):
        g = CacheGeometry(sets=16, ways=8)
        assert g.blocks == 128
        assert g.capacity_bytes == 128 * BLOCK_BYTES

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            CacheGeometry(sets=12, ways=8)

    def test_rejects_nonpositive_ways(self):
        with pytest.raises(ConfigError):
            CacheGeometry(sets=8, ways=0)

    def test_set_index_masks_low_bits(self):
        g = CacheGeometry(sets=8, ways=4)
        assert g.set_index(0x123) == 0x123 & 7


class TestLLCGeometry:
    def test_bank_and_set_indexing_are_disjoint_bits(self):
        g = LLCGeometry(banks=8, sets_per_bank=16, ways=16)
        seen = set()
        for addr in range(8 * 16):
            seen.add((g.bank_index(addr), g.set_index(addr)))
        assert len(seen) == 8 * 16  # consecutive addrs spread over all slots

    def test_blocks(self):
        g = LLCGeometry(banks=8, sets_per_bank=16, ways=16)
        assert g.blocks == 2048

    def test_rejects_non_pow2_banks(self):
        with pytest.raises(ConfigError):
            LLCGeometry(banks=3, sets_per_bank=16, ways=16)


class TestDirectoryGeometry:
    def test_set_index_in_range(self):
        g = DirectoryGeometry(sets=32, ways=8)
        for addr in (0, 1, 12345, (1 << 30) + 77):
            assert 0 <= g.set_index(addr, banks=8) < 32

    def test_xor_fold_decorrelates_high_bits(self):
        """Two addresses differing only in a high-order bit must not
        systematically collide (the xor fold moves high bits into the
        index)."""
        g = DirectoryGeometry(sets=32, ways=8)
        diffs = sum(
            g.set_index(a, 8) != g.set_index(a + (1 << 24), 8)
            for a in range(0, 4096, 7)
        )
        assert diffs > 0


class TestScaledConfig:
    def test_aggregate_ratio_matches_paper(self):
        # paper: aggregate L2 / LLC = 1/4, 1/2, 3/4 for the three points
        for l2, ratio in (("256KB", 0.25), ("512KB", 0.5), ("768KB", 0.75)):
            cfg = scaled_config(l2)
            assert cfg.aggregate_l2_blocks / cfg.llc.blocks == ratio

    def test_directory_provisioning_2x(self):
        cfg = scaled_config("256KB")
        assert cfg.directory_provisioning == pytest.approx(2.0, rel=0.3)

    def test_l2_latency_grows_with_capacity(self):
        lats = [scaled_config(p).l2.latency for p in SCALED_L2_POINTS]
        assert lats == sorted(lats)
        assert len(set(lats)) == 3

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigError):
            scaled_config("3MB")

    def test_directory_factor_shrinks_directory(self):
        big = scaled_config("256KB", directory_factor=2.0)
        small = scaled_config("256KB", directory_factor=0.25)
        assert small.directory.entries < big.directory.entries

    def test_inclusive_capacity_constraint_enforced(self):
        with pytest.raises(ConfigError):
            scaled_config("256KB").replace(
                l2=CacheGeometry(sets=64, ways=8)
            )

    def test_llc_scale_doubles_llc(self):
        assert (
            scaled_config("256KB", llc_scale=2).llc.blocks
            == 2 * scaled_config("256KB").llc.blocks
        )

    def test_1mb_point_with_double_llc(self):
        cfg = scaled_config("1MB", llc_scale=2)
        # per-core L2 = half of per-core LLC share (paper Fig. 14)
        assert cfg.l2.blocks == cfg.llc.blocks // cfg.cores // 2

    def test_zerodev_mode_accepted(self):
        assert scaled_config("256KB",
                             directory_mode="zerodev").directory_mode == \
            "zerodev"

    def test_bad_directory_mode_rejected(self):
        with pytest.raises(ConfigError):
            scaled_config("256KB", directory_mode="moesi")


class TestOtherPresets:
    def test_manycore_l2_is_half_llc_share(self):
        cfg = scaled_manycore_config()
        assert cfg.l2.blocks == cfg.llc.blocks // cfg.cores // 2

    def test_paper_scale_matches_table1(self):
        cfg = paper_scale_config("256KB")
        assert cfg.llc.capacity_bytes == 8 * 1024 * 1024
        assert cfg.l2.capacity_bytes == 256 * 1024
        assert cfg.l1.capacity_bytes == 32 * 1024

    def test_dram_params_validate(self):
        with pytest.raises(ConfigError):
            DRAMParams(channels=3)
