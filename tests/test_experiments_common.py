"""Experiment infrastructure: caches, scales, aggregation, ASCII charts."""

import pytest

from repro.experiments.ascii_chart import bar_chart
from repro.experiments.common import (
    SCALES,
    FigureResult,
    baseline_runs_for,
    cached_run,
    clear_caches,
    get_scale,
    mix_population,
    mt_workload,
    normalized_total,
    speedups_vs_baseline,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


SMOKE = SCALES["smoke"]


class TestMixPopulation:
    def test_size_matches_scale(self):
        mixes = mix_population(SMOKE)
        assert len(mixes) == SMOKE.homo_mixes + SMOKE.hetero_mixes

    def test_cached_identity(self):
        a = mix_population(SMOKE)
        b = mix_population(SMOKE)
        assert a is b

    def test_homo_and_hetero_present(self):
        names = [m.name for m in mix_population(SMOKE)]
        assert any(n.startswith("homo") for n in names)
        assert any(n.startswith("hetero") for n in names)

    def test_mt_workload_cached(self):
        a = mt_workload("vips", SMOKE)
        b = mt_workload("vips", SMOKE)
        assert a is b
        assert len(a[0]) == SMOKE.mt_accesses


class TestCachedRun:
    def test_memoised_per_recipe(self):
        wl = mix_population(SMOKE)[0]
        r1 = cached_run(wl, "inclusive", "lru", l2="256KB")
        r2 = cached_run(wl, "inclusive", "lru", l2="256KB")
        assert r1 is r2

    def test_distinct_recipes_distinct_runs(self):
        wl = mix_population(SMOKE)[0]
        r1 = cached_run(wl, "inclusive", "lru", l2="256KB")
        r2 = cached_run(wl, "inclusive", "lru", l2="512KB")
        assert r1 is not r2

    def test_belady_policy_forces_lockstep(self):
        wl = mix_population(SMOKE)[0]
        r = cached_run(wl, "inclusive", "belady", l2="256KB")
        # lockstep: cycles == total accesses
        assert r.cycles == wl.total_accesses()

    def test_scheme_kwargs_in_key(self):
        wl = mix_population(SMOKE)[0]
        r1 = cached_run(wl, "ziv:notinprc", "lru",
                        scheme_kwargs={"round_robin": True})
        r2 = cached_run(wl, "ziv:notinprc", "lru",
                        scheme_kwargs={"round_robin": False})
        assert r1 is not r2


class TestAggregation:
    def test_speedups_vs_baseline_self_is_one(self):
        mixes = mix_population(SMOKE)[:2]
        runs = baseline_runs_for(mixes)
        s = speedups_vs_baseline(mixes, runs, runs)
        assert s["mean"] == pytest.approx(1.0)
        assert s["min"] == pytest.approx(1.0)

    def test_normalized_total_self_is_one(self):
        mixes = mix_population(SMOKE)[:2]
        runs = baseline_runs_for(mixes)
        assert normalized_total(runs, runs, "llc_misses") == 1.0
        assert normalized_total(runs, runs, "l2_misses") == 1.0


class TestScaleResolution:
    def test_explicit_scale_object(self):
        assert get_scale(SMOKE) is SMOKE

    def test_name_lookup(self):
        assert get_scale("full") == SCALES["full"]


class TestAsciiChart:
    def fig(self):
        f = FigureResult("F", "demo", ["l2", "scheme", "speedup"])
        f.add("256KB", "I", 1.0)
        f.add("256KB", "NI", 1.25)
        return f

    def test_bars_scale_to_max(self):
        out = bar_chart(self.fig(), value_col=2)
        lines = out.splitlines()
        assert "1.250" in lines[-1]
        assert lines[-1].count("#") > lines[-2].count("#")

    def test_baseline_marker(self):
        out = bar_chart(self.fig(), value_col=2, baseline=1.0)
        assert "|" in out

    def test_empty_figure(self):
        f = FigureResult("F", "t", ["a"])
        assert "no numeric rows" in bar_chart(f, value_col=0)
