"""Result reports."""

from tests.conftest import tiny_config

from repro.sim.engine import run_workload
from repro.sim.report import compare_results, describe_result
from repro.sim.trace import CoreTrace, TraceRecord, Workload


def workload():
    traces = [
        CoreTrace(
            [TraceRecord(1, (c + 1) * 512 + i % 20, i % 4 == 0, i % 5)
             for i in range(300)],
            f"app{c}",
        )
        for c in range(2)
    ]
    return Workload(traces, "report-wl")


class TestDescribe:
    def test_mentions_headline_counters(self):
        r = run_workload(tiny_config(), workload(), "ziv:notinprc")
        out = describe_result(r)
        assert "incl. victims : 0 (LLC)" in out
        assert "relocations" in out
        assert "pJ/instruction" in out

    def test_prefetch_line_only_when_active(self):
        r = run_workload(tiny_config(), workload(), "inclusive")
        assert "prefetches" not in describe_result(r)
        from repro.params import PrefetchParams

        cfg = tiny_config().replace(
            prefetch=PrefetchParams(kind="nextline", degree=1)
        )
        r2 = run_workload(cfg, workload(), "inclusive")
        assert "prefetches" in describe_result(r2)

    def test_audit_and_telemetry_lines_only_when_ran(self):
        plain = run_workload(tiny_config(), workload(), "ziv:notinprc")
        out = describe_result(plain)
        assert "audit" not in out
        assert "telemetry" not in out

        instrumented = run_workload(
            tiny_config(), workload(), "ziv:notinprc",
            audit="end", telemetry="50,events=relocation",
        )
        out2 = describe_result(instrumented)
        assert "audit         : 0 violation(s)" in out2
        assert "telemetry     :" in out2
        assert "sample(s) at interval 50" in out2
        assert "events        :" in out2
        assert "(relocation)" in out2

    def test_telemetry_event_line_needs_event_tracing(self):
        r = run_workload(
            tiny_config(), workload(), "ziv:notinprc", telemetry="50"
        )
        out = describe_result(r)
        assert "telemetry     :" in out
        assert "events        :" not in out


class TestCompare:
    def test_compare_reports_speedup_and_ratios(self):
        wl = workload()
        base = run_workload(tiny_config(), wl, "inclusive")
        cand = run_workload(tiny_config(), wl, "ziv:notinprc")
        out = compare_results(base, cand)
        assert "speedup" in out
        assert "vs baseline inclusive/lru" in out
        assert "incl. victims" in out
