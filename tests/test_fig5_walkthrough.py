"""A scripted re-enactment of the paper's Figure 5 functional flow.

Figure 5 walks one relocation through the ZIV LLC:

1. an LLC fill to address A1 allocates a directory entry and selects
   victim A2 in the target set;
2. A2 has privately cached copies, so instead of back-invalidating, a
   relocation set RS containing a NotInPrC block A3 is found;
3. A3 is evicted, A2 moves into its place in the Relocated state, and
   A2's directory entry E2 records the new <bank, set, way>;
4. later accesses to A2 are served through E2; when A2's last private
   copy is evicted, the relocated block dies (III-C2).

This test drives exactly that scenario through the real hierarchy and
checks every intermediate state, including the eviction notices.
"""

from tests.conftest import build, tiny_config


def llc_set_addrs(cfg, bank, set_idx, count, base_tag=0):
    """Distinct block addresses mapping to (bank, set) of the LLC."""
    stride = cfg.llc.banks * cfg.llc.sets_per_bank
    bank_bits = (cfg.llc.banks - 1).bit_length()
    base = (set_idx << bank_bits) | bank
    return [base + (base_tag + k) * stride for k in range(count)]


def flush_core(h, core, base, count=5):
    """Stream ``count`` bank-1 blocks through a core's tiny L1/L2 so its
    previous contents leave via eviction notices."""
    cycle = 0
    for k in range(count):
        h.access(core, base + 2 * k + 1, cycle=cycle)  # odd => bank 1
        cycle += 1


def test_figure5_flow():
    # Small machine: 2 cores, LLC 2 banks x 2 sets x 3 ways; per-core
    # private capacity is 5 blocks (L1 2 + L2 3).
    cfg = tiny_config(cores=2, l1=(1, 2), l2=(1, 3), llc=(2, 2, 3))
    h = build("ziv:notinprc", cfg)

    target = llc_set_addrs(cfg, bank=0, set_idx=0, count=4)
    a2, t1, t2, a1 = target  # a2: victim-to-relocate; a1: triggering fill
    rs = llc_set_addrs(cfg, bank=0, set_idx=1, count=3, base_tag=50)
    a3 = rs[0]  # the LRU NotInPrC block of the relocation set

    # -- Stage 0: core 1 populates the relocation set (bank 0, set 1),
    # then flushes its private caches; the eviction notices flip every
    # block of the set to NotInPrC.
    for addr in rs:
        h.access(1, addr)
    flush_core(h, 1, base=0x4000)
    for addr in rs:
        assert not h.privately_cached(addr)
        b, s, w = h.llc.location(addr)
        assert w >= 0 and h.llc.block(b, s, w).not_in_prc
    assert h.scheme.tracker.satisfies(0, 1, "notinprc")

    # -- Stage 1: fill the target set with privately cached blocks; A2
    # (core 0's) is the LRU block.
    h.access(0, a2)
    h.access(1, t1)
    h.access(1, t2)
    for addr in (a2, t1, t2):
        assert h.privately_cached(addr)
    assert not h.scheme.tracker.satisfies(0, 0, "invalid")
    assert not h.scheme.tracker.satisfies(0, 0, "notinprc")

    # -- Stage 2: the fill to A1. The baseline victim A2 is privately
    # cached, so the ZIV LLC relocates it into set 1, evicting A3 (the
    # NotInPrC block closest to the LRU position) -- no back-invalidation.
    victims_before = h.stats.inclusion_victims_llc
    relocations_before = h.stats.relocations
    h.access(0, a1)
    assert h.stats.inclusion_victims_llc == victims_before
    assert h.stats.relocations == relocations_before + 1

    e2 = h.directory.lookup(a2)
    assert e2 is not None and e2.relocated
    assert (e2.reloc_bank, e2.reloc_set) == (0, 1)
    blk = h.llc.block(e2.reloc_bank, e2.reloc_set, e2.reloc_way)
    assert blk.relocated and blk.addr == a2
    assert h.llc.probe(a2) < 0  # invisible to a home-set probe
    assert h.llc.find_anywhere(a3) is None  # A3 left the LLC
    assert h.private[0].has_block(a2)  # the private copy survived
    assert h.inclusion_holds()

    # -- Stage 3: a new sharer (core 1) reaches A2 through E2's pointer.
    hits_before = h.stats.relocated_hits
    h.access(1, a2)
    assert h.stats.relocated_hits == hits_before + 1
    assert h.directory.lookup(a2).has_sharer(1)

    # -- Stage 4: when the last private copy of A2 leaves, the relocated
    # block is invalidated: its life ends with its private copies.
    flush_core(h, 0, base=0x8000)
    flush_core(h, 1, base=0x9000)
    assert not h.privately_cached(a2)
    assert h.directory.lookup(a2) is None
    assert h.llc.find_anywhere(a2) is None
    assert h.inclusion_holds()
    assert h.directory_consistent()
