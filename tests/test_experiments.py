"""Experiment modules produce well-formed figure rows at smoke scale.

These are plumbing tests: every figure module must run end-to-end and
yield the row structure its bench prints.  The heavyweight figures reuse
the process-wide simulation cache, so the whole file stays fast.
"""

import pytest

from repro.experiments import (
    ALL_FIGURES,
    SCALES,
    FigureResult,
    clear_caches,
    get_scale,
    run_figure,
)

# Figures grouped by how heavy they are at smoke scale.
LIGHT = (
    "table1",
    "fig01_motivation",
    "fig03_llc_misses",
    "fig04_l2_misses",
)


class TestScales:
    def test_known_scales(self):
        for name in ("smoke", "quick", "standard", "full"):
            assert name in SCALES

    def test_get_scale_default_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale(None) == SCALES["smoke"]

    def test_get_scale_rejects_unknown(self):
        with pytest.raises(ValueError):
            get_scale("enormous")

    def test_run_figure_rejects_unknown(self):
        with pytest.raises(ValueError):
            run_figure("fig99_nonexistent")


class TestFigureResult:
    def test_format_table(self):
        f = FigureResult("F", "t", ["a", "b"])
        f.add("x", 1.5)
        out = f.format_table()
        assert "x" in out and "1.500" in out

    def test_row_map(self):
        f = FigureResult("F", "t", ["a", "b", "c"])
        f.add("k1", "k2", 3)
        assert f.row_map(2) == {("k1", "k2"): (3,)}


@pytest.mark.parametrize("figure", LIGHT)
def test_light_figures_run(figure):
    result = run_figure(figure, "smoke")
    assert isinstance(result, FigureResult)
    assert result.rows
    assert all(len(r) == len(result.columns) for r in result.rows)


def test_fig02_inclusion_victims_smoke():
    result = run_figure("fig02_inclusion_victims", "smoke")
    rows = result.row_map(2)
    # the I-LRU 256KB cell is the normalisation basis
    assert rows[("256KB", "I-LRU")][0] == pytest.approx(1.0)


def test_fig08_has_all_schemes():
    result = run_figure("fig08_lru_perf", "smoke")
    schemes = {r[1] for r in result.rows}
    assert "ZIV-LikelyDead" in schemes and "QBS" in schemes
    # every ZIV row reports zero inclusion victims
    for row in result.rows:
        if row[1].startswith("ZIV"):
            assert row[5] == 0


def test_fig18_cdf_monotone():
    result = run_figure("fig18_reloc_intervals", "smoke")
    by_design = {}
    for design, bucket, frac in result.rows:
        by_design.setdefault(design, []).append(frac)
    for fracs in by_design.values():
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)


def test_fig19_energy_rows():
    result = run_figure("fig19_energy", "smoke")
    assert len(result.rows) == 3
    for row in result.rows:
        assert row[1] >= 0.0  # relocation EPI is non-negative


def test_all_figures_listed():
    assert len(ALL_FIGURES) == 17
