"""The example scripts must keep running (guard against bit-rot).

Each example is executed as a subprocess with reduced workload arguments
where it accepts them; assertions check the narrative output markers, not
numbers.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "zero LLC-replacement inclusion victims" in out
    assert "ziv:mrlikelydead/hawkeye" in out


def test_workload_anatomy():
    out = run_example("workload_anatomy.py")
    assert "fits L2" in out
    assert "xalancbmk.2" in out


def test_side_channel():
    out = run_example("side_channel.py", "8")
    assert "LEAKS" in out  # the inclusive LLC
    assert "blind" in out  # ZIV / non-inclusive
    assert "Relocated-access latency channel" in out


def test_multiprogrammed_scaling():
    out = run_example("multiprogrammed_scaling.py", "2", "600")
    assert "ZIV-MRLikelyDead" in out
    assert "256KB" in out


def test_multithreaded_server():
    out = run_example("multithreaded_server.py", "600")
    assert "tpce(16c)" in out
    assert "canneal" in out
