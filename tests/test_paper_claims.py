"""Statistical checks of the paper's headline claims on a small
population.

These complement the per-figure benches: every assertion here is a
*directional* claim the paper makes, evaluated on a reduced mix
population so the whole module runs in CI time.  If one of these fails
after a change, the reproduction no longer tells the paper's story.
"""

import pytest

from repro.cache.replacement import NextUseOracle
from repro.params import scaled_config
from repro.sim.engine import run_workload
from repro.sim.metrics import geomean, mix_speedup
from repro.sim.trace import lockstep_stream
from repro.workloads import heterogeneous_mixes


@pytest.fixture(scope="module")
def mixes():
    return heterogeneous_mixes(n_mixes=4, cores=8, n_accesses=2000, seed=11)


def runs(mixes, scheme, policy, l2="512KB", **kw):
    cfg = scaled_config(l2, **kw)
    return [run_workload(cfg, wl, scheme, llc_policy=policy) for wl in mixes]


def avg_speedup(base, cand):
    return geomean(mix_speedup(b, c) for b, c in zip(base, cand))


class TestMotivation:
    def test_hawkeye_generates_far_more_inclusion_victims_than_lru(
        self, mixes
    ):
        """Paper Fig. 2: optimal-leaning policies victimise recently used
        (privately cached) blocks."""
        lru = runs(mixes, "inclusive", "lru")
        hk = runs(mixes, "inclusive", "hawkeye")
        lru_victims = sum(r.stats.inclusion_victims_llc for r in lru)
        hk_victims = sum(r.stats.inclusion_victims_llc for r in hk)
        assert hk_victims > 5 * max(1, lru_victims)

    def test_min_generates_more_victims_than_lru(self, mixes):
        cfg = scaled_config("512KB")
        total_min, total_lru = 0, 0
        for wl in mixes:
            oracle = NextUseOracle(lockstep_stream(wl))
            mn = run_workload(cfg, wl, "inclusive", "belady",
                              scheduling="lockstep", oracle=oracle)
            lru = run_workload(cfg, wl, "inclusive", "lru",
                               scheduling="lockstep")
            total_min += mn.stats.inclusion_victims_llc
            total_lru += lru.stats.inclusion_victims_llc
        assert total_min > total_lru

    def test_noninclusive_beats_inclusive_under_hawkeye(self, mixes):
        """Paper Fig. 1: the I/NI gap is significant under Hawkeye."""
        i_hk = runs(mixes, "inclusive", "hawkeye")
        ni_hk = runs(mixes, "noninclusive", "hawkeye")
        assert avg_speedup(i_hk, ni_hk) > 1.005


class TestZIVClaims:
    def test_ziv_stays_competitive_with_its_baseline(self, mixes):
        """Paper Fig. 11: ZIV-MRLikelyDead performs at (or slightly above)
        the inclusive Hawkeye baseline on average, while guaranteeing
        zero inclusion victims -- the guarantee is nearly free.  (The
        paper's own bars show ZIV within a percent of I-Hawkeye at every
        L2 point, with individual mixes regressing, so the robust claim
        is 'no collapse', not a fixed win margin.)"""
        i_hk = runs(mixes, "inclusive", "hawkeye")
        ziv = runs(mixes, "ziv:mrlikelydead", "hawkeye")
        assert avg_speedup(i_hk, ziv) > 0.98
        assert all(r.stats.inclusion_victims_llc == 0 for r in ziv)
        assert any(
            r.stats.inclusion_victims_llc > 0 for r in i_hk
        )  # the baseline really was paying victims

    def test_ziv_beats_qbs_under_hawkeye(self, mixes):
        """Paper Fig. 11: QBS sacrifices Hawkeye's hits; ZIV does not."""
        qbs = runs(mixes, "qbs", "hawkeye")
        ziv = runs(mixes, "ziv:mrlikelydead", "hawkeye")
        assert avg_speedup(qbs, ziv) > 1.0

    def test_all_ziv_variants_eliminate_victims_everywhere(self, mixes):
        for scheme, policy in (
            ("ziv:notinprc", "lru"),
            ("ziv:likelydead", "lru"),
            ("ziv:mrlikelydead", "hawkeye"),
        ):
            for r in runs(mixes, scheme, policy):
                assert r.stats.inclusion_victims_llc == 0

    def test_mrlikelydead_at_least_matches_mrnotinprc(self, mixes):
        """Paper: CHAR's inference adds roughly a percent over the
        Hawkeye-only property."""
        a = runs(mixes, "ziv:maxrrpvnotinprc", "hawkeye")
        b = runs(mixes, "ziv:mrlikelydead", "hawkeye")
        assert avg_speedup(a, b) > 0.995


class TestZeroDEVClaims:
    def test_zerodev_is_directory_size_invariant(self, mixes):
        """Paper Fig. 15 right half."""
        big = runs(mixes, "ziv:mrlikelydead", "hawkeye",
                   directory_mode="zerodev", directory_factor=2.0)
        small = runs(mixes, "ziv:mrlikelydead", "hawkeye",
                     directory_mode="zerodev", directory_factor=0.25)
        assert abs(avg_speedup(big, small) - 1.0) < 0.01
        for r in big + small:
            assert r.stats.inclusion_victims_dir == 0

    def test_mesi_small_directory_hurts(self, mixes):
        big = runs(mixes, "inclusive", "hawkeye", directory_factor=2.0)
        small = runs(mixes, "inclusive", "hawkeye", directory_factor=0.25)
        assert avg_speedup(big, small) < 1.0
        assert (
            sum(r.stats.inclusion_victims_dir for r in small)
            > sum(r.stats.inclusion_victims_dir for r in big)
        )
