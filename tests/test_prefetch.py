"""Prefetch engines and their hierarchy integration."""

import pytest

from tests.conftest import build, drive, tiny_config

from repro.params import PrefetchParams, ConfigError, scaled_config
from repro.prefetch import (
    NextLinePrefetcher,
    StridePrefetcher,
    make_prefetcher,
)


class TestEngines:
    def test_factory_none(self):
        assert make_prefetcher(PrefetchParams(kind="none")) is None

    def test_factory_kinds(self):
        assert isinstance(
            make_prefetcher(PrefetchParams(kind="nextline")),
            NextLinePrefetcher,
        )
        assert isinstance(
            make_prefetcher(PrefetchParams(kind="stride")), StridePrefetcher
        )

    def test_params_validation(self):
        with pytest.raises(ConfigError):
            PrefetchParams(kind="ghb")
        with pytest.raises(ConfigError):
            PrefetchParams(degree=0)

    def test_nextline_candidates(self):
        p = NextLinePrefetcher(degree=3)
        assert p.on_demand_miss(10, pc=5) == [11, 12, 13]

    def test_stride_needs_confidence(self):
        p = StridePrefetcher(degree=2, min_confidence=2)
        assert p.on_demand_miss(100, pc=7) == []  # first touch
        assert p.on_demand_miss(104, pc=7) == []  # stride learned, conf 0
        assert p.on_demand_miss(108, pc=7) == []  # conf 1
        assert p.on_demand_miss(112, pc=7) == [116, 120]  # conf 2

    def test_stride_resets_on_break(self):
        p = StridePrefetcher(degree=1, min_confidence=1)
        for a in (0, 4, 8, 12):
            p.on_demand_miss(a, pc=3)
        assert p.on_demand_miss(100, pc=3) == []  # stride broken

    def test_stride_never_negative_addresses(self):
        p = StridePrefetcher(degree=2, min_confidence=1)
        for a in (100, 60, 20):
            out = p.on_demand_miss(a, pc=9)
        assert all(a >= 0 for a in out)

    def test_per_pc_tracking(self):
        p = StridePrefetcher(degree=1, min_confidence=1)
        for a in (0, 4, 8):
            p.on_demand_miss(a, pc=1)
        # a different PC shares nothing
        assert p.on_demand_miss(1000, pc=2) == []


def pf_config(**kw):
    cfg = tiny_config(llc=(2, 8, 4))
    return cfg.replace(prefetch=PrefetchParams(**kw))


class TestHierarchyIntegration:
    def test_disabled_by_default(self):
        h = drive(build("inclusive"), 500, seed=1)
        assert h.stats.prefetches_issued == 0

    def test_nextline_issues_and_fills(self):
        cfg = pf_config(kind="nextline", degree=1)
        h = drive(build("inclusive", cfg), 1500, seed=1)
        assert h.stats.prefetches_issued > 0
        assert h.stats.prefetch_fills > 0

    def test_prefetched_blocks_land_in_l2_not_l1(self):
        cfg = pf_config(kind="nextline", degree=1)
        h = build("inclusive", cfg)
        h.access(0, 0x10)
        # candidate 0x11 prefetched into L2 only
        assert h.private[0].in_l2(0x11)
        assert not h.private[0].in_l1(0x11)
        blk = h.private[0].l2.blocks[h.private[0].l2.set_index(0x11)][
            h.private[0].l2.index[h.private[0].l2.set_index(0x11)][0x11]
        ]
        assert blk.prefetched

    def test_demand_touch_marks_useful(self):
        cfg = pf_config(kind="nextline", degree=1)
        h = build("inclusive", cfg)
        h.access(0, 0x10)
        h.access(0, 0x11)  # demand touch of the prefetched block
        assert h.stats.prefetch_useful == 1
        s = h.private[0].l2.set_index(0x11)
        blk = h.private[0].l2.blocks[s][h.private[0].l2.index[s][0x11]]
        assert not blk.prefetched

    def test_streaming_benefits_from_nextline(self):
        """A sequential sweep should see fewer demand LLC misses with the
        next-line prefetcher."""
        accesses = [(0, a, False) for a in range(600)]
        base = drive(build("inclusive", tiny_config(llc=(2, 8, 4))),
                     list(accesses))
        pf = drive(build("inclusive", pf_config(kind="nextline", degree=2)),
                   list(accesses))
        assert pf.stats.llc_misses < base.stats.llc_misses

    def test_invariants_hold_with_prefetching(self):
        cfg = pf_config(kind="stride", degree=2)
        h = drive(build("inclusive", cfg), 2500, seed=3)
        assert h.inclusion_holds()
        assert h.directory_consistent()

    def test_ziv_guarantee_with_prefetching(self):
        cfg = pf_config(kind="nextline", degree=2)
        h = drive(build("ziv:notinprc", cfg), 2500, seed=3)
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()
        assert h.directory_consistent()

    def test_char_groups_cover_prefetch_attribute(self):
        from repro.core.char import CharEngine
        from repro.hierarchy.private import PrivateEviction

        e = CharEngine(cores=1, banks=1)
        assert e.n_groups == 32
        demand = PrivateEviction(1, False, True, 0, prefetched=False)
        pf = PrivateEviction(1, False, True, 0, prefetched=True)
        assert e.group_of(demand) != e.group_of(pf)

    def test_scaled_config_with_prefetch(self):
        cfg = scaled_config("256KB").replace(
            prefetch=PrefetchParams(kind="stride")
        )
        from repro import homogeneous_mix, run_workload

        wl = homogeneous_mix("lbm.1", cores=8, n_accesses=400, seed=2)
        r = run_workload(cfg, wl, "ziv:likelydead")
        assert r.stats.inclusion_victims_llc == 0
