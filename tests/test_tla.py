"""TLH and ECI (the other two TLA techniques)."""

import pytest

from tests.conftest import build, drive, tiny_config

from repro.schemes import make_scheme


class TestTLH:
    def test_hints_promote_llc_state(self):
        h = drive(build("tlh"), 3000, seed=1)
        assert h.scheme.hints_sent > 0
        assert h.scheme.on_stats()["hints_sent"] == h.scheme.hints_sent

    def test_hint_rate_validation(self):
        with pytest.raises(ValueError):
            make_scheme("tlh", hint_rate=1.5)

    def test_zero_hint_rate_sends_nothing(self):
        h = drive(build("tlh", hint_rate=0.0), 2000, seed=1)
        assert h.scheme.hints_sent == 0

    def test_sampled_hints_fewer_than_full(self):
        full = drive(build("tlh", hint_rate=1.0), 2000, seed=1)
        half = drive(build("tlh", hint_rate=0.3), 2000, seed=1)
        assert half.scheme.hints_sent < full.scheme.hints_sent

    def test_still_inclusive(self):
        h = drive(build("tlh"), 2000, seed=2)
        assert h.inclusion_holds()

    def test_hint_reduces_inclusion_victims_of_hot_blocks(self):
        """A core hammering a private-cache-resident block keeps its LLC
        copy fresh through hints, so the block avoids victimisation."""
        accesses = []
        for i in range(3000):
            accesses.append((0, 0x10, False))       # hot block, L1-resident
            accesses.append((1, 2 * (i % 40), False))  # attacker pressure
        base = drive(build("inclusive"), accesses)
        hinted = drive(build("tlh"), accesses)
        assert (
            hinted.stats.inclusion_victims_llc
            <= base.stats.inclusion_victims_llc
        )


class TestECI:
    def test_early_invalidations_happen(self):
        h = drive(build("eci"), 3000, seed=1)
        assert h.scheme.early_invalidations > 0

    def test_early_invalidation_keeps_llc_copy(self):
        """ECI invalidates private copies but the block stays in the LLC
        with NotInPrC set (it can still earn a hit)."""
        cfg = tiny_config(cores=2, l2=(1, 6), llc=(2, 2, 5))
        h = drive(build("eci", cfg), 3000, seed=2)
        assert h.inclusion_holds()
        assert h.directory_consistent()

    def test_eci_counts_as_inclusion_victims(self):
        """Early invalidations ARE inclusion victims (the technique's
        cost, per the paper's Related Work discussion)."""
        h = drive(build("eci"), 3000, seed=1)
        assert (
            h.stats.inclusion_victims_llc >= h.scheme.early_invalidations
        )

    def test_stats_surface(self):
        h = drive(build("eci"), 1000, seed=3)
        assert "early_invalidations" in h.scheme.on_stats()
