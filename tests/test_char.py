"""The adapted CHAR dead-block inference engine."""

from repro.core.char import CharEngine
from repro.hierarchy.private import PrivateEviction
from repro.params import CHARParams


def ev(addr=0x10, dirty=False, fill_hit=True, reuses=0):
    return PrivateEviction(addr, dirty, fill_hit, reuses)


def engine(**kw):
    params = CHARParams(**kw) if kw else CHARParams(min_evictions=4)
    return CharEngine(cores=2, banks=2, params=params)


class TestGrouping:
    def test_thirty_two_groups(self):
        # prefetch(2) x fill-source(2) x reuse(4) x dirty(2)
        e = engine()
        assert e.n_groups == 32

    def test_groups_distinguish_attributes(self):
        from repro.hierarchy.private import PrivateEviction

        e = engine()
        groups = {
            e.group_of(PrivateEviction(1, d, fh, r, prefetched=pf))
            for fh in (False, True)
            for d in (False, True)
            for r in range(4)
            for pf in (False, True)
        }
        assert len(groups) == 32

    def test_reuse_saturates(self):
        e = engine()
        assert e.group_of(ev(reuses=3)) == e.group_of(ev(reuses=99))


class TestInference:
    def test_warmup_blocks_inference(self):
        e = engine()
        _g, dead = e.on_l2_eviction(0, ev())
        assert not dead  # below min_evictions

    def test_never_recalled_group_goes_dead(self):
        e = engine()
        dead = False
        for _ in range(10):
            _g, dead = e.on_l2_eviction(0, ev())
        assert dead

    def test_recalled_group_stays_live(self):
        e = engine(min_evictions=4, initial_d=1)
        for _ in range(16):
            g, _dead = e.on_l2_eviction(0, ev())
            e.on_recall(0, g)  # every eviction recalled
        _g, dead = e.on_l2_eviction(0, ev())
        assert not dead  # recall ratio 1 > tau = 1/2

    def test_threshold_semantics(self):
        """dead iff (recalls << d) < evictions."""
        e = engine(min_evictions=1, initial_d=2)
        state = e.core_state[0]
        g = e.group_of(ev())
        state.evictions[g] = 8
        state.recalls[g] = 1  # 1<<2 = 4 < 8 -> dead
        assert e._infer_dead(state, g)
        state.recalls[g] = 2  # 2<<2 = 8, not < 8 -> live
        assert not e._infer_dead(state, g)

    def test_counter_halving(self):
        e = engine(min_evictions=1, counter_halve_at=4)
        for _ in range(4):
            e.on_l2_eviction(0, ev())
        g = e.group_of(ev())
        assert e.core_state[0].evictions[g] == 2  # halved at 4

    def test_per_core_state_independent(self):
        e = engine()
        for _ in range(10):
            e.on_l2_eviction(0, ev())
        g = e.group_of(ev())
        assert e.core_state[1].evictions[g] == 0


class TestDynamicThreshold:
    def test_pv_empty_decrements_bank_d(self):
        e = engine()
        assert e.bank_state[0].d == 6
        e.on_pv_empty(0)
        assert e.bank_state[0].d == 5
        assert e.bank_state[0].trbv == 0b11  # both cores armed

    def test_decrement_rate_limited(self):
        e = engine()
        e.on_pv_empty(0)
        e.on_pv_empty(0)  # too soon: no further decrement
        assert e.bank_state[0].d == 5

    def test_decrement_after_interval(self):
        e = engine(decrement_interval=2, reset_interval=10**9)
        e.on_pv_empty(0)
        e.on_notice(0, 0)
        e.on_notice(0, 1)
        e.on_pv_empty(0)
        assert e.bank_state[0].d == 4

    def test_d_floor_at_min(self):
        e = engine(decrement_interval=0, min_d=5, reset_interval=10**9)
        e.on_pv_empty(0)
        e.on_pv_empty(0)
        assert e.bank_state[0].d == 5

    def test_trbv_piggyback_lowers_core_d(self):
        e = engine()
        e.on_pv_empty(0)
        assert e.core_state[1].d == 6
        e.on_notice(0, 1)
        assert e.core_state[1].d == 5
        assert e.bank_state[0].trbv == 0b01  # core 1's bit consumed

    def test_core_d_only_decreases(self):
        e = engine()
        e.core_state[1].d = 3
        e.on_pv_empty(0)  # bank d -> 5
        e.on_notice(0, 1)
        assert e.core_state[1].d == 3  # 5 > 3: kept

    def test_periodic_reset(self):
        e = engine(reset_interval=3, min_evictions=4)
        e.on_pv_empty(0)
        assert e.bank_state[0].d == 5
        for _ in range(3):
            e.on_notice(0, 0)
        assert e.bank_state[0].d == 6
        assert e.core_state[0].d == 6
        assert e.resets == 1
