"""Simulation service tests: recipe wire forms, field-attributed
rejections, job-manager dedup, and the HTTP surface end to end.

The HTTP tests run a real :class:`~repro.service.server.ServiceServer`
on an ephemeral port in ``mode="thread"`` (one CPU in CI; thread
workers keep semantics identical without fork cost) and talk to it
through :class:`~repro.service.client.ServiceClient` -- real sockets,
real JSON, nothing mocked but the clock-free workloads."""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.config_io import (
    ConfigError,
    RecipeError,
    config_to_dict,
    recipe_from_dict,
    recipe_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.params import (
    CacheGeometry,
    DirectoryGeometry,
    LLCGeometry,
    SystemConfig,
)
from repro.sim.parallel import RunRecipe
from repro.workloads import homogeneous_mix

_UNIQUE = itertools.count()


def tiny_config(engine: str = "object") -> SystemConfig:
    """A miniature CMP (mirrors conftest.tiny_config) so service jobs
    resolve in milliseconds."""
    return SystemConfig(
        cores=2,
        l1=CacheGeometry(sets=1, ways=2),
        l2=CacheGeometry(sets=2, ways=4),
        llc=LLCGeometry(banks=2, sets_per_bank=4, ways=4),
        directory=DirectoryGeometry(sets=2, ways=8),
        engine=engine,
    )


def make_recipe(scheme: str = "inclusive", policy: str = "lru",
                accesses: int = 120, unique: bool = True) -> RunRecipe:
    """A tiny, fast recipe; ``unique`` gives the workload a fresh name
    so the cross-test in-process memo can never satisfy it."""
    wl = homogeneous_mix("xalancbmk.2", cores=2, n_accesses=accesses)
    if unique:
        wl.name = f"svc-test-{next(_UNIQUE)}"
    return RunRecipe(workload=wl, scheme=scheme, policy=policy,
                     config=tiny_config())


# ---------------------------------------------------------------------------
# recipe wire forms


def test_recipe_dict_round_trip_preserves_key():
    recipe = make_recipe(scheme="ziv:likelydead", policy="srrip")
    rebuilt = recipe_from_dict(recipe_to_dict(recipe))
    assert rebuilt.key() == recipe.key()
    assert rebuilt.workload.name == recipe.workload.name
    assert rebuilt.scheme == recipe.scheme
    assert rebuilt.policy == recipe.policy


def test_recipe_round_trip_keeps_kwargs_and_scheduling():
    recipe = RunRecipe(
        workload=homogeneous_mix("gcc.1", cores=2, n_accesses=60),
        scheme="qbs",
        policy="srrip",
        scheduling="lockstep",
        policy_kwargs=(("rrpv_bits", 2),),
        config=tiny_config(),
    )
    rebuilt = recipe_from_dict(recipe_to_dict(recipe))
    assert rebuilt.key() == recipe.key()
    assert rebuilt.policy_kwargs == (("rrpv_bits", 2),)
    assert rebuilt.scheduling == "lockstep"


def test_workload_profile_form_synthesizes_deterministically():
    data = {"kind": "profile", "app": "gcc.1", "cores": 2, "accesses": 80}
    built = workload_from_dict(data)
    direct = homogeneous_mix("gcc.1", cores=2, n_accesses=80)
    assert built.fingerprint() == direct.fingerprint()


def test_workload_records_form_round_trips_fingerprint():
    wl = homogeneous_mix("mcf.1", cores=2, n_accesses=50)
    rebuilt = workload_from_dict(workload_to_dict(wl))
    assert rebuilt.fingerprint() == wl.fingerprint()


def test_belady_policy_coerces_to_lockstep():
    d = recipe_to_dict(make_recipe())
    d["policy"] = "belady"
    assert recipe_from_dict(d).scheduling == "lockstep"


# ---------------------------------------------------------------------------
# field-attributed rejections (satellite: structured errors, both paths)


def _rejection(data) -> RecipeError:
    with pytest.raises(RecipeError) as excinfo:
        recipe_from_dict(data)
    return excinfo.value


def test_unknown_engine_rejected_with_field():
    d = recipe_to_dict(make_recipe(unique=False))
    d["config"]["engine"] = "warp"
    err = _rejection(d)
    assert err.field == "config.engine"
    assert "warp" in str(err)


def test_bad_config_section_key_rejected_with_field():
    d = recipe_to_dict(make_recipe(unique=False))
    d["config"]["l2"]["bogus_ways"] = 4
    err = _rejection(d)
    assert err.field == "config.l2.bogus_ways"


def test_unknown_recipe_key_rejected_with_field():
    d = recipe_to_dict(make_recipe(unique=False))
    d["frobnicate"] = 1
    assert _rejection(d).field == "frobnicate"


def test_missing_required_key_rejected_with_field():
    d = recipe_to_dict(make_recipe(unique=False))
    del d["scheme"]
    assert _rejection(d).field == "scheme"


def test_unknown_scheme_and_policy_rejected_with_field():
    d = recipe_to_dict(make_recipe(unique=False))
    d["scheme"] = "nonesuch"
    assert _rejection(d).field == "scheme"
    d = recipe_to_dict(make_recipe(unique=False))
    d["policy"] = "nonesuch"
    assert _rejection(d).field == "policy"


def test_unknown_workload_kind_rejected_with_field():
    d = recipe_to_dict(make_recipe(unique=False))
    d["workload"] = {"kind": "quantum"}
    assert _rejection(d).field == "workload.kind"


def test_recipe_error_is_a_config_error():
    # Existing load_config callers that catch ConfigError keep working.
    assert issubclass(RecipeError, ConfigError)


# ---------------------------------------------------------------------------
# job manager: dedup + coalescing (no HTTP)


def test_manager_coalesces_inflight_submissions(monkeypatch):
    """Three submissions of one recipe while its execution is gated:
    exactly one execution, one 'run' + two 'memo' ledger records."""
    from repro.obs.ledger import read_ledger
    from repro.service.jobs import JobManager
    from repro.sim import parallel

    gate = threading.Event()
    executions = []
    real = parallel._execute_recipe

    def gated(item):
        executions.append(item[0])
        assert gate.wait(timeout=30)
        return real(item)

    monkeypatch.setattr(parallel, "_execute_recipe", gated)
    recipe = make_recipe()
    manager = JobManager(workers=2, mode="thread")
    try:
        views = [manager.submit(recipe) for _ in range(3)]
        assert views[0]["state"] == "running"
        assert views[1]["coalesced_into"] == views[0]["id"]
        assert views[2]["coalesced_into"] == views[0]["id"]
        gate.set()
        finals = [manager.wait(v["id"], timeout=30) for v in views]
        assert [v["state"] for v in finals] == ["done"] * 3
        assert sorted(v["source"] for v in finals) == ["memo", "memo", "run"]
        assert executions == [recipe.key()]
        ledger = [r.source for r in read_ledger()
                  if r.recipe_key == recipe.key()]
        assert sorted(ledger) == ["memo", "memo", "run"]
        results = [manager.result(v["id"]) for v in views]
        assert all(r is results[0] for r in results)
    finally:
        gate.set()
        manager.close()


def test_manager_resolves_memo_hits_without_execution(monkeypatch):
    from repro.service.jobs import JobManager
    from repro.sim import parallel

    recipe = make_recipe()
    manager = JobManager(workers=1, mode="thread")
    try:
        first = manager.wait(manager.submit(recipe)["id"], timeout=30)
        assert first["source"] == "run"

        def boom(item):  # pragma: no cover - must never run
            raise AssertionError("cache hit must not execute")

        monkeypatch.setattr(parallel, "_execute_recipe", boom)
        second = manager.submit(recipe)
        assert second["state"] == "done"
        assert second["source"] in ("memo", "disk")
    finally:
        manager.close()


def test_manager_records_failures(monkeypatch):
    from repro.service.jobs import JobManager
    from repro.sim import parallel

    def boom(item):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(parallel, "_execute_recipe", boom)
    manager = JobManager(workers=1, mode="thread")
    try:
        view = manager.wait(manager.submit(make_recipe())["id"], timeout=30)
        assert view["state"] == "failed"
        assert "engine exploded" in view["error"]
        assert manager.result(view["id"]) is None
    finally:
        manager.close()


def test_manager_dispatch_failure_does_not_strand_the_key(monkeypatch):
    """Regression (found by `repro lint` bring-up): an executor.submit
    that raised used to leave the recipe key in ``_inflight``, so every
    later submission of that recipe coalesced onto a primary that could
    never finish."""
    from repro.service.jobs import JobManager

    class BrokenPool:
        def submit(self, fn, item):
            raise RuntimeError("pool is broken")

    recipe = make_recipe()
    manager = JobManager(workers=1, mode="thread")
    try:
        monkeypatch.setattr(
            manager, "_ensure_executor", lambda: BrokenPool()
        )
        view = manager.submit(recipe)
        assert view["state"] == "failed"
        assert "pool is broken" in view["error"]
        monkeypatch.undo()
        # The same recipe must dispatch fresh, not coalesce onto the
        # dead primary.
        second = manager.wait(manager.submit(recipe)["id"], timeout=30)
        assert second["state"] == "done"
        assert second["source"] == "run"
        assert not second.get("coalesced_into")
    finally:
        manager.close()


def test_server_concurrent_close_is_race_free():
    """Regression (found by `repro lint` bring-up): two concurrent
    ``close()`` calls both passed the unguarded check-then-act on
    ``_closed`` and ran ``server_close()`` twice on one socket."""
    from repro.service import create_server

    server = create_server(port=0, workers=1, mode="thread").start()
    errors: "list[BaseException]" = []
    barrier = threading.Barrier(4)

    def closer():
        barrier.wait(timeout=10)
        try:
            server.close()
        except BaseException as exc:  # noqa: BLE001 - recorded for assert
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15)
    assert not any(t.is_alive() for t in threads)
    assert errors == []
    # And a closed server stays closed: start() after close() is an
    # error, not a silent relisten on a dead socket.
    with pytest.raises(RuntimeError, match="closed"):
        server.start()


# ---------------------------------------------------------------------------
# HTTP surface


@pytest.fixture
def service():
    from repro.service import ServiceClient, create_server

    server = create_server(port=0, workers=2, mode="thread").start()
    try:
        yield server, ServiceClient(server.url, timeout=30)
    finally:
        server.close()


def test_http_submit_wait_result(service):
    server, client = service
    recipe = make_recipe()
    view = client.submit(recipe)
    assert view["state"] in ("running", "done")
    final = client.wait(view["id"], timeout=30)
    assert final["state"] == "done"
    assert final["source"] == "run"
    payload = client.result(final["id"])
    assert payload["scheme"] == "inclusive"
    assert payload["workload"] == recipe.workload.name
    assert payload["summary"]["accesses"] == recipe.workload.total_accesses()
    assert payload["cycles"] > 0
    assert len(payload["ipc_per_core"]) == 2


def test_http_duplicate_submission_is_byte_identical(service):
    server, client = service
    d = recipe_to_dict(make_recipe())
    first = client.wait(client.submit(d)["id"], timeout=30)
    second = client.submit(d)
    assert second["state"] == "done"
    assert second["source"] in ("memo", "disk")
    assert client.result_bytes(first["id"]) == \
        client.result_bytes(second["id"])


def test_http_rejects_bad_engine_with_field(service):
    from repro.service import ServiceError

    server, client = service
    d = recipe_to_dict(make_recipe(unique=False))
    d["config"]["engine"] = "warp"
    with pytest.raises(ServiceError) as excinfo:
        client.submit(d)
    err = excinfo.value
    assert err.status == 400
    assert err.type == "RecipeError"
    assert err.field == "config.engine"


def test_http_rejects_bad_section_key_with_field(service):
    from repro.service import ServiceError

    server, client = service
    d = recipe_to_dict(make_recipe(unique=False))
    d["config"]["llc"]["warp_factor"] = 9
    with pytest.raises(ServiceError) as excinfo:
        client.submit(d)
    assert excinfo.value.status == 400
    assert excinfo.value.field == "config.llc.warp_factor"


def test_http_rejects_malformed_json_body(service):
    import urllib.error
    import urllib.request

    server, client = service
    req = urllib.request.Request(
        server.url + "/v1/jobs", data=b"{not json",
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=10)
    assert excinfo.value.code == 400


def test_http_unknown_job_is_404(service):
    from repro.service import ServiceError

    server, client = service
    with pytest.raises(ServiceError) as excinfo:
        client.job("j999999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.result("j999999")
    assert excinfo.value.status == 404


def test_http_unknown_endpoint_is_404(service):
    from repro.service import ServiceError

    server, client = service
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/v1/warp")
    assert excinfo.value.status == 404


def test_http_events_and_health(service):
    server, client = service
    assert client.health()["ok"] is True
    view = client.submit(make_recipe())
    client.wait(view["id"], timeout=30)
    events, cursor = client.events(0)
    kinds = [e["kind"] for e in events if e["job"]["id"] == view["id"]]
    assert kinds[-1] == "done"
    done = [e for e in events if e["kind"] == "done"][-1]
    assert done["progress"]["completed"] >= 1
    assert cursor >= len(events)
    later, _ = client.events(cursor)
    assert later == []


def test_http_metrics_expose_service_counters(service):
    from repro.obs.registry import parse_prometheus
    from repro.service import ServiceError

    server, client = service
    d = recipe_to_dict(make_recipe())
    client.wait(client.submit(d)["id"], timeout=30)
    client.submit(d)  # memo hit
    bad = recipe_to_dict(make_recipe(unique=False))
    bad["config"]["engine"] = "warp"
    with pytest.raises(ServiceError):
        client.submit(bad)
    metrics = parse_prometheus(client.metrics())
    total = ("repro_service_jobs_total",)

    def outcome(name):
        return metrics.get(
            ("repro_service_jobs_total", (("outcome", name),)), 0
        )

    assert outcome("fresh") >= 1
    assert outcome("memo") >= 1
    assert outcome("rejected") >= 1
    assert metrics[("repro_service_workers", ())] == 2
    # The ledger aggregation shares the exposition.
    assert ("repro_ledger_records", ()) in metrics


def test_http_concurrent_clients_share_one_execution(service):
    """Satellite: N clients race one recipe -> one fresh execution,
    proven by the ledger, with bit-identical result payloads."""
    from repro.obs.ledger import read_ledger
    from repro.service import ServiceClient

    server, _ = service
    recipe = make_recipe(accesses=400)
    d = recipe_to_dict(recipe)
    results = [None] * 3

    def submit_and_fetch(i):
        c = ServiceClient(server.url, timeout=60)
        final = c.wait(c.submit(d)["id"], timeout=60)
        results[i] = (final["source"], c.result_bytes(final["id"]))

    threads = [threading.Thread(target=submit_and_fetch, args=(i,))
               for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(r is not None for r in results)
    sources = sorted(s for s, _ in results)
    assert sources.count("run") == 1
    assert all(s in ("run", "memo", "disk") for s in sources)
    assert len({payload for _, payload in results}) == 1
    ledger = [r.source for r in read_ledger()
              if r.recipe_key == recipe.key()]
    assert sorted(ledger).count("run") == 1
    assert len(ledger) == 3


def test_http_both_engines_resolve(service):
    server, client = service
    base = make_recipe()
    payloads = {}
    for engine in ("object", "fast"):
        d = recipe_to_dict(base)
        d["config"]["engine"] = engine
        final = client.wait(client.submit(d)["id"], timeout=60)
        assert final["state"] == "done", final["error"]
        assert final["engine"] == engine
        payload = client.result(final["id"])
        payloads[engine] = (payload["cycles"], payload["summary"])
    # The two engines agree on the counters (the differential-oracle
    # contract), so the payloads differ only in profile attribution.
    assert payloads["object"] == payloads["fast"]


# ---------------------------------------------------------------------------
# CLI verbs


def test_cli_serve_submit_jobs(tmp_path, capsys):
    import json

    from repro.__main__ import main
    from repro.service import create_server

    server = create_server(port=0, workers=1, mode="thread").start()
    try:
        recipe = make_recipe()
        recipe_file = tmp_path / "recipe.json"
        recipe_file.write_text(json.dumps(recipe_to_dict(recipe)))
        rc = main(["submit", "--url", server.url,
                   "--recipe", str(recipe_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "done" in out
        assert "cycles:" in out

        rc = main(["jobs", "--url", server.url])
        out = capsys.readouterr().out
        assert rc == 0
        assert "inclusive/lru" in out

        # Flag-built submissions go through the profile workload form.
        rc = main(["submit", "--url", server.url,
                   "--workload", "gcc.1", "--scheme", "noninclusive",
                   "--l2", "256KB", "--accesses", "80"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "noninclusive/lru" in out
    finally:
        server.close()


def test_cli_submit_reports_rejection(tmp_path, capsys):
    import json

    from repro.__main__ import main
    from repro.service import create_server

    server = create_server(port=0, workers=1, mode="thread").start()
    try:
        d = recipe_to_dict(make_recipe(unique=False))
        d["config"]["engine"] = "warp"
        recipe_file = tmp_path / "bad.json"
        recipe_file.write_text(json.dumps(d))
        rc = main(["submit", "--url", server.url,
                   "--recipe", str(recipe_file)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "config.engine" in captured.err
    finally:
        server.close()
