"""Property vectors: bits, emptyPV, round-robin nextRS."""

from hypothesis import given, strategies as st

from repro.core.property_vector import PropertyVector


class TestBits:
    def test_initially_empty(self):
        pv = PropertyVector(16)
        assert pv.empty
        assert pv.population() == 0

    def test_set_and_get(self):
        pv = PropertyVector(16)
        assert pv.set_bit(3, True) is True
        assert pv.get_bit(3)
        assert not pv.empty
        assert pv.set_bit(3, True) is False  # no change
        assert pv.set_bit(3, False) is True
        assert pv.empty

    def test_flip_counter(self):
        pv = PropertyVector(8)
        pv.set_bit(0, True)
        pv.set_bit(0, True)
        pv.set_bit(0, False)
        assert pv.flips == 2


class TestNextRS:
    def test_empty_returns_minus_one(self):
        pv = PropertyVector(8)
        assert pv.next_relocation_set() == -1
        assert pv.peek_relocation_set() == -1

    def test_single_bit(self):
        pv = PropertyVector(8)
        pv.set_bit(5, True)
        assert pv.next_relocation_set() == 5
        assert pv.next_relocation_set() == 5  # round robin on one set

    def test_round_robin_cycles(self):
        pv = PropertyVector(8)
        for s in (1, 4, 6):
            pv.set_bit(s, True)
        seq = [pv.next_relocation_set() for _ in range(6)]
        assert seq == [1, 4, 6, 1, 4, 6]

    def test_peek_does_not_consume(self):
        pv = PropertyVector(8)
        pv.set_bit(2, True)
        pv.set_bit(5, True)
        assert pv.peek_relocation_set() == 2
        assert pv.peek_relocation_set() == 2
        assert pv.next_relocation_set() == 2
        assert pv.peek_relocation_set() == 5

    def test_force_pointer(self):
        pv = PropertyVector(8)
        pv.set_bit(1, True)
        pv.set_bit(6, True)
        pv.force_pointer(1)
        assert pv.next_relocation_set() == 6

    def test_round_robin_disabled_picks_lowest(self):
        pv = PropertyVector(8)
        pv.round_robin = False
        for s in (2, 5):
            pv.set_bit(s, True)
        assert [pv.next_relocation_set() for _ in range(3)] == [2, 2, 2]

    @given(
        bits=st.sets(st.integers(min_value=0, max_value=31), min_size=1,
                     max_size=12)
    )
    def test_round_robin_visits_all_uniformly(self, bits):
        """Over len(bits) consecutive picks, every eligible set is used
        exactly once (the uniform load-spreading of paper III-D1)."""
        pv = PropertyVector(32)
        for s in bits:
            pv.set_bit(s, True)
        picks = [pv.next_relocation_set() for _ in range(len(bits))]
        assert sorted(picks) == sorted(bits)

    @given(
        bits=st.sets(st.integers(min_value=0, max_value=31), max_size=8),
        ops=st.lists(st.integers(min_value=0, max_value=31), max_size=20),
    )
    def test_next_rs_always_eligible(self, bits, ops):
        pv = PropertyVector(32)
        for s in bits:
            pv.set_bit(s, True)
        for o in ops:
            pv.set_bit(o, not pv.get_bit(o))
            pick = pv.next_relocation_set()
            if pv.empty:
                assert pick == -1
            else:
                assert pv.get_bit(pick)
