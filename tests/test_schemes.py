"""Inclusion schemes: baseline inclusive, non-inclusive, QBS, SHARP,
CHARonBase."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import build, drive, tiny_config

from repro.schemes import make_scheme


class TestFactory:
    def test_known_schemes(self):
        for name in ("inclusive", "noninclusive", "qbs", "sharp",
                     "charonbase", "ziv:notinprc", "ziv:mrlikelydead"):
            assert make_scheme(name).name == name

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_scheme("exclusive")

    def test_unknown_ziv_property(self):
        with pytest.raises(ValueError):
            make_scheme("ziv:optimal")

    def test_double_bind_rejected(self):
        h = build("inclusive")
        with pytest.raises(RuntimeError):
            h.scheme.bind(h)


class TestInclusive:
    def test_back_invalidation_generates_inclusion_victims(self):
        h = drive(build("inclusive"), 3000, seed=1)
        assert h.stats.inclusion_victims_llc > 0
        assert h.stats.back_invalidations_llc > 0

    def test_inclusion_invariant_holds(self):
        h = drive(build("inclusive"), 3000, seed=2)
        assert h.inclusion_holds()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_inclusion_invariant_random(self, seed):
        h = drive(build("inclusive"), 400, seed=seed)
        assert h.inclusion_holds()
        assert h.directory_consistent()


class TestNonInclusive:
    def test_never_back_invalidates_from_llc(self):
        h = drive(build("noninclusive"), 3000, seed=1)
        assert h.stats.back_invalidations_llc == 0
        assert h.stats.inclusion_victims_llc == 0

    def test_fourth_case_occurs(self):
        """Private copies surviving LLC eviction produce directory-hit /
        LLC-miss accesses served by forwarding."""
        h = drive(build("noninclusive"), 4000, seed=3)
        # inclusion must NOT hold for a noninclusive LLC under pressure
        # (some privately cached block is absent from the LLC eventually)
        # -- the stat that proves the fourth case ran is the forward count
        # implicit in llc misses with directory hits; we detect via the
        # broken inclusion property:
        assert not h.inclusion_holds() or h.stats.llc_misses == 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_directory_still_consistent(self, seed):
        h = drive(build("noninclusive"), 400, seed=seed)
        assert h.directory_consistent()


class TestQBS:
    def test_skips_privately_cached_victims(self):
        h = drive(build("qbs"), 3000, seed=1)
        assert h.stats.qbs_retries > 0

    def test_failure_path_counts(self):
        """With private caches nearly as large as the LLC share, QBS can
        exhaust its candidate list and must fall back (inclusion
        victims)."""
        cfg = tiny_config(cores=2, l2=(1, 6), llc=(2, 2, 5))
        h = drive(build("qbs", cfg), 4000, seed=5)
        assert h.stats.qbs_failures > 0
        assert h.stats.inclusion_victims_llc > 0

    def test_inclusion_invariant(self):
        h = drive(build("qbs"), 2000, seed=2)
        assert h.inclusion_holds()


class TestSHARP:
    def test_prefers_non_private_victims(self):
        h = drive(build("sharp"), 3000, seed=1)
        # SHARP step 3 (alarm) should be rare relative to fills
        assert h.stats.sharp_alarms <= h.stats.llc_fills

    def test_alarm_path_under_pressure(self):
        cfg = tiny_config(cores=2, l2=(1, 6), llc=(2, 2, 5))
        h = drive(build("sharp", cfg), 4000, seed=5)
        assert h.stats.sharp_alarms > 0

    def test_inclusion_invariant(self):
        h = drive(build("sharp"), 2000, seed=2)
        assert h.inclusion_holds()

    def test_requester_only_victims_allowed(self):
        """Step 2 exists: SHARP may evict blocks private to the requester
        without raising the alarm."""
        h = drive(build("sharp"), 3000, seed=7)
        assert h.stats.inclusion_victims_llc >= h.stats.sharp_alarms * 0


class TestCHAROnBase:
    def test_uses_char_engine(self):
        h = build("charonbase")
        assert h.char is not None

    def test_reduces_inclusion_victims_vs_baseline(self):
        cfg = tiny_config(cores=2, l2=(1, 6), llc=(2, 2, 5))
        base = drive(build("inclusive", cfg), 5000, seed=9)
        cfg2 = tiny_config(cores=2, l2=(1, 6), llc=(2, 2, 5))
        cob = drive(build("charonbase", cfg2), 5000, seed=9)
        assert (
            cob.stats.inclusion_victims_llc
            <= base.stats.inclusion_victims_llc
        )

    def test_inclusion_invariant(self):
        h = drive(build("charonbase"), 2000, seed=2)
        assert h.inclusion_holds()
