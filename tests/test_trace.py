"""Trace containers and the canonical lock-step stream."""

import pytest

from repro.sim.trace import (
    CoreTrace,
    TraceRecord,
    Workload,
    interleave_records,
    lockstep_stream,
)


def trace(addrs, name="t"):
    return CoreTrace([TraceRecord(1, a, False, 0) for a in addrs], name)


class TestCoreTrace:
    def test_len_iter_getitem(self):
        t = trace([1, 2, 3])
        assert len(t) == 3
        assert [r.addr for r in t] == [1, 2, 3]
        assert t[1].addr == 2

    def test_instructions_counts_gaps(self):
        t = trace([1, 2])
        assert t.instructions == 4  # (gap 1 + access) x 2

    def test_footprint(self):
        assert trace([1, 2, 2, 3]).footprint() == 3

    def test_record_equality(self):
        assert TraceRecord(1, 2, False, 3) == TraceRecord(1, 2, False, 3)
        assert TraceRecord(1, 2, False, 3) != TraceRecord(1, 2, True, 3)


class TestWorkload:
    def test_requires_traces(self):
        with pytest.raises(ValueError):
            Workload([], "empty")

    def test_cores_and_total(self):
        wl = Workload([trace([1]), trace([2, 3])], "w")
        assert wl.cores == 2
        assert wl.total_accesses() == 3

    def test_describe(self):
        wl = Workload([trace([1], "a"), trace([2], "b")], "mix")
        assert "a" in wl.describe() and "mix" in wl.describe()


class TestLockstep:
    def test_round_robin_order(self):
        wl = Workload([trace([1, 2]), trace([10, 20])], "w")
        assert lockstep_stream(wl) == [1, 10, 2, 20]

    def test_uneven_lengths(self):
        wl = Workload([trace([1, 2, 3]), trace([10])], "w")
        assert lockstep_stream(wl) == [1, 10, 2, 3]

    def test_interleave_records_pairs(self):
        wl = Workload([trace([1]), trace([10])], "w")
        assert [(c, r.addr) for c, r in interleave_records(wl)] == [
            (0, 1),
            (1, 10),
        ]
