"""The parallel runner and the persistent result cache."""

from __future__ import annotations

import pickle

import pytest

from tests.conftest import tiny_config

from repro.sim.engine import Simulation, SimResult
from repro.sim.parallel import (
    RunRecipe,
    cache_dir,
    cache_enabled,
    cache_info,
    clear_memo,
    clear_result_cache,
    fetch_or_run,
    make_recipe,
    run_many,
)
from repro.sim.trace import CoreTrace, TraceRecord, Workload


def small_workloads(n=2, cores=2, length=200):
    out = []
    for k in range(n):
        traces = [
            CoreTrace(
                [TraceRecord(1, (c + 1) * 256 + (i * (k + 2)) % 40,
                             i % 5 == 0, i % 4) for i in range(length)]
            )
            for c in range(cores)
        ]
        out.append(Workload(traces, f"wl{k}"))
    return out


def grid_recipes():
    """The determinism grid the issue asks for: {inclusive, ziv, qbs} x
    {lru, srrip} over two workloads on the tiny machine."""
    cfg = tiny_config()
    return [
        RunRecipe(workload=wl, scheme=scheme, config=cfg, policy=policy)
        for scheme in ("inclusive", "ziv:notinprc", "qbs")
        for policy in ("lru", "srrip")
        for wl in small_workloads()
    ]


def summarise(result: SimResult) -> tuple:
    s = result.stats
    return (
        tuple(c.cycles for c in s.cores),
        tuple(c.instructions for c in s.cores),
        s.llc_misses,
        s.l2_misses,
        s.inclusion_victims_llc,
        s.relocations,
        s.directory_evictions,
    )


class TestDeterminism:
    def test_parallel_matches_serial(self, monkeypatch, tmp_path):
        """jobs=4 must merge to byte-identical results vs the serial loop,
        cold (no cache) in both cases."""
        monkeypatch.setenv("REPRO_CACHE", "off")
        recipes = grid_recipes()
        clear_memo()
        serial = run_many(recipes)
        clear_memo()
        parallel = run_many(recipes, jobs=4)
        assert [summarise(r) for r in serial] == [
            summarise(r) for r in parallel
        ]
        # Stronger: identical over the full pickled payload.
        for a, b in zip(serial, parallel):
            assert pickle.dumps(summarise(a)) == pickle.dumps(summarise(b))

    def test_submission_order_preserved(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        recipes = grid_recipes()
        clear_memo()
        results = run_many(recipes, jobs=2)
        for recipe, result in zip(recipes, results):
            assert result.workload == recipe.workload.name
            assert result.scheme == recipe.scheme
            assert result.policy == recipe.policy

    def test_duplicate_recipes_share_one_result(self):
        wl = small_workloads(1)[0]
        r = RunRecipe(workload=wl, scheme="inclusive", config=tiny_config())
        clear_memo()
        a, b = run_many([r, r], jobs=2)
        assert a is b


class TestRecipeKeys:
    def test_key_is_stable_and_content_based(self):
        wl = small_workloads(1)[0]
        cfg = tiny_config()
        r1 = RunRecipe(workload=wl, scheme="inclusive", config=cfg)
        r2 = RunRecipe(workload=wl, scheme="inclusive", config=tiny_config())
        assert r1.key() == r2.key()

    def test_key_varies_with_recipe(self):
        wl = small_workloads(1)[0]
        cfg = tiny_config()
        base = RunRecipe(workload=wl, scheme="inclusive", config=cfg)
        others = [
            RunRecipe(workload=wl, scheme="qbs", config=cfg),
            RunRecipe(workload=wl, scheme="inclusive", config=cfg,
                      policy="srrip"),
            RunRecipe(workload=small_workloads(2)[1], scheme="inclusive",
                      config=cfg),
            RunRecipe(workload=wl, scheme="inclusive", config=cfg,
                      scheduling="lockstep"),
        ]
        keys = {base.key()} | {o.key() for o in others}
        assert len(keys) == 5

    def test_recipe_pickles(self):
        recipe = grid_recipes()[0]
        clone = pickle.loads(pickle.dumps(recipe))
        assert clone.key() == recipe.key()

    def test_make_recipe_belady_forces_lockstep(self):
        wl = small_workloads(1)[0]
        r = make_recipe(wl, "inclusive", policy="belady")
        assert r.scheduling == "lockstep"


class TestDiskCache:
    def test_cold_miss_then_warm_hit(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        wl = small_workloads(1)[0]
        recipe = RunRecipe(workload=wl, scheme="inclusive",
                           config=tiny_config())
        clear_memo()
        assert cache_info()["entries"] == 0
        first = fetch_or_run(recipe)
        assert cache_info()["entries"] == 1
        # Warm: a fresh process would hit disk; simulate by clearing the
        # memo and forbidding execution.
        clear_memo()
        monkeypatch.setattr(
            RunRecipe, "execute",
            lambda self: pytest.fail("cache miss on warm run"),
        )
        second = fetch_or_run(recipe)
        assert summarise(first) == summarise(second)

    def test_cache_off_bypasses_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not cache_enabled()
        wl = small_workloads(1)[0]
        recipe = RunRecipe(workload=wl, scheme="inclusive",
                           config=tiny_config())
        clear_memo()
        fetch_or_run(recipe)
        assert cache_info()["entries"] == 0

    def test_corrupt_entry_is_dropped(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        wl = small_workloads(1)[0]
        recipe = RunRecipe(workload=wl, scheme="inclusive",
                           config=tiny_config())
        clear_memo()
        fetch_or_run(recipe)
        [entry] = cache_dir().glob("*.pkl")
        entry.write_bytes(b"not a pickle")
        clear_memo()
        result = fetch_or_run(recipe)  # falls back to a fresh run
        assert result.stats.llc_misses >= 0

    def test_clear_result_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        wl = small_workloads(1)[0]
        clear_memo()
        fetch_or_run(
            RunRecipe(workload=wl, scheme="inclusive", config=tiny_config())
        )
        assert clear_result_cache() == 1
        assert cache_info()["entries"] == 0

    def test_result_pickle_roundtrip(self):
        wl = small_workloads(1)[0]
        recipe = RunRecipe(workload=wl, scheme="ziv:notinprc",
                           config=tiny_config())
        result = recipe.execute()
        clone = pickle.loads(pickle.dumps(result))
        assert summarise(clone) == summarise(result)
        assert clone.scheme == result.scheme


class TestEmptyTraces:
    def test_idle_core_does_not_raise(self, tiny):
        """Regression: a core with an empty trace must simulate cleanly
        with zero cycles, not raise on the first heap pop."""
        wl = small_workloads(1)[0]
        traces = [wl.traces[0], CoreTrace([])]
        idle_wl = Workload(traces, "half-idle")
        from repro.hierarchy.cmp import CacheHierarchy
        from repro.schemes import make_scheme

        h = CacheHierarchy(tiny, make_scheme("inclusive"), llc_policy="lru")
        result = Simulation(h, idle_wl).run()
        assert result.stats.cores[0].cycles > 0
        assert result.stats.cores[1].cycles == 0
        assert result.stats.cores[1].instructions == 0

    def test_all_idle(self, tiny):
        wl = Workload([CoreTrace([]), CoreTrace([])], "all-idle")
        from repro.hierarchy.cmp import CacheHierarchy
        from repro.schemes import make_scheme

        h = CacheHierarchy(tiny, make_scheme("inclusive"), llc_policy="lru")
        result = Simulation(h, wl).run()
        assert all(c.cycles == 0 for c in result.stats.cores)
