"""The generic set-associative array."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.block import CacheBlock
from repro.cache.replacement import LRUPolicy
from repro.cache.set_assoc import AccessContext, SetAssociativeCache


def make_cache(sets=4, ways=4, shift=0):
    return SetAssociativeCache(sets, ways, LRUPolicy(), index_shift=shift)


def fill(cache, addr, ctx=None):
    ctx = ctx or AccessContext()
    s = cache.set_index(addr)
    way = cache.choose_victim_way(s, ctx)
    if cache.blocks[s][way].valid:
        cache.evict_way(s, way, ctx)
    return cache.install(s, way, addr, ctx)


class TestBasics:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            make_cache(sets=3)
        with pytest.raises(ValueError):
            make_cache(ways=0)

    def test_miss_then_hit(self):
        c = make_cache()
        assert c.probe(0x10) < 0
        fill(c, 0x10)
        assert c.probe(0x10) >= 0
        assert c.contains(0x10)

    def test_index_shift(self):
        c = make_cache(sets=4, ways=2, shift=3)
        assert c.set_index(0b101000) == (0b101000 >> 3) & 3

    def test_install_into_valid_way_raises(self):
        c = make_cache()
        blk = fill(c, 0)
        s = c.set_index(0)
        way = c.index[s][0]
        with pytest.raises(LookupError):
            c.install(s, way, 99, AccessContext())

    def test_evict_invalid_way_raises(self):
        c = make_cache()
        with pytest.raises(LookupError):
            c.evict_way(0, 0, AccessContext())

    def test_invalid_way_used_before_victim(self):
        c = make_cache(sets=1, ways=4)
        for a in range(3):
            fill(c, a)
        # one way still invalid: choose_victim_way must return it
        way = c.choose_victim_way(0, AccessContext())
        assert not c.blocks[0][way].valid

    def test_occupancy_and_resident_addrs(self):
        c = make_cache()
        for a in range(8):
            fill(c, a)
        assert c.occupancy() == 8
        assert c.resident_addrs() == set(range(8))


class TestEviction:
    def test_capacity_eviction_is_lru(self):
        c = make_cache(sets=1, ways=4)
        for a in range(4):
            fill(c, a)
        c.touch(0, AccessContext())  # 0 becomes MRU; LRU is now 1
        fill(c, 100)
        assert not c.contains(1)
        assert c.contains(0)

    def test_evicted_block_state_readable(self):
        c = make_cache(sets=1, ways=1)
        blk = fill(c, 7)
        blk.dirty = True
        s = c.set_index(7)
        out = c.evict_way(s, 0, AccessContext())
        assert out.addr == 7
        assert out.dirty
        assert not c.contains(7)


class TestRelocatedBlocks:
    def test_probe_skips_relocated(self):
        c = make_cache(sets=4, ways=2)
        src = CacheBlock()
        src.addr = 0  # home set would be 0
        src.valid = True
        src.dirty = True
        src.char_tag = (1, 3)
        # place it, relocated, into set 2
        c.install_relocated(2, 0, src, AccessContext())
        blk = c.blocks[2][0]
        assert blk.relocated
        assert blk.dirty
        assert blk.char_tag == (1, 3)
        assert not blk.not_in_prc
        # a probe for addr 0 looks in set 0 and must miss
        assert c.probe(0) < 0

    def test_extract_way_skips_policy_evict(self):
        class Spy(LRUPolicy):
            def __init__(self):
                super().__init__()
                self.evicted = 0

            def on_evict(self, s, w, ctx):
                self.evicted += 1

        spy = Spy()
        c = SetAssociativeCache(2, 2, spy)
        s = c.set_index(5)
        c.install(s, 0, 5, AccessContext())
        out = c.extract_way(s, 0)
        assert out.addr == 5
        assert spy.evicted == 0
        assert not c.contains(5)

    def test_extract_invalid_raises(self):
        c = make_cache()
        with pytest.raises(LookupError):
            c.extract_way(0, 0)


class TestPropertyBased:
    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=255), min_size=1, max_size=200
        )
    )
    def test_index_is_consistent_with_contents(self, addrs):
        """After arbitrary fills, every per-set dict entry points at a
        valid block with the right address, and every valid block is
        indexed."""
        c = make_cache(sets=4, ways=4)
        for a in addrs:
            if not c.contains(a):
                fill(c, a)
            else:
                c.touch(a, AccessContext())
        for s in range(c.sets):
            for addr, way in c.index[s].items():
                blk = c.blocks[s][way]
                assert blk.valid and blk.addr == addr
            valid_count = sum(1 for b in c.blocks[s] if b.valid)
            assert valid_count == len(c.index[s])

    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=63), min_size=1, max_size=300
        )
    )
    def test_occupancy_never_exceeds_capacity(self, addrs):
        c = make_cache(sets=2, ways=3)
        for a in addrs:
            if not c.contains(a):
                fill(c, a)
        assert c.occupancy() <= 6
