"""Oracle-assisted ZIV (the paper's Section VI future-work oracle)."""

from tests.conftest import tiny_config

from repro.cache.replacement import NextUseOracle
from repro.core.oracle_ziv import OracleZIVScheme
from repro.hierarchy.cmp import CacheHierarchy
from repro.sim.engine import Simulation
from repro.sim.trace import CoreTrace, TraceRecord, Workload, lockstep_stream


def circular_workload(cores=2, n=2000, footprint=12):
    traces = []
    for c in range(cores):
        recs = [
            TraceRecord(1, (c + 1) * 4096 + (i % footprint), False, 3)
            for i in range(n)
        ]
        traces.append(CoreTrace(recs, f"circ{c}"))
    return Workload(traces, "circ")


def run_oracle(cfg=None, wl=None):
    cfg = cfg or tiny_config(cores=2, l2=(1, 3), llc=(2, 2, 3))
    wl = wl or circular_workload()
    oracle = NextUseOracle(lockstep_stream(wl))
    h = CacheHierarchy(cfg, OracleZIVScheme(oracle), llc_policy="lru")
    return Simulation(h, wl, scheduling="lockstep").run(), h


class TestOracleZIV:
    def test_name_and_guarantee(self):
        result, h = run_oracle()
        assert result.scheme == "ziv:oracle"
        assert result.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()

    def test_relocations_happen_under_pressure(self):
        """Hot private-resident blocks age to the LLC LRU position while
        still privately cached -> the oracle design must relocate (or
        re-victimise in-set) instead of back-invalidating."""
        traces = []
        for c in range(2):
            base = (c + 1) * 4096
            recs = []
            for i in range(3000):
                if i % 2:
                    recs.append(TraceRecord(1, base + (i // 2) % 64, False, 7))
                else:
                    recs.append(TraceRecord(1, base + 8000 + i % 3, False, 9))
            traces.append(CoreTrace(recs, f"hot{c}"))
        wl = Workload(traces, "hotstream")
        result, h = run_oracle(wl=wl)
        assert (
            result.stats.relocations + result.stats.relocation_same_set > 0
        )
        assert result.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()

    def test_directory_consistent(self):
        _result, h = run_oracle()
        assert h.directory_consistent()

    def test_not_worse_than_random_property_on_circular(self):
        """The oracle-assisted design should not lose to the plain
        NotInPrC design on a MIN-friendly circular workload."""
        from repro.schemes import make_scheme

        wl = circular_workload(n=4000, footprint=14)
        cfg = tiny_config(cores=2, l2=(1, 3), llc=(2, 2, 3))
        result, _h = run_oracle(cfg, wl)
        cfg2 = tiny_config(cores=2, l2=(1, 3), llc=(2, 2, 3))
        h2 = CacheHierarchy(cfg2, make_scheme("ziv:notinprc"),
                            llc_policy="lru")
        wl2 = circular_workload(n=4000, footprint=14)
        base = Simulation(h2, wl2, scheduling="lockstep").run()
        assert result.stats.llc_misses <= base.stats.llc_misses * 1.1
