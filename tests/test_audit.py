"""The runtime invariant auditor (repro.sim.audit).

Covers: spec parsing and resolution precedence, clean audited runs over
the scheme x policy grid, corruption injection (the auditor must name the
exact invariant and location), fail-fast and truncation behaviour, engine
integration (sweep cadence, SimResult.audit), the CLI flag, and cache-key
participation (audited and unaudited recipes must never alias).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from tests.conftest import build, tiny_config

from repro.core.property_vector import PropertyVector
from repro.params import AuditParams, ConfigError
from repro.sim.audit import (
    AUDIT_ENV_VAR,
    AuditError,
    AuditReport,
    AuditViolation,
    InvariantAuditor,
    audit_hierarchy,
    audit_params_from_env,
    parse_audit_spec,
    resolve_audit,
)
from repro.sim.engine import run_workload
from repro.sim.parallel import make_recipe
from repro.sim.trace import CoreTrace, TraceRecord, Workload


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def mixing_workload(cores=2, length=150, addrs=48, seed=3):
    """Random traces with a shared address space, small enough to force
    LLC pressure (and hence relocations) on the tiny machine."""
    rng = random.Random(seed)
    traces = [
        CoreTrace(
            [
                TraceRecord(1, rng.randrange(addrs), rng.random() < 0.3,
                            rng.randrange(16))
                for _ in range(length)
            ],
            name=f"mix{c}",
        )
        for c in range(cores)
    ]
    return Workload(traces, name="mixing")


def drive_until(h, pred, limit=2000, seed=3, addrs=48):
    """Drive random accesses until ``pred(h)`` holds; fail if it never
    does (the corruption tests need specific machine states)."""
    rng = random.Random(seed)
    for i in range(limit):
        h.access(rng.randrange(h.config.cores), rng.randrange(addrs),
                 rng.random() < 0.3, pc=i & 0xF, cycle=i, global_pos=i)
        if pred(h):
            return h
    pytest.fail("drive_until: predicate never satisfied")


def relocated_state(scheme="ziv:notinprc"):
    """A ZIV hierarchy paused at a moment with at least one Relocated
    directory entry (and therefore a relocated LLC block)."""
    return drive_until(
        build(scheme),
        lambda h: any(e.relocated for e in h.directory.iter_valid()),
    )


# ---------------------------------------------------------------------------
# Spec parsing and resolution
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_none_is_disabled_default(self):
        assert parse_audit_spec(None) == AuditParams()

    def test_empty_and_end_mean_final_sweep_only(self):
        for spec in ("", "end", "final", "END , "):
            p = parse_audit_spec(spec)
            assert p.enabled and p.interval == 0 and not p.fail_fast

    def test_every(self):
        assert parse_audit_spec("every").interval == 1
        assert parse_audit_spec("all").interval == 1

    def test_integer_interval(self):
        assert parse_audit_spec("100").interval == 100

    def test_fail_fast_and_collect(self):
        assert parse_audit_spec("end,fail").fail_fast
        assert parse_audit_spec("100,failfast").fail_fast
        assert not parse_audit_spec("fail,collect").fail_fast

    def test_off(self):
        assert not parse_audit_spec("off").enabled
        assert not parse_audit_spec("none").enabled

    def test_bad_token_raises(self):
        with pytest.raises(ConfigError, match="bad audit spec token"):
            parse_audit_spec("end,bogus")

    def test_interval_validation(self):
        with pytest.raises(ConfigError):
            AuditParams(interval=-1)
        with pytest.raises(ConfigError):
            AuditParams(max_violations=0)


class TestResolution:
    def test_explicit_params_win_over_env(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV_VAR, "every,fail")
        explicit = AuditParams(enabled=False)
        assert resolve_audit(explicit, AuditParams()) == explicit

    def test_explicit_string_is_parsed(self):
        assert resolve_audit("25,fail") == AuditParams(
            enabled=True, interval=25, fail_fast=True
        )

    def test_env_wins_over_config(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV_VAR, "end")
        resolved = resolve_audit(None, AuditParams(enabled=False))
        assert resolved.enabled and resolved.interval == 0

    def test_config_is_the_fallback(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV_VAR, raising=False)
        cfg_audit = AuditParams(enabled=True, interval=7)
        assert resolve_audit(None, cfg_audit) == cfg_audit
        assert resolve_audit(None, None) == AuditParams()

    def test_blank_env_is_unset(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV_VAR, "   ")
        assert audit_params_from_env() is None

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_audit(42)


# ---------------------------------------------------------------------------
# Clean audited runs: the scheme x policy grid
# ---------------------------------------------------------------------------


class TestCleanRuns:
    @pytest.mark.parametrize("scheme", ["inclusive", "ziv:notinprc"])
    @pytest.mark.parametrize("policy", ["lru", "srrip", "hawkeye"])
    def test_grid_audits_clean_every_access(self, scheme, policy):
        """The acceptance grid at test scale: auditing after every access
        in fail-fast mode must complete with zero violations."""
        r = run_workload(
            tiny_config(), mixing_workload(), scheme, llc_policy=policy,
            audit="every,fail",
        )
        assert r.audit is not None
        assert r.audit.ok
        assert r.audit.sweeps == r.stats.total_accesses + 1  # + final

    def test_noninclusive_skips_inclusion_check_only(self):
        """A non-inclusive LLC violates inclusion by design; the audit
        must not flag that, while still checking everything else."""
        r = run_workload(
            tiny_config(), mixing_workload(), "noninclusive",
            audit="every,fail",
        )
        assert r.audit.ok

    def test_lockstep_mode_audited(self):
        r = run_workload(
            tiny_config(), mixing_workload(), "ziv:notinprc",
            scheduling="lockstep", audit="every,fail",
        )
        assert r.audit.ok
        assert r.audit.sweeps == r.stats.total_accesses + 1

    def test_interval_cadence(self):
        wl = mixing_workload()
        r = run_workload(
            tiny_config(), wl, "ziv:notinprc", audit="25",
        )
        total = r.stats.total_accesses
        assert r.audit.sweeps == total // 25 + 1  # periodic + final

    def test_end_only_runs_one_sweep(self):
        r = run_workload(
            tiny_config(), mixing_workload(), "ziv:notinprc", audit="end",
        )
        assert r.audit.sweeps == 1

    def test_disabled_leaves_result_unaudited(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV_VAR, raising=False)
        r = run_workload(tiny_config(), mixing_workload(), "ziv:notinprc")
        assert r.audit is None


# ---------------------------------------------------------------------------
# Corruption injection: the auditor must name the invariant and location
# ---------------------------------------------------------------------------


class TestCorruptionDetection:
    def test_pv_bit_flip_detected(self):
        """Silently flipping one property-vector bit must surface as a
        ``pv`` violation at exactly that bank and set."""
        h = relocated_state()
        tracker = h.scheme.tracker
        prop = tracker.properties[0]
        pv = tracker.pvs[0][prop]
        set_idx = 1
        pv.bits ^= 1 << set_idx  # corrupt, bypassing set_bit bookkeeping
        found = [v for v in audit_hierarchy(h) if v.invariant == "pv"]
        assert any(
            v.bank == 0 and v.set_idx == set_idx and prop in v.detail
            for v in found
        ), found

    def test_relocation_tuple_corruption_detected(self):
        """Pointing a Relocated entry at the wrong way must surface as a
        ``directory`` violation naming the stale tuple."""
        h = relocated_state()
        entry = next(e for e in h.directory.iter_valid() if e.relocated)
        true_way = entry.reloc_way
        entry.reloc_way = (true_way + 1) % h.llc.geometry.ways
        found = audit_hierarchy(h)
        # Forward check: the tuple no longer reaches the block.
        assert any(
            v.invariant == "directory" and v.addr == entry.addr
            and v.way == entry.reloc_way and "stale" in v.detail
            for v in found
        ), found
        # Reverse check: the orphaned block has no entry pointing at it.
        assert any(
            v.invariant == "directory" and v.way == true_way
            and "pointing back" in v.detail
            for v in found
        ), found

    def test_notinprc_flag_corruption_detected(self):
        h = relocated_state()
        blk = next(
            b
            for bank in h.llc.banks for s in bank.blocks for b in s
            if b.valid and not b.relocated
        )
        blk.not_in_prc = not blk.not_in_prc
        found = audit_hierarchy(h)
        assert any(
            v.invariant == "directory" and v.addr == blk.addr
            and "NotInPrC" in v.detail
            for v in found
        ), found

    def test_sharer_corruption_detected(self):
        h = relocated_state()
        entry = next(
            e for e in h.directory.iter_valid() if e.sharers != 0
        )
        entry.sharers ^= 0b10  # pretend core 1 joined/left
        found = audit_hierarchy(h)
        assert any(
            v.invariant == "conservation" and v.addr == entry.addr
            for v in found
        ), found

    def test_fail_fast_raises_with_violations_attached(self):
        h = relocated_state()
        h.scheme.tracker.pvs[0][h.scheme.tracker.properties[0]].bits ^= 1
        auditor = InvariantAuditor(
            h, AuditParams(enabled=True, fail_fast=True)
        )
        with pytest.raises(AuditError) as exc:
            auditor.sweep(access_index=42)
        err = exc.value
        assert err.violations
        assert all(v.access_index == 42 for v in err.violations)
        assert "pv" in str(err)

    def test_collect_mode_truncates_at_max_violations(self):
        h = relocated_state()
        tracker = h.scheme.tracker
        for prop in tracker.properties:  # corrupt many bits at once
            for bank in range(h.llc.geometry.banks):
                tracker.pvs[bank][prop].bits ^= 0b1111
        auditor = InvariantAuditor(
            h, AuditParams(enabled=True, max_violations=2)
        )
        report = auditor.finalize()
        assert not report.ok
        assert len(report.violations) == 2
        assert report.truncated
        assert "truncated" in report.summary()

    def test_maybe_check_cadence(self):
        h = build("inclusive")
        auditor = InvariantAuditor(h, AuditParams(enabled=True, interval=3))
        for i in range(7):
            auditor.maybe_check(i)
        assert auditor.report.sweeps == 2  # after the 3rd and 6th calls


# ---------------------------------------------------------------------------
# Violation formatting
# ---------------------------------------------------------------------------


class TestReporting:
    def test_violation_str_names_everything(self):
        v = AuditViolation(
            invariant="directory", detail="stale tuple",
            expected="x", actual="y",
            addr=0x40, bank=1, set_idx=2, way=3, access_index=7,
        )
        s = str(v)
        for fragment in ("directory", "stale tuple", "bank=1", "set=2",
                         "way=3", "addr=0x40", "expected x", "actual y",
                         "@access 7"):
            assert fragment in s

    def test_clean_summary(self):
        report = AuditReport(params=AuditParams(enabled=True), sweeps=4)
        assert report.ok
        assert "OK" in report.summary()
        assert "4 sweep" in report.summary()


# ---------------------------------------------------------------------------
# Cache-key participation (the anti-aliasing guarantee)
# ---------------------------------------------------------------------------


class TestCacheKeys:
    def test_audit_changes_the_recipe_key(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV_VAR, raising=False)
        wl = mixing_workload()
        plain = make_recipe(wl, "ziv:notinprc", config=tiny_config())
        audited = make_recipe(
            wl, "ziv:notinprc", config=tiny_config(), audit="end"
        )
        assert plain.key() != audited.key()
        assert '"enabled": true' in audited.describe()

    def test_env_resolved_at_construction_time(self, monkeypatch):
        wl = mixing_workload()
        monkeypatch.setenv(AUDIT_ENV_VAR, "end,fail")
        via_env = make_recipe(wl, "ziv:notinprc", config=tiny_config())
        monkeypatch.delenv(AUDIT_ENV_VAR)
        explicit = make_recipe(
            wl, "ziv:notinprc", config=tiny_config(), audit="end,fail"
        )
        assert via_env.key() == explicit.key()

    def test_worker_never_consults_the_environment(self, monkeypatch):
        """A recipe built without auditing must execute unaudited even if
        REPRO_AUDIT is set in the worker's environment -- otherwise an
        audited result would be stored under an unaudited cache key."""
        monkeypatch.delenv(AUDIT_ENV_VAR, raising=False)
        recipe = make_recipe(
            mixing_workload(length=40), "inclusive", config=tiny_config()
        )
        monkeypatch.setenv(AUDIT_ENV_VAR, "every,fail")
        result = recipe.execute()
        assert result.audit is None

    def test_sweep_points_resolve_env_at_construction(self, monkeypatch):
        from repro.sim.sweep import SweepPoint

        wl = mixing_workload()
        point = SweepPoint("p", tiny_config(), "inclusive")
        monkeypatch.delenv(AUDIT_ENV_VAR, raising=False)
        plain = point.recipe(wl)
        monkeypatch.setenv(AUDIT_ENV_VAR, "end")
        audited = point.recipe(wl)
        assert audited.config.audit.enabled
        assert plain.key() != audited.key()

    def test_config_io_roundtrip(self):
        from repro.config_io import config_from_dict, config_to_dict

        cfg = tiny_config().replace(
            audit=AuditParams(enabled=True, interval=5, fail_fast=True)
        )
        clone = config_from_dict(config_to_dict(cfg))
        assert clone.audit == cfg.audit


# ---------------------------------------------------------------------------
# nextRS decode vs the naive reference at the PropertyVector level
# ---------------------------------------------------------------------------


class TestNextRSRoundTrip:
    @given(
        width=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    def test_peek_matches_naive_over_random_states(self, width, data):
        """decoded nextRS == linear-scan reference for any PV contents and
        any round-robin pointer position (the satellite round-trip)."""
        pv = PropertyVector(width)
        pv.bits = data.draw(
            st.integers(min_value=0, max_value=(1 << width) - 1)
        )
        if data.draw(st.booleans()):
            pv.force_pointer(data.draw(
                st.integers(min_value=0, max_value=width - 1)
            ))
        assert pv.peek_relocation_set() == pv.naive_peek()

    @given(
        width=st.integers(min_value=1, max_value=32),
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=31),
                      st.booleans()),
            max_size=40,
        ),
    )
    def test_agreement_survives_consumption(self, width, ops):
        """Interleaving bit updates with next_relocation_set() keeps the
        decoded pointer in lock-step with the naive reference."""
        pv = PropertyVector(width)
        for set_idx, value in ops:
            pv.set_bit(set_idx % width, value)
            assert pv.peek_relocation_set() == pv.naive_peek()
            consumed = pv.next_relocation_set()
            assert consumed == (-1 if pv.empty else consumed)
            assert pv.peek_relocation_set() == pv.naive_peek()
