"""Telemetry layer: sampling exactness, event tracing, spec parsing,
cache-key participation, and the disabled-path guarantee."""

from __future__ import annotations

import time

import pytest

from tests.conftest import tiny_config
from repro.params import (
    TELEMETRY_CATEGORIES,
    ConfigError,
    TelemetryParams,
)
from repro.sim.engine import Simulation, run_workload
from repro.sim.parallel import make_recipe, run_many
from repro.sim.telemetry import (
    CORESTATS_COUNTERS,
    SIMSTATS_COUNTERS,
    ProgressPrinter,
    ProgressTracker,
    TelemetryCollector,
    TimeSeries,
    events_from_jsonl,
    events_to_jsonl,
    parse_telemetry_spec,
    resolve_telemetry,
    telemetry_params_from_env,
)
from repro.workloads import homogeneous_mix


def _run(telemetry=None, scheme="ziv:notinprc", n_accesses=600, cores=2,
         scheduling="timing", config=None):
    cfg = config or tiny_config()
    wl = homogeneous_mix("mcf.1", cores=cores, n_accesses=n_accesses)
    return run_workload(cfg, wl, scheme, llc_policy="lru",
                        scheduling=scheduling, telemetry=telemetry)


# ---------------------------------------------------------------------------
# Spec parsing and resolution
# ---------------------------------------------------------------------------


class TestSpec:
    def test_default_disabled(self):
        assert TelemetryParams().enabled is False

    def test_none_is_disabled(self):
        assert parse_telemetry_spec(None).enabled is False

    def test_empty_and_on_enable_with_defaults(self):
        for spec in ("", "on"):
            p = parse_telemetry_spec(spec)
            assert p.enabled and p.interval == 1000

    def test_full_spec(self):
        p = parse_telemetry_spec(
            "250,ring=128,events=relocation+char,maxevents=99,severity=debug"
        )
        assert p.enabled
        assert p.interval == 250
        assert p.ring_capacity == 128
        assert p.event_categories() == ("relocation", "char")
        assert p.max_events == 99
        assert p.min_severity == "debug"

    def test_events_all(self):
        assert (parse_telemetry_spec("events").event_categories()
                == TELEMETRY_CATEGORIES)
        assert (parse_telemetry_spec("events=all").event_categories()
                == TELEMETRY_CATEGORIES)

    def test_off(self):
        assert parse_telemetry_spec("off").enabled is False

    def test_bad_token_raises(self):
        with pytest.raises(ConfigError):
            parse_telemetry_spec("bogus=7")

    def test_bad_category_raises(self):
        with pytest.raises(ConfigError):
            TelemetryParams(enabled=True, events="nosuchcat")

    def test_bad_severity_raises(self):
        with pytest.raises(ConfigError):
            TelemetryParams(enabled=True, min_severity="loud")

    def test_nonpositive_interval_raises(self):
        with pytest.raises(ConfigError):
            TelemetryParams(enabled=True, interval=0)

    def test_resolve_precedence(self, monkeypatch):
        explicit = TelemetryParams(enabled=True, interval=7)
        config_p = TelemetryParams(enabled=True, interval=11)
        monkeypatch.setenv("REPRO_TELEMETRY", "13")
        assert resolve_telemetry(explicit, config_p).interval == 7
        assert resolve_telemetry("5", config_p).interval == 5
        assert resolve_telemetry(None, config_p).interval == 13
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert resolve_telemetry(None, config_p).interval == 11
        assert resolve_telemetry(None, None).enabled is False

    def test_env_blank_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "  ")
        assert telemetry_params_from_env() is None

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_telemetry(42)


# ---------------------------------------------------------------------------
# Interval sampling
# ---------------------------------------------------------------------------


class TestSampling:
    def test_delta_sums_match_final_counters(self):
        """Summing every delta column reproduces the end-of-run counter
        exactly -- the naive-recount cross-check."""
        res = _run(telemetry="50")
        t = res.telemetry
        assert t is not None
        s = res.stats
        for name in SIMSTATS_COUNTERS:
            assert t.series.total(name) == getattr(s, name), name
        for name in CORESTATS_COUNTERS:
            expected = sum(getattr(c, name) for c in s.cores)
            assert t.series.total(name) == expected, name

    def test_relocation_deltas_acceptance(self):
        """The ISSUE's acceptance check at 1/1000 sampling."""
        res = _run(telemetry="1000", n_accesses=1500)
        t = res.telemetry
        assert t.series.total("relocations") == res.stats.relocations
        assert res.stats.relocations > 0

    def test_sample_positions(self):
        res = _run(telemetry="50", n_accesses=600, cores=2)
        idx = res.telemetry.series.column("access_index")
        # Regular boundaries plus the tail sample at the total.
        assert idx[0] == 50
        assert idx[-1] == res.stats.total_accesses
        assert all(b > a for a, b in zip(idx, idx[1:]))

    def test_lockstep_mode_samples_too(self):
        res = _run(telemetry="50", scheduling="lockstep")
        t = res.telemetry
        assert len(t.series) > 1
        assert t.series.total("relocations") == res.stats.relocations

    def test_gauge_columns_present_for_ziv(self):
        res = _run(telemetry="100")
        cols = res.telemetry.series.columns
        assert "dir_occupancy" in cols
        assert "reloc_fifo_depth" in cols
        assert any(c.startswith("empty_pv:") for c in cols)

    def test_char_gauge_present_for_likelydead(self):
        res = _run(telemetry="100", scheme="ziv:likelydead")
        assert "char_d_min" in res.telemetry.series.columns

    def test_non_ziv_scheme_has_no_scheme_gauges(self):
        res = _run(telemetry="100", scheme="inclusive")
        cols = res.telemetry.series.columns
        assert "dir_occupancy" in cols
        assert "reloc_fifo_depth" not in cols
        assert not any(c.startswith("empty_pv:") for c in cols)

    def test_ring_overflow_drops_oldest(self):
        res = _run(telemetry="10,ring=4", n_accesses=600)
        series = res.telemetry.series
        assert len(series) == 4
        assert series.dropped > 0
        # With drops, column totals are lower bounds.
        assert series.total("accesses") < res.stats.total_accesses

    def test_series_round_trip(self):
        res = _run(telemetry="50")
        series = res.telemetry.series
        back = TimeSeries.from_dict(series.to_dict())
        assert back.columns == series.columns
        assert back.samples == series.samples
        assert back.dropped == series.dropped

    def test_collector_detaches_after_run(self):
        cfg = tiny_config()
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=300)
        from repro.hierarchy.cmp import CacheHierarchy
        from repro.schemes import make_scheme

        h = CacheHierarchy(cfg, make_scheme("ziv:likelydead"))
        sim = Simulation(h, wl, telemetry="50")
        sim.run()
        assert h.telemetry is None
        assert h.char.telemetry is None


# ---------------------------------------------------------------------------
# Event tracing
# ---------------------------------------------------------------------------


class TestEvents:
    def test_relocation_event_schema(self):
        res = _run(telemetry="100,events=relocation")
        events = res.telemetry.events
        relocs = [e for e in events if e.category == "relocation"]
        assert len(relocs) == res.stats.relocations
        for e in relocs:
            assert e.kind in ("relocation", "re_relocation",
                              "cross_bank_fallback")
            assert len(e.data["src"]) == 3
            assert len(e.data["dst"]) == 3
            assert e.access_index >= 0

    def test_category_filter(self):
        res = _run(telemetry="100,events=directory")
        kinds = {e.kind for e in res.telemetry.events}
        assert kinds <= {"directory_eviction"}

    def test_no_events_when_not_requested(self):
        res = _run(telemetry="100")
        assert res.telemetry.events == []

    def test_severity_filter_drops_debug(self):
        # tau_reset is debug severity; default min is info.  A tiny reset
        # interval forces periodic resets within the short run.
        from repro.params import CHARParams

        cfg = tiny_config().replace(char=CHARParams(reset_interval=200))
        p_info = TelemetryParams(enabled=True, interval=100, events="char")
        p_debug = TelemetryParams(enabled=True, interval=100, events="char",
                                  min_severity="debug")
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=1500)
        res_info = run_workload(cfg, wl, "ziv:likelydead",
                                telemetry=p_info)
        res_debug = run_workload(cfg, wl, "ziv:likelydead",
                                 telemetry=p_debug)
        info_kinds = {e.kind for e in res_info.telemetry.events}
        debug_kinds = {e.kind for e in res_debug.telemetry.events}
        assert "tau_reset" not in info_kinds
        assert "tau_reset" in debug_kinds

    def test_max_events_cap(self):
        res = _run(telemetry="100,events=all,maxevents=5")
        t = res.telemetry
        assert len(t.events) == 5
        assert t.dropped_events > 0

    def test_jsonl_round_trip(self):
        res = _run(telemetry="100,events=all")
        events = res.telemetry.events
        assert events
        text = events_to_jsonl(events)
        assert text.count("\n") == len(events)
        assert events_from_jsonl(text) == events

    def test_events_stamped_within_run(self):
        res = _run(telemetry="100,events=relocation")
        total = res.stats.total_accesses
        for e in res.telemetry.events:
            assert 0 <= e.access_index < total


# ---------------------------------------------------------------------------
# Cache-key participation and recipe integration
# ---------------------------------------------------------------------------


class TestCacheKey:
    def test_telemetry_changes_recipe_key(self):
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=300)
        cfg = tiny_config()
        base = make_recipe(wl, "inclusive", config=cfg)
        sampled = make_recipe(wl, "inclusive", config=cfg, telemetry="100")
        other = make_recipe(wl, "inclusive", config=cfg, telemetry="200")
        assert base.key() != sampled.key()
        assert sampled.key() != other.key()
        again = make_recipe(wl, "inclusive", config=cfg, telemetry="100")
        assert sampled.key() == again.key()

    def test_env_spec_resolved_at_construction(self, monkeypatch):
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=300)
        cfg = tiny_config()
        monkeypatch.setenv("REPRO_TELEMETRY", "100")
        recipe = make_recipe(wl, "inclusive", config=cfg)
        monkeypatch.delenv("REPRO_TELEMETRY")
        # The env var was baked in at construction: the key matches an
        # explicit spec and the run carries telemetry even though the
        # variable is gone by execution time.
        explicit = make_recipe(wl, "inclusive", config=cfg, telemetry="100")
        assert recipe.key() == explicit.key()
        result = recipe.execute()
        assert result.telemetry is not None
        assert result.telemetry.params.interval == 100

    def test_run_many_serial_carries_telemetry(self):
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=300)
        cfg = tiny_config()
        recipe = make_recipe(wl, "ziv:notinprc", config=cfg,
                             telemetry="50")
        [result] = run_many([recipe])
        assert result.telemetry is not None
        assert (result.telemetry.series.total("relocations")
                == result.stats.relocations)


# ---------------------------------------------------------------------------
# Progress heartbeats
# ---------------------------------------------------------------------------


class TestProgress:
    def test_run_many_heartbeats(self):
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=300)
        cfg = tiny_config()
        recipes = [
            make_recipe(wl, scheme, config=cfg)
            for scheme in ("inclusive", "noninclusive")
        ]
        beats = []
        run_many(recipes, heartbeat=beats.append)
        assert len(beats) == 2
        assert beats[-1].completed == beats[-1].total == 2
        assert beats[-1].simulated >= 1
        # Same recipes again: everything resolves from the memo.
        beats2 = []
        run_many(recipes, heartbeat=beats2.append)
        assert beats2[-1].from_memo == 2
        assert beats2[-1].simulated == 0

    def test_tracker_eta_and_rate(self):
        tracker = ProgressTracker(total=3, jobs=1)

        class _Result:
            class stats:
                total_accesses = 1000

        p = tracker.advance("a", "run", _Result())
        assert p.completed == 1 and p.total == 3
        assert p.accesses == 1000
        assert p.eta_s is not None and p.eta_s >= 0
        p = tracker.advance("b", "memo", None)
        assert p.from_memo == 1

    def test_printer_writes_and_terminates_line(self):
        import io

        buf = io.StringIO()
        printer = ProgressPrinter(stream=buf)
        tracker = ProgressTracker(total=1)
        printer(tracker.advance("x", "memo", None))
        printer.done()
        text = buf.getvalue()
        assert "[1/1]" in text
        assert text.endswith("\n")

    def test_heartbeats_carry_recipe_key_and_engine(self):
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=300)
        cfg = tiny_config()
        recipes = [
            make_recipe(wl, scheme, config=cfg)
            for scheme in ("inclusive", "qbs")
        ]
        beats = []
        run_many(recipes, heartbeat=beats.append)
        assert [b.key for b in beats] == [r.key() for r in recipes]
        assert all(b.engine == "object" for b in beats)
        assert all(b.short_key == b.key[:8] for b in beats)

    def test_interleaved_printer_lines_stay_attributable(self):
        """Two fleets sharing one stream: every rendered line must name
        the recipe (short key + engine + label) that just resolved, so
        captured logs with interleaved heartbeats stay readable."""
        import io

        buf = io.StringIO()
        printer = ProgressPrinter(stream=buf)
        tracker_a = ProgressTracker(total=1)
        tracker_b = ProgressTracker(total=1)
        printer(tracker_a.advance("fleet-a/wl0", "memo", None,
                                  key="aaaa1111" * 8, engine="object"))
        printer(tracker_b.advance("fleet-b/wl1", "run", None,
                                  key="bbbb2222" * 8, engine="fast"))
        printer.done()
        lines = buf.getvalue().split("\r")
        assert "aaaa1111" in lines[1] and "/object" in lines[1]
        assert "fleet-a/wl0" in lines[1]
        assert "bbbb2222" in lines[2] and "/fast" in lines[2]
        assert "fleet-b/wl1" in lines[2]
        # The full 64-hex key never hits the display -- short form only.
        assert "aaaa1111" * 8 not in buf.getvalue()

    def test_printer_without_key_shows_placeholder(self):
        import io

        buf = io.StringIO()
        printer = ProgressPrinter(stream=buf)
        printer(ProgressTracker(total=1).advance("x", "memo", None))
        assert "--------" in buf.getvalue()


# ---------------------------------------------------------------------------
# The disabled path
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_no_collector_artifacts_when_disabled(self):
        cfg = tiny_config()
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=300)
        from repro.hierarchy.cmp import CacheHierarchy
        from repro.schemes import make_scheme

        h = CacheHierarchy(cfg, make_scheme("ziv:likelydead"))
        sim = Simulation(h, wl)
        res = sim.run()
        assert res.telemetry is None
        assert h.telemetry is None
        assert h.char.telemetry is None

    def test_disabled_run_matches_enabled_run_statistics(self):
        """Telemetry observes; it must never perturb simulation outcomes."""
        res_off = _run()
        res_on = _run(telemetry="50,events=all")
        assert res_off.stats.summary() == res_on.stats.summary()
        assert res_off.cycles == res_on.cycles

    def test_disabled_overhead_micro_benchmark(self):
        """Structural guard: with telemetry disabled the engine must not
        construct a collector, and repeated runs must not slow down
        beyond noise.  (The authoritative throughput check is
        benchmarks/bench_parallel_runner.py vs BENCH_pr1.json.)"""
        cfg = tiny_config()
        wl = homogeneous_mix("mcf.1", cores=2, n_accesses=1500)

        def one_run():
            t0 = time.perf_counter()
            run_workload(cfg, wl, "inclusive", llc_policy="lru")
            return time.perf_counter() - t0

        one_run()  # warm profiles/import caches
        times = sorted(one_run() for _ in range(3))
        # Sanity: the disabled path stays within a generous envelope of
        # itself across repeats (catches accidental O(n) work leaking into
        # the hot loop far below any 2% regression threshold).
        assert times[-1] < times[0] * 5
