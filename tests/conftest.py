"""Shared test fixtures and helpers."""

from __future__ import annotations

import random

import pytest

from repro.hierarchy.cmp import CacheHierarchy
from repro.params import (
    CacheGeometry,
    DirectoryGeometry,
    LLCGeometry,
    SystemConfig,
)
from repro.schemes import make_scheme


def tiny_config(
    cores: int = 2,
    l1=(1, 2),
    l2=(2, 4),
    llc=(2, 4, 4),
    dir_geom=(2, 8),
    directory_mode: str = "mesi",
) -> SystemConfig:
    """A miniature CMP for fast, exhaustive integration tests."""
    return SystemConfig(
        cores=cores,
        l1=CacheGeometry(sets=l1[0], ways=l1[1]),
        l2=CacheGeometry(sets=l2[0], ways=l2[1]),
        llc=LLCGeometry(banks=llc[0], sets_per_bank=llc[1], ways=llc[2]),
        directory=DirectoryGeometry(sets=dir_geom[0], ways=dir_geom[1]),
        directory_mode=directory_mode,
    )


def build(scheme_name: str, config=None, policy: str = "lru", **scheme_kw):
    config = config or tiny_config()
    scheme = make_scheme(scheme_name, **scheme_kw)
    return CacheHierarchy(config, scheme, llc_policy=policy)


def drive(h: CacheHierarchy, accesses, seed: int = 0):
    """Run a list of (core, addr, is_write) or generate ``accesses`` random
    ones; returns the hierarchy for chaining."""
    if isinstance(accesses, int):
        rng = random.Random(seed)
        accesses = [
            (
                rng.randrange(h.config.cores),
                rng.randrange(64),
                rng.random() < 0.3,
            )
            for _ in range(accesses)
        ]
    for i, (core, addr, is_write) in enumerate(accesses):
        h.access(core, addr, is_write, pc=addr & 0xF, cycle=i, global_pos=i)
    return h


@pytest.fixture
def tiny():
    return tiny_config()


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Keep the test run hermetic: the persistent result cache lives in a
    throwaway per-session directory, never the repo's ``.repro_cache``.
    (The in-process memo still persists across tests, as the experiment
    tests rely on sharing their baseline runs.)"""
    import os

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro_cache")
    )
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
