"""Per-core private hierarchy: fills, eviction notices, invalidations."""

from repro.cache.set_assoc import AccessContext
from repro.hierarchy.private import PrivateHierarchy
from repro.params import CacheGeometry


def make(l1_sets=1, l1_ways=2, l2_sets=1, l2_ways=4):
    return PrivateHierarchy(
        0,
        CacheGeometry(sets=l1_sets, ways=l1_ways),
        CacheGeometry(sets=l2_sets, ways=l2_ways),
    )


def ctx(write=False):
    return AccessContext(is_write=write)


class TestFill:
    def test_fill_lands_in_both_levels(self):
        p = make()
        notices = p.fill(0x10, ctx(), fill_hit=True)
        assert notices == []
        assert p.in_l1(0x10) and p.in_l2(0x10)
        assert p.has_block(0x10)

    def test_write_fill_is_dirty_everywhere(self):
        p = make()
        p.fill(0x10, ctx(write=True), fill_hit=False)
        assert p.l1.blocks[0][p.l1.index[0][0x10]].dirty
        assert p.l2.blocks[0][p.l2.index[0][0x10]].dirty

    def test_fill_hit_attribute_recorded(self):
        p = make()
        p.fill(0x10, ctx(), fill_hit=False)
        blk = p.l2.blocks[0][p.l2.index[0][0x10]]
        assert blk.fill_hit is False
        assert blk.demand_reuses == 0

    def test_l2_hit_counts_demand_reuse(self):
        p = make()
        p.fill(0x10, ctx(), fill_hit=True)
        # evict from L1 only by filling L1 past capacity
        p.fill(0x20, ctx(), fill_hit=True)
        p.fill(0x30, ctx(), fill_hit=True)  # L1 2-way: 0x10 evicted from L1
        assert not p.in_l1(0x10) and p.in_l2(0x10)
        p.hit_l2(0x10, ctx())
        blk = p.l2.blocks[0][p.l2.index[0][0x10]]
        assert blk.demand_reuses == 1
        assert p.in_l1(0x10)


class TestNotices:
    def test_no_notice_while_block_in_other_level(self):
        p = make(l1_ways=2, l2_ways=2)
        p.fill(0x10, ctx(), fill_hit=True)
        p.fill(0x20, ctx(), fill_hit=True)
        # L2 is full (2-way); next fill evicts an L2 block that's still in
        # L1 -> no notice for it yet
        notices = p.fill(0x30, ctx(), fill_hit=True)
        # whatever left L2 is still in L1 unless the L1 also replaced it
        for n in notices:
            assert not p.has_block(n.addr)

    def test_notice_when_block_leaves_core(self):
        p = make(l1_ways=1, l2_ways=1)
        p.fill(0x10, ctx(), fill_hit=True)
        notices = p.fill(0x20, ctx(), fill_hit=True)
        addrs = [n.addr for n in notices]
        assert addrs == [0x10]
        assert not p.has_block(0x10)

    def test_dirty_notice_carries_dirty(self):
        p = make(l1_ways=1, l2_ways=1)
        p.fill(0x10, ctx(write=True), fill_hit=True)
        notices = p.fill(0x20, ctx(), fill_hit=True)
        assert notices[0].dirty

    def test_notice_carries_char_attributes(self):
        p = make(l1_ways=1, l2_ways=1)
        p.fill(0x10, ctx(), fill_hit=True)
        notices = p.fill(0x20, ctx(), fill_hit=True)
        assert notices[0].fill_hit is True
        assert notices[0].demand_reuses == 0

    def test_exactly_one_notice_per_departure(self):
        """Filling past both capacities produces exactly one notice per
        block leaving the core, never duplicates."""
        p = make(l1_ways=2, l2_ways=4)
        seen = []
        for a in range(0, 0x100, 0x10):
            seen.extend(n.addr for n in p.fill(a, ctx(), fill_hit=True))
        assert len(seen) == len(set(seen))
        for a in seen:
            assert not p.has_block(a)


class TestDirtyMigration:
    def test_l1_dirty_evict_merges_into_l2(self):
        p = make(l1_ways=1, l2_ways=4)
        p.fill(0x10, ctx(write=True), fill_hit=True)
        p.fill(0x20, ctx(), fill_hit=True)  # evicts 0x10 from L1
        assert not p.in_l1(0x10)
        blk = p.l2.blocks[0][p.l2.index[0][0x10]]
        assert blk.dirty

    def test_l2_dirty_evict_migrates_up_to_l1(self):
        p = make(l1_ways=4, l2_ways=1)
        p.fill(0x10, ctx(write=True), fill_hit=True)
        p.l1.blocks[0][p.l1.index[0][0x10]].dirty = False  # only L2 dirty
        notices = p.fill(0x20, ctx(), fill_hit=True)
        assert notices == []  # 0x10 still in L1
        assert p.l1.blocks[0][p.l1.index[0][0x10]].dirty


class TestExternalOps:
    def test_invalidate_removes_all_copies(self):
        p = make()
        p.fill(0x10, ctx(write=True), fill_hit=True)
        copies, dirty = p.invalidate(0x10)
        assert copies == 2
        assert dirty
        assert not p.has_block(0x10)

    def test_invalidate_absent_block(self):
        p = make()
        assert p.invalidate(0x99) == (0, False)

    def test_downgrade_clears_dirty_keeps_data(self):
        p = make()
        p.fill(0x10, ctx(write=True), fill_hit=True)
        assert p.downgrade(0x10) is True
        assert p.has_block(0x10)
        assert not p.l1.blocks[0][p.l1.index[0][0x10]].dirty
        assert p.downgrade(0x10) is False

    def test_resident_addrs_unions_levels(self):
        p = make(l1_ways=1, l2_ways=4)
        p.fill(0x10, ctx(), fill_hit=True)
        p.fill(0x20, ctx(), fill_hit=True)  # 0x10 leaves L1, stays L2
        assert p.resident_addrs() == {0x10, 0x20}
