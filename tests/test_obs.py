"""Fleet observability: run ledger, phase profiler, metrics export and
the perf-regression gate (`repro.obs`)."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from tests.conftest import tiny_config

from repro.obs.ledger import (
    LEDGER_VERSION,
    LedgerRecord,
    append_record,
    config_digest,
    ledger_path,
    read_ledger,
    record_from_result,
)
from repro.obs.profile import (
    PROFILE_PHASES,
    PhaseProfiler,
    ProfileResult,
    counter_attribution,
    parse_profile_spec,
    resolve_profile,
)
from repro.obs.registry import (
    MetricsRegistry,
    parse_prometheus,
    registry_from_ledger,
)
from repro.obs.regress import (
    Comparison,
    compare_bench,
    compare_ledger,
    compare_value,
    metric_direction,
    run_regress,
)
from repro.params import ConfigError, ProfileParams
from repro.sim.engine import run_workload
from repro.sim.parallel import RunRecipe, clear_memo, run_many
from repro.sim.trace import CoreTrace, TraceRecord, Workload


def make_workload(k: int = 0, cores: int = 2, length: int = 400) -> Workload:
    traces = [
        CoreTrace(
            [TraceRecord(1, (c + 1) * 256 + (i * (k + 2)) % 40,
                         i % 5 == 0, i % 4) for i in range(length)]
        )
        for c in range(cores)
    ]
    return Workload(traces, f"obs-wl{k}")


def make_record(**overrides) -> LedgerRecord:
    base = dict(
        version=LEDGER_VERSION,
        ts=1000.0,
        recipe_key="ab" * 32,
        workload="wl0",
        workload_fingerprint="fp",
        scheme="inclusive",
        policy="lru",
        scheduling="timing",
        engine="object",
        config_digest="cd" * 32,
        source="run",
        cache_hit=False,
        trace_path="",
        resumed_from="",
        wall_s=2.0,
        accesses=100000,
        accesses_per_s=50000.0,
        cycles=123456,
        audit_violations=0,
        telemetry_samples=0,
        telemetry_events=0,
        profile_phases={},
        host_cpus=8,
    )
    base.update(overrides)
    return LedgerRecord(**base)


@pytest.fixture
def obs_cache(tmp_path, monkeypatch):
    """Per-test ledger/cache isolation on top of the session-wide one."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_memo()
    yield tmp_path
    clear_memo()


# ---------------------------------------------------------------------------
# Ledger schema and round-trips
# ---------------------------------------------------------------------------


class TestLedgerRecord:
    def test_json_line_round_trip_is_bit_identical(self):
        rec = make_record(profile_phases={"access_loop": 0.25})
        line = rec.to_json_line()
        assert LedgerRecord.from_json_line(line) == rec
        assert LedgerRecord.from_json_line(line).to_json_line() == line
        assert "\n" not in line

    def test_from_dict_rejects_unknown_keys(self):
        data = make_record().to_dict()
        data["surprise"] = 1
        with pytest.raises(ConfigError, match="unknown"):
            LedgerRecord.from_dict(data)

    def test_from_dict_rejects_missing_keys(self):
        data = make_record().to_dict()
        del data["engine"]
        with pytest.raises(ConfigError, match="needs"):
            LedgerRecord.from_dict(data)

    def test_short_key(self):
        assert make_record(recipe_key="0123456789abcdef").short_key == \
            "01234567"
        assert make_record(recipe_key="").short_key == "--------"

    def test_config_digest_is_stable_and_config_sensitive(self):
        cfg = tiny_config()
        assert config_digest(cfg) == config_digest(tiny_config())
        assert config_digest(cfg) != config_digest(
            cfg.replace(engine="fast")
        )


# ---------------------------------------------------------------------------
# Ledger appends from the runner layers
# ---------------------------------------------------------------------------


class TestLedgerAppends:
    def test_run_workload_appends_a_direct_record(self, obs_cache):
        cfg = tiny_config()
        wl = make_workload()
        result = run_workload(cfg, wl, "inclusive")
        records = read_ledger()
        assert len(records) == 1
        rec = records[0]
        assert rec.source == "direct"
        assert not rec.cache_hit
        assert rec.workload == wl.name
        assert rec.scheme == result.scheme
        assert rec.engine == "object"
        assert rec.accesses == result.stats.total_accesses
        assert rec.cycles == result.cycles
        assert rec.wall_s > 0
        assert rec.accesses_per_s > 0
        assert rec.recipe_key  # keyed: no oracle involved
        assert rec.config_digest == config_digest(cfg)
        assert rec.version == LEDGER_VERSION
        assert rec.host_cpus == (os.cpu_count() or 1)

    def test_run_many_appends_run_then_memo_records(self, obs_cache):
        cfg = tiny_config()
        recipes = [
            RunRecipe(make_workload(0), "inclusive", cfg),
            RunRecipe(make_workload(1), "inclusive", cfg),
        ]
        run_many(recipes)
        first = read_ledger()
        assert [r.source for r in first] == ["run", "run"]
        assert all(r.wall_s > 0 and r.accesses_per_s > 0 for r in first)
        assert {r.recipe_key for r in first} == {r.key() for r in recipes}
        assert all(
            r.workload_fingerprint == recipe.workload.fingerprint()
            for r, recipe in zip(first, recipes)
        )
        run_many(recipes)
        again = read_ledger()
        assert [r.source for r in again[2:]] == ["memo", "memo"]
        assert all(r.cache_hit for r in again[2:])
        assert all(r.wall_s == 0 and r.accesses_per_s == 0
                   for r in again[2:])

    def test_run_many_parallel_appends_in_parent_only(self, obs_cache):
        cfg = tiny_config()
        recipes = [
            RunRecipe(make_workload(k), "inclusive", cfg) for k in range(3)
        ]
        run_many(recipes, jobs=2)
        records = read_ledger()
        assert len(records) == 3
        assert all(r.source == "run" for r in records)
        assert {r.recipe_key for r in records} == {r.key() for r in recipes}

    def test_repro_ledger_off_suppresses_appends(self, obs_cache,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "off")
        run_workload(tiny_config(), make_workload(), "inclusive")
        assert read_ledger() == []
        assert not ledger_path().exists()

    def test_malformed_lines_are_skipped_not_fatal(self, obs_cache):
        append_record(make_record())
        with open(ledger_path(), "a") as fh:
            fh.write("not json at all\n")
        append_record(make_record(ts=2000.0))
        records = read_ledger()
        assert [r.ts for r in records] == [1000.0, 2000.0]
        with pytest.raises(ConfigError):
            list(__import__("repro.obs.ledger", fromlist=["iter_ledger"])
                 .iter_ledger(strict=True))


def _append_batch(args):
    path, n, ts_base = args
    from repro.obs.ledger import append_record
    from tests.test_obs import make_record

    for i in range(n):
        append_record(make_record(ts=ts_base + i), path=path)
    return n


class TestLedgerAtomicity:
    def test_concurrent_appends_never_tear_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        n_procs, per_proc = 4, 50
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with ctx.Pool(n_procs) as pool:
            pool.map(
                _append_batch,
                [(str(path), per_proc, 1000.0 * p)
                 for p in range(n_procs)],
            )
        # Every line parses (strict): no interleaved partial writes.
        from repro.obs.ledger import iter_ledger

        records = list(iter_ledger(path, strict=True))
        assert len(records) == n_procs * per_proc


# ---------------------------------------------------------------------------
# Phase profiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_spec_parsing(self):
        assert parse_profile_spec("on").enabled
        assert parse_profile_spec("").enabled
        assert not parse_profile_spec("off").enabled
        with pytest.raises(ConfigError):
            parse_profile_spec("sideways")

    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "on")
        assert not resolve_profile("off").enabled       # explicit wins
        assert resolve_profile(None).enabled            # env next
        monkeypatch.delenv("REPRO_PROFILE")
        assert resolve_profile(
            None, ProfileParams(enabled=True)
        ).enabled                                       # config last
        assert not resolve_profile(None).enabled        # default off

    @pytest.mark.parametrize("engine", ["object", "fast"])
    def test_profiled_run_reports_phases(self, engine, obs_cache):
        cfg = tiny_config().replace(engine=engine)
        result = run_workload(cfg, make_workload(), "inclusive",
                              profile="on")
        p = result.profile
        assert p is not None
        assert p.engine == engine
        assert set(p.phase_s) <= set(PROFILE_PHASES)
        assert "access_loop" in p.phase_s
        assert p.phase_s["access_loop"] > 0
        assert p.total_s >= p.phase_s["access_loop"]
        assert abs(sum(p.attribution.values()) - 1.0) < 1e-9
        # The ledger record carries the phase times.
        rec = read_ledger()[-1]
        assert rec.profile_phases == p.phase_s

    def test_attribution_is_engine_invariant(self, obs_cache):
        wl = make_workload()
        obj = run_workload(tiny_config(), wl, "inclusive", profile="on")
        fast = run_workload(tiny_config().replace(engine="fast"), wl,
                            "inclusive", profile="on")
        assert obj.profile.attribution == fast.profile.attribution

    def test_disabled_run_has_no_profile_and_no_profiler(
        self, obs_cache, monkeypatch
    ):
        import repro.sim.engine as engine_mod

        instantiated = []

        class CountingProfiler(PhaseProfiler):
            def __init__(self):
                instantiated.append(1)
                super().__init__()

        monkeypatch.setattr(engine_mod, "PhaseProfiler", CountingProfiler)
        result = run_workload(tiny_config(), make_workload(), "inclusive")
        assert result.profile is None
        assert instantiated == []  # disabled path never builds a profiler
        result = run_workload(tiny_config(), make_workload(1), "inclusive",
                              profile="on")
        assert result.profile is not None
        assert instantiated == [1]

    def test_profile_joins_the_cache_key(self):
        cfg = tiny_config()
        wl = make_workload()
        plain = RunRecipe(wl, "inclusive", cfg)
        profiled = RunRecipe(
            wl, "inclusive", cfg.replace(profile=ProfileParams(enabled=True))
        )
        assert plain.key() != profiled.key()

    def test_profile_result_round_trip_and_validation(self):
        p = ProfileResult(engine="fast", phase_s={"decode": 0.5},
                          phase_calls={"decode": 1},
                          attribution={"l1_hit": 1.0}, total_s=0.6)
        assert ProfileResult.from_dict(p.to_dict()) == p
        with pytest.raises(ConfigError):
            ProfileResult.from_dict({"engine": "fast"})
        bad = p.to_dict()
        bad["mystery"] = 3
        with pytest.raises(ConfigError):
            ProfileResult.from_dict(bad)

    def test_unbalanced_exit_is_ignored(self):
        profiler = PhaseProfiler()
        profiler.exit("decode")  # never entered
        assert profiler.phase_s == {}
        profiler.enter("decode")
        profiler.exit("decode")
        assert profiler.phase_calls == {"decode": 1}

    def test_counter_attribution_empty_stats(self):
        class Stats:
            cores = ()
            llc_hits = 0
            llc_misses = 0

        assert counter_attribution(Stats()) == {}


# ---------------------------------------------------------------------------
# Metrics registry and exporters
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_prometheus_round_trip_is_exact(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", "runs")
        reg.gauge("repro_rate", "rate")
        reg.inc("repro_runs_total", {"engine": "fast"}, 3)
        reg.set("repro_rate", {"engine": "fast"}, 710763.4821937)
        reg.set("repro_rate", {"engine": "object"}, 128112.0)
        parsed = parse_prometheus(reg.to_prometheus())
        assert parsed[("repro_runs_total", (("engine", "fast"),))] == 3
        assert parsed[
            ("repro_rate", (("engine", "fast"),))
        ] == 710763.4821937
        assert parsed[("repro_rate", (("engine", "object"),))] == 128112.0

    def test_ledger_aggregation_round_trips_bit_identically(self):
        records = [
            make_record(engine="object", accesses_per_s=128112.25,
                        wall_s=1.5, profile_phases={"access_loop": 1.25}),
            make_record(engine="fast", accesses_per_s=710763.125,
                        wall_s=0.25, source="run"),
            make_record(engine="fast", source="memo", cache_hit=True,
                        wall_s=0.0, accesses_per_s=0.0),
        ]
        reg = registry_from_ledger(records)
        parsed = parse_prometheus(reg.to_prometheus())
        assert parsed[
            ("repro_runs_total",
             (("engine", "fast"), ("source", "memo")))
        ] == 1
        assert parsed[
            ("repro_best_accesses_per_s", (("engine", "fast"),))
        ] == 710763.125
        assert parsed[
            ("repro_profile_phase_seconds_total",
             (("engine", "object"), ("phase", "access_loop")))
        ] == 1.25
        assert parsed[("repro_ledger_records", ())] == 3
        # And the JSON exporter agrees with the registry values.
        data = json.loads(reg.to_json())
        best = data["repro_best_accesses_per_s"]["samples"]
        fast = [s for s in best if s["labels"] == {"engine": "fast"}]
        assert fast[0]["value"] == 710763.125


# ---------------------------------------------------------------------------
# Perf-regression gate
# ---------------------------------------------------------------------------


class TestRegress:
    def test_metric_direction(self):
        assert metric_direction("access_rate_per_s") == "higher"
        assert metric_direction("warm_speedup") == "higher"
        assert metric_direction("streaming_overhead") == "lower"
        assert metric_direction("cpus") is None

    def test_compare_value_directions(self):
        up = compare_value("m", 100.0, 150.0, "higher", 0.2)
        assert not up.regressed and up.change == pytest.approx(0.5)
        down = compare_value("m", 100.0, 75.0, "higher", 0.2)
        assert down.regressed
        worse_overhead = compare_value("m", 2.0, 2.6, "lower", 0.2)
        assert worse_overhead.regressed

    def test_injected_slowdown_regresses_ledger_leg(self):
        fast = make_record(accesses_per_s=100000.0, host_cpus=8)
        slow = make_record(accesses_per_s=75000.0, ts=2000.0, host_cpus=8)
        comps = compare_ledger([fast, slow], threshold=0.2, host_cpus=8)
        assert [c.regressed for c in comps] == [True]
        clean = compare_ledger(
            [fast, make_record(accesses_per_s=99000.0, ts=2000.0)],
            threshold=0.2, host_cpus=8,
        )
        assert [c.regressed for c in clean] == [False]

    def test_ledger_leg_filters_smoke_noise_and_foreign_hosts(self):
        comps = compare_ledger(
            [
                make_record(accesses_per_s=100000.0, accesses=500),
                make_record(accesses_per_s=1.0, ts=2000.0, host_cpus=99),
            ],
            host_cpus=8,
        )
        assert all(c.skipped for c in comps)

    def test_bench_cpus_mismatch_skips_with_reason(self):
        current = {"bench": "b", "cpus": 8, "rate_per_s": 50.0}
        history = [("old.json", {"bench": "b", "cpus": 1,
                                 "rate_per_s": 100.0})]
        comps = compare_bench(current, history)
        assert len(comps) == 1
        assert comps[0].skipped
        assert "cpus differ" in comps[0].reason

    def test_bench_same_host_regression_detected(self):
        current = {"bench": "b", "cpus": 8, "rate_per_s": 50.0}
        history = [("old.json", {"bench": "b", "cpus": 8,
                                 "rate_per_s": 100.0})]
        comps = compare_bench(current, history)
        assert [c.regressed for c in comps] == [True]

    def test_run_regress_collects_errors_for_bad_paths(self, tmp_path):
        report = run_regress(bench_paths=[tmp_path / "missing.json"])
        assert report.errors
        assert report.exit_code() == 2

    def test_check_mode_fails_vacuous_gate(self):
        report = run_regress()
        assert report.exit_code() == 0
        assert report.exit_code(check=True) == 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestObsCli:
    def run_cli(self, *argv):
        from repro.__main__ import main

        return main(list(argv))

    def test_ls_show_top_diff_export(self, obs_cache, capsys, tmp_path):
        cfg = tiny_config()
        run_many([
            RunRecipe(make_workload(0), "inclusive", cfg),
            RunRecipe(make_workload(1), "inclusive", cfg,
                      policy="srrip"),
        ])
        keys = [r.recipe_key for r in read_ledger()]
        assert self.run_cli("obs", "ls") == 0
        out = capsys.readouterr().out
        assert "2 record(s) total" in out
        assert keys[0][:8] in out
        assert self.run_cli("obs", "show", keys[0][:8]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["recipe_key"] == keys[0]
        assert self.run_cli("obs", "top") == 0
        assert "best throughput by engine" in capsys.readouterr().out
        assert self.run_cli("obs", "diff", keys[0][:8], keys[1][:8]) == 0
        assert "recipe_key" in capsys.readouterr().out
        out_file = tmp_path / "metrics.prom"
        assert self.run_cli("obs", "export", "--out", str(out_file)) == 0
        capsys.readouterr()
        parsed = parse_prometheus(out_file.read_text())
        assert parsed[("repro_ledger_records", ())] == 2

    def test_show_rejects_short_or_unknown_prefix(self, obs_cache,
                                                  capsys):
        assert self.run_cli("obs", "show", "ab") == 1
        assert self.run_cli("obs", "show", "feedbeef") == 1
        capsys.readouterr()

    def test_regress_cli_detects_injected_slowdown(self, obs_cache,
                                                   capsys):
        path = obs_cache / "ledger.jsonl"
        append_record(make_record(accesses_per_s=100000.0, host_cpus=8),
                      path=path)
        append_record(
            make_record(accesses_per_s=70000.0, ts=2000.0, host_cpus=8),
            path=path,
        )
        code = self.run_cli(
            "obs", "regress", "--bench", "NO_SUCH_GLOB_*.json",
            "--ledger", str(path), "--cpus", "8",
        )
        out = capsys.readouterr().out
        assert code == 2  # the bogus bench pattern is a read error
        code = self.run_cli(
            "obs", "regress", "--ledger", str(path), "--cpus", "8",
            "--bench",
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out

    def test_regress_check_passes_against_committed_history(
        self, obs_cache, capsys, monkeypatch
    ):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parent.parent)
        assert self.run_cli("obs", "regress", "--check") == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out


# ---------------------------------------------------------------------------
# Bench schema checker (scripts/check_bench.py)
# ---------------------------------------------------------------------------


class TestCheckBench:
    def load(self):
        import importlib.util
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_bench", root / "scripts" / "check_bench.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_committed_reports_conform(self, monkeypatch, capsys):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parent.parent)
        assert self.load().main([]) == 0
        capsys.readouterr()

    def test_rejects_missing_and_mistyped_keys(self, tmp_path, capsys):
        mod = self.load()
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({
            "bench": "b", "cpus": "eight", "rate_per_s": 1.0,
        }))
        assert mod.main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "cpus" in err and "methodology" in err

    def test_rejects_report_without_directional_metric(self, tmp_path,
                                                       capsys):
        mod = self.load()
        bad = tmp_path / "BENCH_flat.json"
        bad.write_text(json.dumps({
            "bench": "b", "cpus": 1, "methodology": "m", "note": "hi",
        }))
        assert mod.main([str(bad)]) == 1
        assert "directional" in capsys.readouterr().err
