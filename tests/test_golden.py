"""Golden regression values.

Exact counter values for fixed workload seeds and configurations.  These
pin the simulator's behaviour bit-for-bit: any refactor (especially
performance work) that changes a number here has changed *semantics*, not
just speed.  If a change is intentional, regenerate with
``python tests/test_golden.py``.
"""

import pytest

from repro.params import scaled_config
from repro.sim.engine import run_workload
from repro.workloads import (
    heterogeneous_mixes,
    homogeneous_mix,
    multithreaded_workload,
)

# (workload, scheme, policy) -> (cycles, llc_hits, llc_misses, l2_misses,
#                                inclusion_victims_llc, relocations,
#                                eviction_notices)
GOLDEN = {
    ("homo", "inclusive", "lru"): (285683, 2790, 8517, 11307, 168, 0, 10182),
    ("homo", "noninclusive", "hawkeye"): (194557, 6911, 4361, 11272, 0, 0, 10207),
    ("homo", "ziv:likelydead", "lru"): (299689, 1950, 9322, 11272, 0, 170, 10217),
    ("homo", "ziv:mrlikelydead", "hawkeye"): (202707, 5695, 5580, 11275, 0, 1477, 10151),
    ("homo", "qbs", "lru"): (300371, 2098, 9176, 11274, 0, 0, 10220),
    ("homo", "sharp", "hawkeye"): (220191, 5381, 5890, 11271, 0, 0, 10212),
    ("hetero", "inclusive", "lru"): (340709, 165, 5822, 5987, 492, 0, 5102),
    ("hetero", "noninclusive", "hawkeye"): (314354, 757, 5216, 5973, 0, 0, 5110),
    ("hetero", "ziv:likelydead", "lru"): (339232, 178, 5795, 5973, 0, 86, 5110),
    ("hetero", "ziv:mrlikelydead", "hawkeye"): (332873, 429, 5544, 5973, 0, 2436, 5110),
    ("hetero", "qbs", "lru"): (340885, 166, 5808, 5974, 0, 0, 5109),
    ("hetero", "sharp", "hawkeye"): (330916, 454, 5519, 5973, 0, 0, 5110),
    ("mt", "inclusive", "lru"): (122306, 8079, 2677, 10756, 37, 0, 9096),
    ("mt", "noninclusive", "hawkeye"): (112815, 8200, 2553, 10753, 0, 0, 9258),
    ("mt", "ziv:likelydead", "lru"): (119630, 8096, 2645, 10741, 0, 31, 9134),
    ("mt", "ziv:mrlikelydead", "hawkeye"): (112902, 8204, 2552, 10756, 0, 131, 9245),
    ("mt", "qbs", "lru"): (121095, 8074, 2666, 10740, 0, 0, 9132),
    ("mt", "sharp", "hawkeye"): (117281, 8144, 2603, 10747, 0, 0, 9185),
}


def _workload(name):
    if name == "homo":
        return homogeneous_mix("xalancbmk.2", cores=8, n_accesses=1500,
                               seed=42)
    if name == "hetero":
        return heterogeneous_mixes(n_mixes=1, cores=8, n_accesses=1500,
                                   seed=9)[0]
    return multithreaded_workload("applu", cores=8, n_accesses=1500, seed=3)


def _measure(key):
    wl_name, scheme, policy = key
    r = run_workload(scaled_config("512KB"), _workload(wl_name), scheme,
                     llc_policy=policy)
    s = r.stats
    return (
        r.cycles,
        s.llc_hits,
        s.llc_misses,
        s.l2_misses,
        s.inclusion_victims_llc,
        s.relocations,
        s.eviction_notices,
    )


@pytest.mark.parametrize("key", sorted(GOLDEN), ids=lambda k: "-".join(k))
def test_golden(key):
    assert _measure(key) == GOLDEN[key]


def regenerate() -> None:  # pragma: no cover - maintenance helper
    for key in sorted(GOLDEN):
        print(f"    {key}: {_measure(key)},")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
