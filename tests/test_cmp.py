"""The CMP hierarchy: access paths, coherence, notices, diagnostics."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import build, drive, tiny_config


class TestAccessPaths:
    def test_l1_hit_latency(self):
        h = build("inclusive")
        h.access(0, 0x10)
        lat = h.access(0, 0x10)
        assert lat == h.private[0].l1_latency

    def test_l2_hit_after_l1_eviction(self):
        h = build("inclusive")
        h.access(0, 0x10)
        # L1 is 1 set x 2 ways: two more fills evict 0x10 from L1
        h.access(0, 0x20)
        h.access(0, 0x30)
        assert not h.private[0].in_l1(0x10)
        assert h.private[0].in_l2(0x10)
        lat = h.access(0, 0x10)
        assert lat == h.private[0].l1_latency + h.private[0].l2_latency

    def test_llc_hit_cheaper_than_memory(self):
        h = build("inclusive")
        miss_lat = h.access(0, 0x10)
        h.private[0].invalidate(0x10)
        h.directory.free(0x10)
        hit_lat = h.access(0, 0x10)
        assert hit_lat < miss_lat

    def test_miss_counts(self):
        h = build("inclusive")
        h.access(0, 0x10)
        s = h.stats
        assert s.llc_misses == 1
        assert s.dram_reads == 1
        assert s.cores[0].l1_misses == 1
        assert s.cores[0].l2_misses == 1

    def test_second_core_llc_hit(self):
        h = build("inclusive")
        h.access(0, 0x10)
        h.access(1, 0x10)
        assert h.stats.llc_hits == 1
        assert h.sharer_mask(0x10) == 0b11


class TestCoherence:
    def test_write_invalidates_other_sharers(self):
        h = build("inclusive")
        h.access(0, 0x10)
        h.access(1, 0x10)
        h.access(0, 0x10, is_write=True)
        assert not h.private[1].has_block(0x10)
        assert h.stats.coherence_invalidations == 1
        assert h.sharer_mask(0x10) == 0b01

    def test_coherence_invalidations_are_not_inclusion_victims(self):
        h = build("inclusive")
        h.access(0, 0x10)
        h.access(1, 0x10)
        h.access(0, 0x10, is_write=True)
        assert h.stats.inclusion_victims_llc == 0

    def test_read_downgrades_remote_dirty_copy(self):
        h = build("inclusive")
        h.access(0, 0x10, is_write=True)
        h.access(1, 0x10)  # read: owner downgraded, LLC copy dirty
        assert h.private[0].has_block(0x10)
        b, s, w = h.llc.location(0x10)
        assert h.llc.block(b, s, w).dirty
        entry = h.directory.lookup(0x10)
        assert entry.owner == -1
        assert entry.sharers == 0b11

    def test_write_upgrade_on_private_hit(self):
        h = build("inclusive")
        h.access(0, 0x10)
        h.access(1, 0x10)
        # core 0 writes while holding a Shared copy: upgrade path
        h.access(0, 0x10, is_write=True)
        entry = h.directory.lookup(0x10)
        assert entry.owner == 0
        assert not h.private[1].has_block(0x10)

    def test_write_miss_claims_ownership(self):
        h = build("inclusive")
        h.access(0, 0x10, is_write=True)
        assert h.directory.lookup(0x10).owner == 0

    def test_dirty_eviction_reaches_memory(self):
        h = build("inclusive")
        h.access(0, 0x10, is_write=True)
        # spill the private caches so 0x10 leaves the core dirty
        for a in (2, 4, 6, 8, 10):
            h.access(0, a)
        assert not h.private[0].has_block(0x10)
        b, s, w = h.llc.location(0x10)
        assert w >= 0 and h.llc.block(b, s, w).dirty
        assert h.stats.llc_writebacks_in >= 1


class TestNotices:
    def test_notice_sets_not_in_prc(self):
        h = build("inclusive")
        h.access(0, 0x10)
        for a in (2, 4, 6, 8, 10):
            h.access(0, a)
        b, s, w = h.llc.location(0x10)
        assert h.llc.block(b, s, w).not_in_prc

    def test_llc_hit_clears_not_in_prc(self):
        h = build("inclusive")
        h.access(0, 0x10)
        for a in (2, 4, 6, 8, 10):
            h.access(0, a)
        h.access(0, 0x10)
        b, s, w = h.llc.location(0x10)
        assert not h.llc.block(b, s, w).not_in_prc

    def test_notice_frees_directory_entry(self):
        h = build("inclusive")
        h.access(0, 0x10)
        for a in (2, 4, 6, 8, 10):
            h.access(0, a)
        assert h.directory.lookup(0x10) is None

    def test_shared_block_keeps_entry_until_last_copy(self):
        h = build("inclusive")
        h.access(0, 0x10)
        h.access(1, 0x10)
        for a in (2, 4, 6, 8, 10):
            h.access(0, a)  # core 0 drops 0x10
        entry = h.directory.lookup(0x10)
        assert entry is not None
        assert entry.sharers == 0b10


class TestDiagnostics:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_directory_exactness(self, seed):
        """The sparse directory tracks exactly the privately cached blocks
        (paper III-A: notices keep it up to date)."""
        h = drive(build("inclusive"), 500, seed=seed)
        assert h.directory_consistent()

    def test_finalize_stats_syncs_spills(self):
        cfg = tiny_config(dir_geom=(1, 2), directory_mode="zerodev")
        h = drive(build("inclusive", cfg), 1000, seed=1)
        h.finalize_stats()
        assert h.stats.directory_spills == h.directory.spill_count

    def test_energy_accumulates(self):
        h = drive(build("inclusive"), 500, seed=1)
        assert h.energy.l1_accesses == 500
        assert h.energy.dram_accesses > 0


class TestDirectoryPressure:
    def test_dir_evictions_create_dir_victims(self):
        cfg = tiny_config(cores=2, l2=(2, 4), llc=(2, 4, 4), dir_geom=(1, 2))
        h = drive(build("inclusive", cfg), 3000, seed=2)
        assert h.stats.directory_evictions > 0
        assert h.stats.inclusion_victims_dir > 0
        assert h.inclusion_holds()
        assert h.directory_consistent()

    def test_zerodev_mode_spills_instead(self):
        cfg = tiny_config(cores=2, l2=(2, 4), llc=(2, 4, 4), dir_geom=(1, 2),
                          directory_mode="zerodev")
        h = drive(build("inclusive", cfg), 3000, seed=2)
        assert h.stats.inclusion_victims_dir == 0
        assert h.directory.spill_count > 0
