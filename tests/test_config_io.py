"""JSON configuration round-trip and validation."""

import pytest

from repro.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.params import ConfigError, scaled_config


class TestRoundTrip:
    def test_dict_roundtrip(self):
        cfg = scaled_config("512KB")
        again = config_from_dict(config_to_dict(cfg))
        assert again == cfg

    def test_file_roundtrip(self, tmp_path):
        cfg = scaled_config("768KB", directory_mode="zerodev")
        path = tmp_path / "machine.json"
        save_config(cfg, path)
        assert load_config(path) == cfg

    def test_minimal_config(self):
        cfg = config_from_dict(
            {
                "cores": 2,
                "l1": {"sets": 1, "ways": 2},
                "l2": {"sets": 2, "ways": 4},
                "llc": {"banks": 2, "sets_per_bank": 4, "ways": 4},
                "directory": {"sets": 2, "ways": 8},
            }
        )
        assert cfg.cores == 2
        assert cfg.directory_mode == "mesi"  # defaults apply

    def test_loaded_config_runs(self, tmp_path):
        from repro.sim.engine import run_workload
        from repro.workloads import homogeneous_mix

        path = tmp_path / "m.json"
        save_config(scaled_config("256KB"), path)
        cfg = load_config(path)
        wl = homogeneous_mix("leela.1", cores=cfg.cores, n_accesses=200)
        r = run_workload(cfg, wl, "ziv:notinprc")
        assert r.stats.inclusion_victims_llc == 0


class TestValidation:
    def base(self):
        return config_to_dict(scaled_config("256KB"))

    def test_unknown_top_level_key(self):
        d = self.base()
        d["l4"] = {}
        with pytest.raises(ConfigError, match="unknown configuration keys"):
            config_from_dict(d)

    def test_unknown_section_key(self):
        d = self.base()
        d["l1"]["banks"] = 4
        with pytest.raises(ConfigError, match="unknown keys in section"):
            config_from_dict(d)

    def test_section_must_be_object(self):
        d = self.base()
        d["l1"] = 32
        with pytest.raises(ConfigError, match="must be an object"):
            config_from_dict(d)

    def test_semantic_validation_applies(self):
        d = self.base()
        d["l2"] = {"sets": 512, "ways": 8}  # aggregate L2 >= LLC
        with pytest.raises(ConfigError, match="aggregate private"):
            config_from_dict(d)

    def test_invalid_json_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_config(p)

    def test_non_object_root(self):
        with pytest.raises(ConfigError, match="JSON object"):
            config_from_dict([1, 2])
