"""Per-set property maintenance and relocation-set victim selection."""

import pytest

from repro.core.properties import (
    PROPERTY_LADDERS,
    PropertyTracker,
    ZIV_PROPERTY_NAMES,
)
from repro.cache.set_assoc import AccessContext
from repro.hierarchy.llc import LastLevelCache
from repro.params import LLCGeometry


def make_llc(policy="lru"):
    return LastLevelCache(
        LLCGeometry(banks=2, sets_per_bank=4, ways=4), policy
    )


def tracker(llc, props=ZIV_PROPERTY_NAMES):
    return PropertyTracker(llc, tuple(props))


def fill(llc, bank, set_idx, way, addr, **flags):
    blk = llc.banks[bank].install(set_idx, way, addr, AccessContext())
    for k, v in flags.items():
        setattr(blk, k, v)
    return blk


class TestLadders:
    def test_all_ladders_end_with_notinprc(self):
        for name, ladder in PROPERTY_LADDERS.items():
            assert ladder[0] == "invalid"
            assert ladder[-1] == "notinprc"

    def test_unknown_property_rejected(self):
        llc = make_llc()
        with pytest.raises(ValueError):
            PropertyTracker(llc, ("invalid", "bogus"))


class TestRefresh:
    def test_initial_all_invalid(self):
        llc = make_llc()
        t = tracker(llc)
        for bank in range(2):
            assert t.pv(bank, "invalid").population() == 4
            assert t.pv(bank, "notinprc").empty

    def test_invalid_cleared_when_set_fills(self):
        llc = make_llc()
        t = tracker(llc)
        for way, a in enumerate(range(0, 32, 8)):
            fill(llc, 0, 0, way, a)
        t.refresh(0, 0)
        assert not t.satisfies(0, 0, "invalid")

    def test_notinprc_tracks_flag(self):
        llc = make_llc()
        t = tracker(llc)
        blk = fill(llc, 0, 0, 0, 0)
        t.refresh(0, 0)
        assert not t.satisfies(0, 0, "notinprc")
        blk.not_in_prc = True
        t.refresh(0, 0)
        assert t.satisfies(0, 0, "notinprc")

    def test_lrunotinprc_requires_lru_block(self):
        llc = make_llc()
        t = tracker(llc)
        b0 = fill(llc, 0, 0, 0, 0)           # oldest (LRU)
        b1 = fill(llc, 0, 0, 1, 8, not_in_prc=True)
        t.refresh(0, 0)
        assert not t.satisfies(0, 0, "lrunotinprc")  # LRU block is b0
        assert t.satisfies(0, 0, "notinprc")
        b0.not_in_prc = True
        t.refresh(0, 0)
        assert t.satisfies(0, 0, "lrunotinprc")

    def test_maxrrpv_requires_max(self):
        llc = make_llc("hawkeye")
        t = tracker(llc)
        maxr = llc.banks[0].policy.max_rrpv
        blk = fill(llc, 0, 0, 0, 0, not_in_prc=True)
        blk.rrpv = maxr - 1
        t.refresh(0, 0)
        assert not t.satisfies(0, 0, "maxrrpvnotinprc")
        blk.rrpv = maxr
        t.refresh(0, 0)
        assert t.satisfies(0, 0, "maxrrpvnotinprc")

    def test_likelydead_requires_both_flags(self):
        llc = make_llc()
        t = tracker(llc)
        blk = fill(llc, 0, 0, 0, 0, likely_dead=True)
        t.refresh(0, 0)
        # likely_dead without not_in_prc does not satisfy the property
        assert not t.satisfies(0, 0, "likelydeadnotinprc")
        blk.not_in_prc = True
        t.refresh(0, 0)
        assert t.satisfies(0, 0, "likelydeadnotinprc")

    def test_relocated_blocks_never_satisfy(self):
        """A relocated block is privately cached by invariant, so it can
        never make a set eligible."""
        from repro.cache.block import CacheBlock

        llc = make_llc()
        t = tracker(llc)
        src = CacheBlock()
        src.addr = 0
        src.valid = True
        llc.banks[0].install_relocated(1, 0, src, AccessContext())
        t.refresh(0, 1)
        assert not t.satisfies(0, 1, "notinprc")


class TestVictimSelection:
    def test_invalid_way_first(self):
        llc = make_llc()
        t = tracker(llc)
        fill(llc, 0, 0, 0, 0, not_in_prc=True)
        way = t.select_relocation_victim(0, 0, "notinprc")
        assert not llc.banks[0].blocks[0][way].valid

    def test_notinprc_closest_to_lru(self):
        llc = make_llc()
        t = tracker(llc)
        fill(llc, 0, 0, 0, 0, not_in_prc=True)    # oldest
        fill(llc, 0, 0, 1, 8, not_in_prc=True)
        fill(llc, 0, 0, 2, 16)
        fill(llc, 0, 0, 3, 24, not_in_prc=True)
        way = t.select_relocation_victim(0, 0, "notinprc")
        assert llc.banks[0].blocks[0][way].addr == 0

    def test_maxrrpv_scheme_prefers_high_rrpv(self):
        llc = make_llc("hawkeye")
        t = tracker(llc)
        b0 = fill(llc, 0, 0, 0, 0, not_in_prc=True)
        b1 = fill(llc, 0, 0, 1, 8, not_in_prc=True)
        fill(llc, 0, 0, 2, 16)
        fill(llc, 0, 0, 3, 24)
        b0.rrpv = 2
        b1.rrpv = 7
        way = t.select_relocation_victim(0, 0, "maxrrpvnotinprc")
        assert llc.banks[0].blocks[0][way].addr == 8

    def test_likelydead_scheme_prefers_dead(self):
        llc = make_llc()
        t = tracker(llc)
        fill(llc, 0, 0, 0, 0, not_in_prc=True)  # older, not dead
        fill(llc, 0, 0, 1, 8, not_in_prc=True, likely_dead=True)
        fill(llc, 0, 0, 2, 16)
        fill(llc, 0, 0, 3, 24)
        way = t.select_relocation_victim(0, 0, "likelydead")
        assert llc.banks[0].blocks[0][way].addr == 8

    def test_likelydead_falls_back_to_notinprc(self):
        llc = make_llc()
        t = tracker(llc)
        fill(llc, 0, 0, 0, 0, not_in_prc=True)
        fill(llc, 0, 0, 1, 8)
        fill(llc, 0, 0, 2, 16)
        fill(llc, 0, 0, 3, 24)
        way = t.select_relocation_victim(0, 0, "likelydead")
        assert llc.banks[0].blocks[0][way].addr == 0

    def test_mrlikelydead_priority_chain(self):
        llc = make_llc("hawkeye")
        t = tracker(llc)
        maxr = llc.banks[0].policy.max_rrpv
        b0 = fill(llc, 0, 0, 0, 0, not_in_prc=True, likely_dead=True)
        b1 = fill(llc, 0, 0, 1, 8, not_in_prc=True)
        fill(llc, 0, 0, 2, 16)
        fill(llc, 0, 0, 3, 24)
        b0.rrpv = 3
        b1.rrpv = maxr
        # first preference: NotInPrC with RRPV == max
        way = t.select_relocation_victim(0, 0, "mrlikelydead")
        assert llc.banks[0].blocks[0][way].addr == 8
        b1.rrpv = 2
        # next: LikelyDead with highest rrpv
        way = t.select_relocation_victim(0, 0, "mrlikelydead")
        assert llc.banks[0].blocks[0][way].addr == 0
        b0.likely_dead = False
        # finally: NotInPrC with highest rrpv
        way = t.select_relocation_victim(0, 0, "mrlikelydead")
        assert llc.banks[0].blocks[0][way].addr == 0

    def test_no_candidate_returns_minus_one(self):
        llc = make_llc()
        t = tracker(llc)
        for way, a in enumerate(range(0, 32, 8)):
            fill(llc, 0, 0, way, a)  # all privately cached (flags off)
        assert t.select_relocation_victim(0, 0, "notinprc") == -1

    def test_unknown_scheme_property(self):
        llc = make_llc()
        t = tracker(llc)
        for way, a in enumerate(range(0, 32, 8)):
            fill(llc, 0, 0, way, a)  # no invalid way left
        with pytest.raises(ValueError):
            t.select_relocation_victim(0, 0, "bogus")


class TestGlobalPick:
    def test_pick_global_consumes_round_robin(self):
        llc = make_llc()
        t = tracker(llc)
        for s in (1, 3):
            blk = fill(llc, 0, s, 0, s * 2, not_in_prc=True)
            for w, a in enumerate(range(64, 88, 8), start=1):
                fill(llc, 0, s, w, a + s)
            t.refresh(0, s)
        # make sets 0, 2 full and ineligible
        for s in (0, 2):
            for w, a in enumerate(range(128, 160, 8)):
                fill(llc, 0, s, w, a + s)
            t.refresh(0, s)
        picks = [t.pick_global(0, "notinprc") for _ in range(4)]
        assert picks == [1, 3, 1, 3]
