"""Energy model accounting."""

import pytest

from repro.energy.model import EnergyModel, EnergyTable, epi_saving_pj


class TestAccounting:
    def test_empty_model_zero_energy(self):
        assert EnergyModel().total_energy_pj() == 0.0

    def test_additivity(self):
        m = EnergyModel()
        m.l1_accesses = 10
        m.dram_accesses = 2
        t = m.table
        assert m.total_energy_pj() == pytest.approx(
            10 * t.l1_access + 2 * t.dram_access
        )

    def test_relocation_records_read_write_dir(self):
        m = EnergyModel(ziv_mode=True)
        m.record_relocation()
        assert m.relocations == 1
        assert m.llc_data_reads == 1
        assert m.llc_data_writes == 1
        assert m.dir_accesses == 1
        t = m.table
        assert m.relocation_energy_pj() >= t.llc_data_read + t.llc_data_write

    def test_widened_directory_costs_more(self):
        base = EnergyModel(ziv_mode=False)
        ziv = EnergyModel(ziv_mode=True)
        base.dir_accesses = ziv.dir_accesses = 100
        assert ziv.total_energy_pj() > base.total_energy_pj()

    def test_relocation_energy_zero_without_relocations(self):
        m = EnergyModel(ziv_mode=False)
        m.dir_accesses = 50
        assert m.relocation_energy_pj() == 0.0

    def test_epi_divides_by_instructions(self):
        m = EnergyModel()
        m.dram_accesses = 10
        assert m.epi_pj(1000) == pytest.approx(m.total_energy_pj() / 1000)
        assert m.epi_pj(0) == 0.0


class TestSavings:
    def test_saving_breakdown(self):
        base = EnergyModel()
        cand = EnergyModel(ziv_mode=True)
        base.dram_accesses = 100
        cand.dram_accesses = 60
        base.l2_accesses = cand.l2_accesses = 10
        cand.record_relocation()
        s = epi_saving_pj(base, cand, instructions=1000)
        assert s["dram"] == pytest.approx(
            40 * base.table.dram_access / 1000
        )
        assert s["relocation_cost"] > 0
        # the relocation read/write is billed to relocation_cost, not the
        # hierarchy bucket (the paper separates "EPI saved through fewer
        # misses" from the relocation expense)
        assert s["hierarchy"] == pytest.approx(0.0)

    def test_relocation_rw_not_double_counted(self):
        base = EnergyModel()
        cand = EnergyModel(ziv_mode=True)
        cand.record_relocation()
        s = epi_saving_pj(base, cand, instructions=100)
        t = cand.table
        assert s["relocation_cost"] * 100 >= (
            t.llc_data_read + t.llc_data_write
        )
        assert s["hierarchy"] == pytest.approx(0.0)

    def test_saving_requires_positive_instructions(self):
        with pytest.raises(ValueError):
            epi_saving_pj(EnergyModel(), EnergyModel(), 0)

    def test_custom_table(self):
        t = EnergyTable(dram_access=1000.0)
        m = EnergyModel(table=t)
        m.dram_accesses = 1
        assert m.total_energy_pj() == 1000.0
