"""Docs-as-tests: every fenced ``python`` block in the user-facing
documentation must actually run.

Each documented file's blocks execute *sequentially in one shared
namespace*, so a later block may use names a previous block defined --
exactly how a reader would paste them into one interpreter session.
Blocks whose first line is ``# docs-test: skip`` are exempt (use
sparingly: illustrative fragments that need unavailable context).

The docs are written to be smoke-fast; the session-wide
``REPRO_CACHE_DIR`` isolation from conftest applies here too, so doc
runs never touch (or get served from) the repo's real result cache.
"""

from __future__ import annotations

import io
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = (
    "README.md",
    "docs/API.md",
    "docs/OBSERVABILITY.md",
    "docs/PERFORMANCE.md",
    "docs/SERVICE.md",
    "docs/STATIC_ANALYSIS.md",
    "docs/TRACES.md",
)

SKIP_MARKER = "# docs-test: skip"

_FENCE_OPEN = re.compile(r"^```python\s*$")
_FENCE_CLOSE = re.compile(r"^```\s*$")


def python_blocks(path: pathlib.Path) -> list[tuple[int, str]]:
    """``(first_line_number, source)`` for every fenced python block."""
    blocks: list[tuple[int, str]] = []
    buf: list[str] = []
    start = 0
    in_block = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not in_block and _FENCE_OPEN.match(line):
            in_block, buf, start = True, [], lineno + 1
        elif in_block and _FENCE_CLOSE.match(line):
            in_block = False
            blocks.append((start, "\n".join(buf)))
        elif in_block:
            buf.append(line)
    assert not in_block, f"unterminated ```python fence in {path}"
    return blocks


def test_every_doc_file_exists_and_has_blocks():
    for rel in DOC_FILES:
        path = REPO_ROOT / rel
        assert path.is_file(), f"documented file missing: {rel}"
        assert python_blocks(path), f"no fenced python blocks in {rel}"


@pytest.mark.parametrize("rel", DOC_FILES)
def test_doc_python_blocks_execute(rel, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    path = REPO_ROOT / rel
    namespace: dict = {"__name__": f"docs_test[{rel}]"}
    ran = 0
    for lineno, source in python_blocks(path):
        if source.lstrip().startswith(SKIP_MARKER):
            continue
        code = compile(source, f"{rel}:{lineno}", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"{rel} block at line {lineno} raised "
                f"{type(exc).__name__}: {exc}\n--- block ---\n{source}"
            )
        ran += 1
    assert ran > 0, f"all python blocks in {rel} were skip-marked"


def test_skip_marker_is_honoured(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "text\n```python\n# docs-test: skip\nraise RuntimeError('boom')\n"
        "```\n```python\nx = 1\n```\n"
    )
    blocks = python_blocks(doc)
    assert len(blocks) == 2
    assert blocks[0][1].lstrip().startswith(SKIP_MARKER)
    assert blocks[1] == (7, "x = 1")


def test_extractor_line_numbers_point_at_block_bodies():
    buf = io.StringIO()
    path = REPO_ROOT / "README.md"
    text = path.read_text().splitlines()
    for lineno, source in python_blocks(path):
        first = source.splitlines()[0] if source else ""
        assert text[lineno - 1] == first, buf.getvalue()
