"""Cross-module integration: full simulations with invariant audits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.params import scaled_config
from repro.sim.engine import run_workload
from repro.sim.trace import Workload
from repro.workloads import build_trace, homogeneous_mix, multithreaded_workload


def small_mix(cores=8, n=800, seed=0):
    return homogeneous_mix("xalancbmk.2", cores=cores, n_accesses=n,
                           seed=seed)


class TestEndToEnd:
    def test_all_schemes_run_to_completion(self):
        wl = small_mix()
        cfg = scaled_config("512KB")
        for scheme, policy in (
            ("inclusive", "lru"),
            ("noninclusive", "lru"),
            ("qbs", "lru"),
            ("sharp", "lru"),
            ("charonbase", "lru"),
            ("ziv:notinprc", "lru"),
            ("ziv:lrunotinprc", "lru"),
            ("ziv:likelydead", "lru"),
            ("inclusive", "hawkeye"),
            ("ziv:maxrrpvnotinprc", "hawkeye"),
            ("ziv:mrlikelydead", "hawkeye"),
        ):
            r = run_workload(cfg, wl, scheme, llc_policy=policy)
            assert r.stats.total_accesses == wl.total_accesses()
            if scheme.startswith("ziv"):
                assert r.stats.inclusion_victims_llc == 0

    def test_functional_counts_equal_across_scheduling_for_one_core(self):
        cfg = scaled_config("256KB", cores=8)
        wl = small_mix(n=500)
        timing = run_workload(cfg, wl, "inclusive")
        locks = run_workload(cfg, wl, "inclusive", scheduling="lockstep")
        # multiprogrammed mixes share nothing, so content dynamics are
        # interleaving-independent at the per-core level
        assert timing.stats.l2_misses == locks.stats.l2_misses

    def test_multithreaded_coherence_traffic(self):
        cfg = scaled_config("512KB")
        wl = multithreaded_workload("applu", cores=8, n_accesses=1200)
        r = run_workload(cfg, wl, "inclusive", llc_policy="lru")
        assert r.stats.coherence_invalidations > 0

    def test_ziv_multithreaded_guarantee(self):
        cfg = scaled_config("512KB")
        wl = multithreaded_workload("applu", cores=8, n_accesses=1200)
        r = run_workload(cfg, wl, "ziv:likelydead", llc_policy="lru")
        assert r.stats.inclusion_victims_llc == 0

    def test_min_generates_more_inclusion_victims_than_lru(self):
        """The paper's core motivation (Fig. 2): optimal-leaning policies
        victimise recently used blocks, which are privately cached."""
        from repro.cache.replacement import NextUseOracle
        from repro.sim.trace import lockstep_stream

        cfg = scaled_config("512KB")
        wl = Workload(
            [
                build_trace("xalancbmk.2", 2500, base_addr=(c + 1) << 24,
                            seed=c)
                for c in range(8)
            ],
            "circmix",
        )
        lru = run_workload(cfg, wl, "inclusive", "lru",
                           scheduling="lockstep")
        oracle = NextUseOracle(lockstep_stream(wl))
        mn = run_workload(cfg, wl, "inclusive", "belady",
                          scheduling="lockstep", oracle=oracle)
        assert (
            mn.stats.inclusion_victims_llc
            > lru.stats.inclusion_victims_llc
        )

    def test_min_has_fewest_llc_misses(self):
        """Sanity: even paying inclusion victims, MIN's LLC miss count on
        the oracle stream beats LRU's."""
        from repro.cache.replacement import NextUseOracle
        from repro.sim.trace import lockstep_stream

        cfg = scaled_config("512KB")
        wl = small_mix(n=2000, seed=2)
        lru = run_workload(cfg, wl, "inclusive", "lru",
                           scheduling="lockstep")
        oracle = NextUseOracle(lockstep_stream(wl))
        mn = run_workload(cfg, wl, "inclusive", "belady",
                          scheduling="lockstep", oracle=oracle)
        assert mn.stats.llc_misses <= lru.stats.llc_misses


class TestInvariantAudit:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        scheme=st.sampled_from(
            ["inclusive", "qbs", "sharp", "ziv:notinprc", "ziv:likelydead"]
        ),
    )
    def test_inclusive_family_invariants(self, seed, scheme):
        from repro.hierarchy.cmp import CacheHierarchy
        from repro.schemes import make_scheme
        from repro.sim.engine import Simulation

        cfg = scaled_config("512KB", cores=4)
        wl = homogeneous_mix("gcc.2", cores=4, n_accesses=400, seed=seed)
        h = CacheHierarchy(cfg, make_scheme(scheme))
        Simulation(h, wl).run()
        assert h.inclusion_holds()
        assert h.directory_consistent()

    def test_llc_occupancy_bounded(self):
        cfg = scaled_config("256KB")
        wl = small_mix(n=1500, seed=3)
        from repro.hierarchy.cmp import CacheHierarchy
        from repro.schemes import make_scheme
        from repro.sim.engine import Simulation

        h = CacheHierarchy(cfg, make_scheme("ziv:notinprc"))
        Simulation(h, wl).run()
        assert h.llc.occupancy() <= h.llc.blocks_total
