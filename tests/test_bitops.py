"""Algorithm 1 (decoded nextRS) and bit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import (
    decode_onehot,
    decoded_next_rs,
    encode_onehot,
    lowest_set_bit,
    naive_next_rs,
)


class TestLowestSetBit:
    def test_zero(self):
        assert lowest_set_bit(0) == 0

    def test_single_bit(self):
        for i in range(40):
            assert lowest_set_bit(1 << i) == 1 << i

    def test_mixed(self):
        assert lowest_set_bit(0b1011000) == 0b1000

    @given(st.integers(min_value=1, max_value=2**64))
    def test_result_is_power_of_two_dividing_input(self, x):
        b = lowest_set_bit(x)
        assert b & (b - 1) == 0
        assert x & b == b
        assert (x ^ b) < x


class TestOneHot:
    def test_roundtrip(self):
        for pos in range(64):
            assert decode_onehot(encode_onehot(pos)) == pos

    def test_decode_zero(self):
        assert decode_onehot(0) == -1

    def test_decode_rejects_multi_bit(self):
        with pytest.raises(ValueError):
            decode_onehot(0b11)

    def test_encode_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_onehot(-1)


class TestDecodedNextRS:
    def test_empty_pv(self):
        assert decoded_next_rs(0, encode_onehot(3), 8) == 0

    def test_no_current_rs_returns_lowest(self):
        assert decoded_next_rs(0b101000, 0, 8) == 0b1000

    def test_simple_next(self):
        # PV bits at 1, 4; current at 1 -> next is 4
        assert decoded_next_rs(0b10010, encode_onehot(1), 8) == 0b10000

    def test_wraps_around(self):
        # PV bits at 1, 4; current at 4 -> wraps to 1
        assert decoded_next_rs(0b10010, encode_onehot(4), 8) == 0b00010

    def test_only_current_bit_set(self):
        # Round robin with a single eligible set keeps pointing at it.
        assert decoded_next_rs(0b1000, encode_onehot(3), 8) == 0b1000

    def test_full_rotation_visits_all(self):
        width = 16
        pv = 0b1010101010101010
        current = encode_onehot(1)
        visited = []
        for _ in range(8):
            current = decoded_next_rs(pv, current, width)
            visited.append(decode_onehot(current))
        assert visited == [3, 5, 7, 9, 11, 13, 15, 1]
        assert len(set(visited)) == 8

    @given(
        pv=st.integers(min_value=0, max_value=(1 << 32) - 1),
        pos=st.integers(min_value=0, max_value=31),
    )
    def test_matches_naive_scan(self, pv, pos):
        """Algorithm 1's bit logic equals the reference linear scan."""
        got = decoded_next_rs(pv, encode_onehot(pos), 32)
        want_pos = naive_next_rs(pv, pos, 32)
        if want_pos < 0:
            assert got == 0
        else:
            assert decode_onehot(got) == want_pos

    @given(pv=st.integers(min_value=1, max_value=(1 << 32) - 1))
    def test_result_always_in_pv(self, pv):
        got = decoded_next_rs(pv, 0, 32)
        assert got & pv == got
        assert got != 0

    @given(
        width=st.integers(min_value=1, max_value=128),
        data=st.data(),
    )
    def test_matches_naive_scan_any_width(self, width, data):
        """Full round-trip over random (PV, width, pointer) combinations:
        the hardware bit trick must equal the linear scan at every vector
        width, not just the 32-set geometry."""
        pv = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        pos = data.draw(st.integers(min_value=0, max_value=width - 1))
        got = decoded_next_rs(pv, encode_onehot(pos), width)
        want_pos = naive_next_rs(pv, pos, width)
        if want_pos < 0:
            assert got == 0
        else:
            assert decode_onehot(got) == want_pos
        # And with no current RS: the lowest set bit wins in both.
        got0 = decoded_next_rs(pv, 0, width)
        assert got0 == lowest_set_bit(pv)
