"""Hawkeye: predictor, OPTgen sampler, insertion/aging/eviction behaviour."""

from hypothesis import given, settings, strategies as st

from tests.test_belady import brute_force_optimal_hits

from repro.cache.replacement.hawkeye import (
    HawkeyePolicy,
    HawkeyePredictor,
    _SampledSet,
)
from repro.cache.set_assoc import AccessContext, SetAssociativeCache


class TestPredictor:
    def test_initially_friendly(self):
        p = HawkeyePredictor(entries=64)
        assert p.is_friendly(0x1234)

    def test_training_down_makes_averse(self):
        p = HawkeyePredictor(entries=64)
        for _ in range(8):
            p.train(0x42, opt_hit=False)
        assert not p.is_friendly(0x42)

    def test_training_up_saturates(self):
        p = HawkeyePredictor(entries=64)
        for _ in range(20):
            p.train(0x42, opt_hit=True)
        assert p.is_friendly(0x42)
        p.train(0x42, opt_hit=False)
        assert p.is_friendly(0x42)  # one miss can't flip a saturated PC

    def test_detrain(self):
        p = HawkeyePredictor(entries=64)
        for _ in range(8):
            p.detrain(0x77)
        assert not p.is_friendly(0x77)

    def test_entries_must_be_pow2(self):
        import pytest

        with pytest.raises(ValueError):
            HawkeyePredictor(entries=100)


class TestOPTgen:
    def test_reuse_within_capacity_is_hit(self):
        s = _SampledSet(window=64)
        assert s.access(1, 0xA, capacity=2) is None  # compulsory
        assert s.access(2, 0xB, capacity=2) is None
        out = s.access(1, 0xC, capacity=2)
        assert out == (0xA, True)

    def test_overloaded_interval_is_miss(self):
        s = _SampledSet(window=64)
        cap = 1
        s.access(1, 0xA, cap)
        s.access(2, 0xB, cap)
        # interval of 2 covers a quantum already at capacity after 2's hit
        assert s.access(2, 0xB2, cap) == (0xB, True)
        assert s.access(1, 0xA2, cap)[1] is False

    def test_window_compaction_preserves_recent(self):
        s = _SampledSet(window=8)
        for i in range(64):
            s.access(i % 4, 0x1, capacity=4)
        assert len(s.occ) <= 16

    @settings(max_examples=50)
    @given(
        stream=st.lists(
            st.integers(min_value=0, max_value=5), min_size=2, max_size=40
        )
    )
    def test_optgen_hits_never_exceed_belady(self, stream):
        """OPTgen must not beat the bypass-allowed optimum (OPTgen models
        OPT with bypass: never-reused fills occupy no space)."""
        cap = 2
        s = _SampledSet(window=256)
        optgen_hits = 0
        for addr in stream:
            out = s.access(addr, 0x1, cap)
            if out is not None and out[1]:
                optgen_hits += 1
        assert optgen_hits <= brute_force_optimal_hits(
            cap, tuple(stream), allow_bypass=True
        )


class TestPolicy:
    def make(self, sets=8, ways=4):
        policy = HawkeyePolicy(sample_every=1, predictor_entries=64)
        cache = SetAssociativeCache(sets, ways, policy)
        return cache, policy

    def test_friendly_insert_rrpv_zero(self):
        cache, policy = self.make()
        cache.install(0, 0, 0, AccessContext(pc=0x10))
        assert cache.blocks[0][0].rrpv == 0
        assert cache.blocks[0][0].friendly

    def test_averse_insert_rrpv_max(self):
        cache, policy = self.make()
        for _ in range(8):
            policy.predictor.train(0x10, opt_hit=False)
        cache.install(0, 0, 0, AccessContext(pc=0x10))
        assert cache.blocks[0][0].rrpv == policy.max_rrpv

    def test_friendly_fill_ages_others(self):
        cache, policy = self.make(sets=1, ways=3)
        cache.install(0, 0, 0, AccessContext(pc=1))
        r0_before = cache.blocks[0][0].rrpv
        cache.install(0, 1, 8, AccessContext(pc=2))
        assert cache.blocks[0][0].rrpv == r0_before + 1

    def test_victim_prefers_averse(self):
        cache, policy = self.make(sets=1, ways=2)
        cache.install(0, 0, 0, AccessContext(pc=1))
        for _ in range(8):
            policy.predictor.train(0x66, opt_hit=False)
        cache.install(0, 1, 8, AccessContext(pc=0x66))
        way = policy.victim(0, AccessContext())
        assert cache.blocks[0][way].addr == 8

    def test_evicting_friendly_detrains(self):
        cache, policy = self.make(sets=1, ways=1)
        cache.install(0, 0, 0, AccessContext(pc=0x20))
        before = policy.predictor.table[
            policy.predictor.mask & 0  # placeholder, recompute below
        ]
        from repro.cache.replacement.hawkeye import _hash_pc

        idx = _hash_pc(0x20, policy.predictor.mask)
        before = policy.predictor.table[idx]
        cache.evict_way(0, 0, AccessContext())
        assert policy.predictor.table[idx] == max(0, before - 1)

    def test_relocation_fill_does_not_observe(self):
        """install_relocated must not add a sampler observation."""
        from repro.cache.block import CacheBlock

        cache, policy = self.make(sets=4, ways=2)
        cache.install(0, 0, 0, AccessContext(pc=1))
        sampler = policy._samples[0]
        clock_before = sampler.clock
        src = CacheBlock()
        src.addr = 1  # maps to set 1; host it in set 0
        src.valid = True
        src.last_pc = 1
        cache.install_relocated(0, 1, src, AccessContext(pc=99))
        assert policy._samples[0].clock == clock_before

    def test_only_sampled_sets_have_state(self):
        policy = HawkeyePolicy(sample_every=4, predictor_entries=64)
        cache = SetAssociativeCache(8, 2, policy)
        for s in range(8):
            cache.install(s, 0, s, AccessContext(pc=5))
        assert set(policy._samples) <= {0, 4}
