"""Edge cases and robustness across the stack."""

import pytest

from tests.conftest import build, drive, tiny_config

from repro.sim.engine import Simulation, run_workload
from repro.sim.stats import SimStats
from repro.sim.trace import CoreTrace, TraceRecord, Workload


class TestDegenerateWorkloads:
    def test_single_access(self):
        wl = Workload(
            [CoreTrace([TraceRecord(0, 5, False, 0)]),
             CoreTrace([TraceRecord(0, 9, False, 0)])],
            "one",
        )
        r = run_workload(tiny_config(), wl, "inclusive")
        assert r.stats.total_accesses == 2
        assert r.stats.llc_misses == 2

    def test_uneven_trace_lengths(self):
        wl = Workload(
            [
                CoreTrace([TraceRecord(1, a, False, 0) for a in range(50)]),
                CoreTrace([TraceRecord(1, 100, False, 0)]),
            ],
            "uneven",
        )
        r = run_workload(tiny_config(), wl, "ziv:notinprc")
        assert r.stats.cores[0].accesses == 50
        assert r.stats.cores[1].accesses == 1

    def test_write_only_stream(self):
        wl = Workload(
            [
                CoreTrace(
                    [TraceRecord(1, a % 10, True, 1) for a in range(200)]
                )
                for _ in range(2)
            ],
            "writes",
        )
        # cores share addresses: heavy coherence ping-pong
        h = build("ziv:notinprc")
        for i in range(200):
            h.access(i % 2, (i // 2) % 10, is_write=True, cycle=i)
        assert h.stats.coherence_invalidations > 0
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()

    def test_huge_addresses(self):
        h = build("ziv:notinprc")
        big = (1 << 45) + 12345
        h.access(0, big)
        h.access(0, big)
        assert h.stats.cores[0].l1_hits == 1

    def test_single_block_ping_pong(self):
        """Two cores alternately writing one block: pure coherence."""
        h = build("inclusive")
        for i in range(200):
            h.access(i % 2, 0x40, is_write=True, cycle=i)
        assert h.stats.inclusion_victims_llc == 0
        assert h.directory_consistent()


class TestSameAddressReuse:
    def test_repeated_access_stays_l1(self):
        h = build("inclusive")
        h.access(0, 7)
        for _ in range(50):
            h.access(0, 7)
        assert h.stats.cores[0].l1_hits == 50
        assert h.stats.llc_misses == 1

    def test_read_after_write_same_core(self):
        h = build("inclusive")
        h.access(0, 7, is_write=True)
        h.access(0, 7, is_write=False)
        assert h.stats.coherence_invalidations == 0


class TestStats:
    def test_summary_keys(self):
        s = SimStats.for_cores(2)
        summary = s.summary()
        for key in ("llc_misses", "inclusion_victims_llc", "relocations"):
            assert key in summary

    def test_count_property_hit(self):
        s = SimStats.for_cores(1)
        s.count_property_hit("global:notinprc")
        s.count_property_hit("global:notinprc")
        assert s.property_hits["global:notinprc"] == 2

    def test_inclusion_victims_aggregates(self):
        s = SimStats.for_cores(1)
        s.inclusion_victims_llc = 3
        s.inclusion_victims_dir = 4
        assert s.inclusion_victims == 7

    def test_core_ipc(self):
        s = SimStats.for_cores(1)
        s.cores[0].instructions = 100
        s.cores[0].cycles = 50
        assert s.cores[0].ipc == 2.0
        s.cores[0].cycles = 0
        assert s.cores[0].ipc == 0.0


class TestSchemesUnderHawkeye:
    """The comparators must keep their invariants under the learning
    policy too (the paper pairs QBS/SHARP with both baselines)."""

    @pytest.mark.parametrize("scheme", ["qbs", "sharp", "inclusive"])
    def test_inclusion_holds(self, scheme):
        h = drive(build(scheme, policy="hawkeye"), 2500, seed=5)
        assert h.inclusion_holds()
        assert h.directory_consistent()

    def test_noninclusive_hawkeye_runs(self):
        h = drive(build("noninclusive", policy="hawkeye"), 2500, seed=5)
        assert h.stats.back_invalidations_llc == 0


class TestLatencyAccounting:
    def test_latency_composition_is_monotone(self):
        """l1 < l1+l2 < llc-hit < memory-miss for a fresh hierarchy."""
        h = build("inclusive")
        miss = h.access(0, 0x10)
        l1 = h.access(0, 0x10)
        h2 = build("inclusive")
        h2.access(0, 0x10)
        h2.private[0].invalidate(0x10)
        h2.directory.free(0x10)
        llc_hit = h2.access(0, 0x10)
        assert l1 < llc_hit < miss

    def test_relocated_access_pays_penalty(self):
        """An access served through a relocation pointer costs more than a
        plain LLC hit by exactly the configured penalty."""
        cfg = tiny_config()
        h = build("ziv:notinprc", cfg)
        # craft: fill a block, relocate it by pressure, then access from
        # the second core (private miss -> relocated hit)
        import random

        rng = random.Random(1)
        for i in range(3000):
            h.access(0, rng.randrange(12) * 2, cycle=i)
        relocated = [
            e for e in h.directory.iter_valid() if e.relocated
        ]
        if relocated:
            entry = relocated[0]
            lat = h.access(1, entry.addr, cycle=9999)
            h3 = build("inclusive", tiny_config())
            h3.access(0, 0x20)
            h3.private[0].invalidate(0x20)
            h3.directory.free(0x20)
            plain = h3.access(0, 0x20)
            assert lat >= plain
