"""LRU, NRU and Random replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.replacement import (
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.cache.set_assoc import AccessContext, SetAssociativeCache


def fresh(policy, sets=1, ways=4):
    return SetAssociativeCache(sets, ways, policy)


def fill_set(cache, addrs, set_idx=0):
    ctx = AccessContext()
    for i, a in enumerate(addrs):
        cache.install(set_idx, i, a, ctx)


class TestFactory:
    def test_known_names(self):
        for name in ("lru", "nru", "random", "srrip", "brrip", "drrip",
                     "fifo", "plru", "lip", "bip", "ship", "hawkeye"):
            assert make_policy(name) is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("mockingjay")

    def test_double_attach_rejected(self):
        p = LRUPolicy()
        fresh(p)
        with pytest.raises(RuntimeError):
            SetAssociativeCache(1, 2, p)


class TestLRU:
    def test_victim_is_least_recent(self):
        c = fresh(LRUPolicy(), ways=4)
        fill_set(c, [0, 8, 16, 24])
        c.touch(0, AccessContext())
        assert c.blocks[0][c.policy.victim(0, AccessContext())].addr == 8

    def test_ranked_order_is_recency_order(self):
        c = fresh(LRUPolicy(), ways=4)
        fill_set(c, [0, 8, 16, 24])
        for a in (16, 0, 24, 8):
            c.touch(a, AccessContext())
        ranked = [c.blocks[0][w].addr for w in
                  c.policy.ranked_victims(0, AccessContext())]
        assert ranked == [16, 0, 24, 8]

    def test_promote_moves_to_mru(self):
        c = fresh(LRUPolicy(), ways=3)
        fill_set(c, [0, 8, 16])
        c.promote(0, 0, AccessContext())  # way 0 holds addr 0
        assert c.blocks[0][c.policy.victim(0, AccessContext())].addr == 8

    def test_lru_block_way(self):
        c = fresh(LRUPolicy(), ways=3)
        fill_set(c, [0, 8, 16])
        assert c.policy.lru_block_way(0) == 0
        c.touch(0, AccessContext())
        assert c.policy.lru_block_way(0) == 1

    @given(
        ops=st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                     max_size=200)
    )
    def test_stack_property(self, ops):
        """LRU inclusion (stack) property: the content of a 2-way cache is
        always a subset of a 4-way cache under the same access stream."""
        small = fresh(LRUPolicy(), sets=1, ways=2)
        large = fresh(LRUPolicy(), sets=1, ways=4)
        ctx = AccessContext()
        for a in ops:
            for cache in (small, large):
                if cache.contains(a):
                    cache.touch(a, ctx)
                else:
                    way = cache.choose_victim_way(0, ctx)
                    if cache.blocks[0][way].valid:
                        cache.evict_way(0, way, ctx)
                    cache.install(0, way, a, ctx)
        assert small.resident_addrs() <= large.resident_addrs()


class TestNRU:
    def test_prefers_not_recent(self):
        c = fresh(NRUPolicy(), ways=4)
        fill_set(c, [0, 8, 16, 24])
        # everything has nru=1 -> all reset, victim = way 0
        assert c.policy.victim(0, AccessContext()) == 0
        c.touch(8, AccessContext())  # way 1 recent again
        assert c.policy.victim(0, AccessContext()) == 0

    def test_reset_when_all_recent(self):
        c = fresh(NRUPolicy(), ways=2)
        fill_set(c, [0, 8])
        ranked = list(c.policy.ranked_victims(0, AccessContext()))
        assert len(ranked) == 2  # reset happened, both candidates


class TestRandom:
    def test_deterministic_with_seed(self):
        a = fresh(RandomPolicy(seed=5), ways=8)
        b = fresh(RandomPolicy(seed=5), ways=8)
        fill_set(a, list(range(0, 64, 8)))
        fill_set(b, list(range(0, 64, 8)))
        va = [a.policy.victim(0, AccessContext()) for _ in range(10)]
        vb = [b.policy.victim(0, AccessContext()) for _ in range(10)]
        assert va == vb

    def test_covers_all_ways_eventually(self):
        c = fresh(RandomPolicy(seed=1), ways=4)
        fill_set(c, [0, 8, 16, 24])
        seen = {c.policy.victim(0, AccessContext()) for _ in range(100)}
        assert seen == {0, 1, 2, 3}
