"""FIFO, Tree-PLRU, LIP and BIP."""

import pytest

from repro.cache.replacement.classic import (
    BIPPolicy,
    FIFOPolicy,
    LIPPolicy,
    TreePLRUPolicy,
)
from repro.cache.set_assoc import AccessContext, SetAssociativeCache


def fresh(policy, sets=1, ways=4):
    return SetAssociativeCache(sets, ways, policy)


def fill_set(cache, addrs, set_idx=0):
    for i, a in enumerate(addrs):
        cache.install(set_idx, i, a, AccessContext())


class TestFIFO:
    def test_hits_do_not_refresh(self):
        c = fresh(FIFOPolicy())
        fill_set(c, [0, 8, 16, 24])
        c.touch(0, AccessContext())  # would save 0 under LRU
        way = c.policy.victim(0, AccessContext())
        assert c.blocks[0][way].addr == 0  # still the oldest fill

    def test_promote_requeues(self):
        c = fresh(FIFOPolicy())
        fill_set(c, [0, 8, 16, 24])
        c.promote(0, 0, AccessContext())
        way = c.policy.victim(0, AccessContext())
        assert c.blocks[0][way].addr == 8


class TestTreePLRU:
    def test_requires_pow2_ways(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1, 3, TreePLRUPolicy())

    def test_victim_avoids_recent(self):
        c = fresh(TreePLRUPolicy(), ways=4)
        fill_set(c, [0, 8, 16, 24])
        c.touch(24, AccessContext())
        way = c.policy.victim(0, AccessContext())
        assert c.blocks[0][way].addr != 24

    def test_full_rotation_touches_all_ways(self):
        """Touching ways round-robin makes PLRU cycle victims over all."""
        c = fresh(TreePLRUPolicy(), ways=4)
        fill_set(c, [0, 8, 16, 24])
        victims = set()
        for _ in range(8):
            way = c.policy.victim(0, AccessContext())
            victims.add(way)
            c.touch(c.blocks[0][way].addr, AccessContext())
        assert len(victims) >= 3  # PLRU approximates, LRU would give 4

    def test_ranked_starts_with_victim(self):
        c = fresh(TreePLRUPolicy(), ways=4)
        fill_set(c, [0, 8, 16, 24])
        ranked = list(c.policy.ranked_victims(0, AccessContext()))
        assert ranked[0] == c.policy.victim(0, AccessContext())
        assert sorted(ranked) == [0, 1, 2, 3]


class TestLIP:
    def test_fills_enter_at_lru(self):
        c = fresh(LIPPolicy(), ways=4)
        fill_set(c, [0, 8, 16])
        # the newest fill (16) is the next victim under LIP
        way = c.policy.victim(0, AccessContext())
        assert c.blocks[0][way].addr == 16

    def test_hit_promotes_to_mru(self):
        c = fresh(LIPPolicy(), ways=2)
        fill_set(c, [0, 8])
        c.touch(8, AccessContext())
        way = c.policy.victim(0, AccessContext())
        assert c.blocks[0][way].addr == 0

    def test_lip_protects_working_set_from_scan(self):
        """The classic LIP win: a resident working set survives a long
        streaming scan that destroys LRU."""

        def run(policy_cls):
            cache = fresh(policy_cls(), ways=4)
            hits = 0
            accesses = []
            for lap in range(40):
                accesses.extend([1, 2, 3])  # working set
                # three distinct scan elements per lap overwhelm LRU
                accesses.extend(100 + 3 * lap + k for k in range(3))
            for a in accesses:
                s = 0
                if cache.contains(a):
                    cache.touch(a, AccessContext())
                    hits += 1
                else:
                    way = cache.choose_victim_way(s, AccessContext())
                    if cache.blocks[s][way].valid:
                        cache.evict_way(s, way, AccessContext())
                    cache.install(s, way, a, AccessContext())
            return hits

        from repro.cache.replacement import LRUPolicy

        assert run(LIPPolicy) > run(LRUPolicy)


class TestBIP:
    def test_mostly_lru_insertion(self):
        c = fresh(BIPPolicy(mru_prob=0.0), ways=4)
        fill_set(c, [0, 8, 16])
        way = c.policy.victim(0, AccessContext())
        assert c.blocks[0][way].addr == 16  # pure LIP when prob 0

    def test_occasional_mru_insertion(self):
        c = fresh(BIPPolicy(mru_prob=1.0), ways=4)
        fill_set(c, [0, 8, 16])
        way = c.policy.victim(0, AccessContext())
        assert c.blocks[0][way].addr == 0  # pure LRU when prob 1


class TestZIVUnderClassicPolicies:
    @pytest.mark.parametrize("policy", ["fifo", "plru", "lip", "bip",
                                        "ship", "srrip"])
    def test_guarantee_holds_under_any_baseline(self, policy):
        """The ZIV guarantee is policy-agnostic (paper III-B leaves the
        baseline policy free)."""
        from tests.conftest import build, drive

        h = drive(build("ziv:notinprc", policy=policy), 2000, seed=6)
        assert h.stats.inclusion_victims_llc == 0
        assert h.inclusion_holds()
