"""Belady MIN oracle and replacement policy."""

from hypothesis import given, strategies as st

from repro.cache.replacement import BeladyPolicy, LRUPolicy, NextUseOracle
from repro.cache.replacement.belady import INFINITE
from repro.cache.set_assoc import AccessContext, SetAssociativeCache


class TestOracle:
    def test_next_use_basic(self):
        o = NextUseOracle([5, 7, 5, 9, 7])
        assert o.next_use(5, 0) == 2
        assert o.next_use(7, 1) == 4
        assert o.next_use(9, 3) == INFINITE
        assert o.next_use(5, 2) == INFINITE

    def test_unknown_addr(self):
        o = NextUseOracle([1, 2, 3])
        assert o.next_use(99, 0) == INFINITE

    def test_position_zero_inclusive_of_future(self):
        o = NextUseOracle([4, 4])
        assert o.next_use(4, -1) == 0

    def test_length(self):
        assert NextUseOracle([1, 2, 3]).length == 3


def run_policy(cache_ways, stream, policy_factory):
    """Replay a single-set stream; return the hit count."""
    policy = policy_factory(stream)
    cache = SetAssociativeCache(1, cache_ways, policy)
    hits = 0
    for pos, addr in enumerate(stream):
        ctx = AccessContext(global_pos=pos)
        if cache.contains(addr):
            cache.touch(addr, ctx)
            hits += 1
        else:
            way = cache.choose_victim_way(0, ctx)
            if cache.blocks[0][way].valid:
                cache.evict_way(0, way, ctx)
            cache.install(0, way, addr, ctx)
    return hits


def brute_force_optimal_hits(ways, stream, allow_bypass=False):
    """Exhaustive-search OPT hit count via dynamic programming over cache
    states (tiny streams only).

    ``allow_bypass=True`` lets a miss skip allocation, which is the
    optimality model Hawkeye's OPTgen computes (never-reused fills occupy
    no cache space)."""
    from functools import lru_cache

    n = len(stream)

    @lru_cache(maxsize=None)
    def best(pos, state):
        if pos == n:
            return 0
        addr = stream[pos]
        if addr in state:
            return 1 + best(pos + 1, state)
        options = []
        if allow_bypass:
            options.append(best(pos + 1, state))
        if len(state) < ways:
            options.append(best(pos + 1, tuple(sorted(state + (addr,)))))
        else:
            options.extend(
                best(
                    pos + 1,
                    tuple(sorted(set(state) - {victim} | {addr})),
                )
                for victim in state
            )
        return max(options)

    return best(0, ())


class TestBeladyPolicy:
    def test_circular_pattern_keeps_prefix(self):
        """On (0..N-1) repeated with N = ways+1, MIN hits N-1 times per
        lap after warm-up while LRU gets zero hits."""
        stream = [i % 5 for i in range(40)]
        min_hits = run_policy(
            4, stream, lambda s: BeladyPolicy(NextUseOracle(s))
        )
        lru_hits = run_policy(4, stream, lambda s: LRUPolicy())
        assert lru_hits == 0
        assert min_hits > 20

    @given(
        stream=st.lists(
            st.integers(min_value=0, max_value=6), min_size=1, max_size=14
        )
    )
    def test_min_matches_brute_force_optimum(self, stream):
        """Belady's MIN is optimal: our implementation must achieve the
        exhaustive-search optimal hit count."""
        ways = 2
        got = run_policy(
            ways, stream, lambda s: BeladyPolicy(NextUseOracle(s))
        )
        want = brute_force_optimal_hits(ways, tuple(stream))
        assert got == want

    @given(
        stream=st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=60
        )
    )
    def test_min_never_worse_than_lru(self, stream):
        ways = 3
        min_hits = run_policy(
            ways, stream, lambda s: BeladyPolicy(NextUseOracle(s))
        )
        lru_hits = run_policy(ways, stream, lambda s: LRUPolicy())
        assert min_hits >= lru_hits
