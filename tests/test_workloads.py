"""Workload generators: patterns, profiles, mixes, multi-threaded apps."""

import pytest

from repro.workloads.mixes import (
    CORE_ADDR_STRIDE,
    heterogeneous_mixes,
    homogeneous_mix,
    homogeneous_mixes,
)
from repro.workloads.multithreaded import MT_APP_NAMES, multithreaded_workload
from repro.workloads.patterns import (
    CircularPattern,
    HotPattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StreamingPattern,
    make_pattern,
)
from repro.workloads.profiles import (
    ALL_PROFILE_NAMES,
    build_trace,
    get_profile,
)


class TestPatterns:
    def test_factory_known_kinds(self):
        for kind in ("streaming", "circular", "hot", "random", "chase",
                     "stencil"):
            p = make_pattern(kind, 16, seed=1)
            offs = [p.next_offset() for _ in range(100)]
            assert all(0 <= o < 16 for o in offs)

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_pattern("zigzag", 8)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamingPattern(0)

    def test_streaming_wraps(self):
        p = StreamingPattern(4)
        assert [p.next_offset() for _ in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_circular_is_streaming(self):
        p = CircularPattern(3)
        assert [p.next_offset() for _ in range(4)] == [0, 1, 2, 0]

    def test_chase_visits_every_block_per_lap(self):
        p = PointerChasePattern(16, seed=2)
        lap = [p.next_offset() for _ in range(16)]
        assert sorted(lap) == list(range(16))
        lap2 = [p.next_offset() for _ in range(16)]
        assert lap == lap2  # fixed permutation cycle

    def test_hot_is_skewed(self):
        p = HotPattern(100, seed=3)
        offs = [p.next_offset() for _ in range(2000)]
        low = sum(1 for o in offs if o < 50)
        assert low > 1300  # min-of-two-uniforms biases low

    def test_random_determinism(self):
        a = RandomPattern(64, seed=9)
        b = RandomPattern(64, seed=9)
        assert [a.next_offset() for _ in range(50)] == [
            b.next_offset() for _ in range(50)
        ]

    def test_stencil_touches_neighbours(self):
        p = StencilPattern(64, row=8)
        offs = [p.next_offset() for _ in range(3)]
        assert offs == [0, 8, 64 - 8]


class TestProfiles:
    def test_thirty_six_profiles(self):
        assert len(ALL_PROFILE_NAMES) == 36

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            get_profile("perlbench.1")

    def test_variants_scale_footprint(self):
        small = get_profile("mcf.1").footprint()
        mid = get_profile("mcf.2").footprint()
        large = get_profile("mcf.3").footprint()
        assert small < mid < large

    def test_build_trace_length_and_determinism(self):
        t1 = build_trace("gcc.2", 500, base_addr=1 << 20, seed=4)
        t2 = build_trace("gcc.2", 500, base_addr=1 << 20, seed=4)
        assert len(t1) == 500
        assert all(a.addr == b.addr and a.pc == b.pc
                   for a, b in zip(t1, t2))

    def test_different_seeds_differ(self):
        t1 = build_trace("gcc.2", 200, seed=1)
        t2 = build_trace("gcc.2", 200, seed=2)
        assert [r.addr for r in t1] != [r.addr for r in t2]

    def test_addresses_within_core_slab(self):
        base = 3 * CORE_ADDR_STRIDE
        t = build_trace("lbm.3", 1000, base_addr=base, seed=0)
        assert all(base <= r.addr < base + CORE_ADDR_STRIDE for r in t)

    def test_write_ratio_roughly_respected(self):
        prof = get_profile("lbm.2")  # write_ratio 0.4
        t = build_trace(prof, 4000, seed=5)
        ratio = sum(r.is_write for r in t) / len(t)
        assert abs(ratio - prof.write_ratio) < 0.05

    def test_pcs_are_stable_across_seeds(self):
        """PCs model static load instructions: same profile -> same PC
        pool regardless of data seed (so Hawkeye can learn)."""
        pcs1 = {r.pc for r in build_trace("mcf.2", 500, seed=1)}
        pcs2 = {r.pc for r in build_trace("mcf.2", 500, seed=2)}
        assert pcs1 == pcs2


class TestMixes:
    def test_homogeneous_mix_disjoint_address_spaces(self):
        wl = homogeneous_mix("gcc.1", cores=4, n_accesses=200)
        slabs = [
            {r.addr // CORE_ADDR_STRIDE for r in t} for t in wl
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert slabs[i].isdisjoint(slabs[j])

    def test_homogeneous_mixes_cover_all_profiles(self):
        mixes = homogeneous_mixes(cores=2, n_accesses=10)
        assert len(mixes) == 36
        assert {m.traces[0].name for m in mixes} == set(ALL_PROFILE_NAMES)

    def test_heterogeneous_no_within_mix_duplicates(self):
        mixes = heterogeneous_mixes(n_mixes=36, cores=8, n_accesses=10)
        for m in mixes:
            names = [t.name for t in m]
            assert len(names) == len(set(names)), m.name

    def test_heterogeneous_equal_representation(self):
        """36 mixes x 8 slots: every profile appears exactly 8 times."""
        mixes = heterogeneous_mixes(n_mixes=36, cores=8, n_accesses=10)
        from collections import Counter

        counts = Counter(t.name for m in mixes for t in m)
        assert set(counts.values()) == {8}

    def test_heterogeneous_deterministic(self):
        a = heterogeneous_mixes(n_mixes=4, cores=4, n_accesses=10, seed=3)
        b = heterogeneous_mixes(n_mixes=4, cores=4, n_accesses=10, seed=3)
        assert [[t.name for t in m] for m in a] == [
            [t.name for t in m] for m in b
        ]


class TestMultithreaded:
    def test_known_apps(self):
        assert set(MT_APP_NAMES) == {
            "canneal", "facesim", "vips", "applu", "tpce"
        }
        with pytest.raises(ValueError):
            multithreaded_workload("ferret")

    def test_threads_share_addresses(self):
        wl = multithreaded_workload("applu", cores=4, n_accesses=2000)
        sets = [{r.addr for r in t} for t in wl]
        shared = sets[0] & sets[1] & sets[2] & sets[3]
        assert shared  # genuine read/write sharing exists

    def test_threads_have_private_regions(self):
        wl = multithreaded_workload("applu", cores=2, n_accesses=2000)
        a, b = ({r.addr for r in t} for t in wl)
        assert a - b and b - a

    def test_trace_lengths(self):
        wl = multithreaded_workload("vips", cores=3, n_accesses=123)
        assert all(len(t) == 123 for t in wl)

    def test_determinism(self):
        w1 = multithreaded_workload("canneal", cores=2, n_accesses=100,
                                    seed=5)
        w2 = multithreaded_workload("canneal", cores=2, n_accesses=100,
                                    seed=5)
        for t1, t2 in zip(w1, w2):
            assert [r.addr for r in t1] == [r.addr for r in t2]
