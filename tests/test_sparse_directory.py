"""The sliced sparse directory in MESI and ZeroDEV modes."""

import pytest

from repro.coherence.sparse_directory import (
    DirectoryProtocolError,
    SparseDirectory,
)
from repro.params import DirectoryGeometry, LLCGeometry

LLC = LLCGeometry(banks=2, sets_per_bank=4, ways=4)


def make(mode="mesi", sets=2, ways=2):
    return SparseDirectory(DirectoryGeometry(sets=sets, ways=ways), LLC, mode)


class TestBasics:
    def test_lookup_miss(self):
        d = make()
        assert d.lookup(0x40) is None

    def test_allocate_then_lookup(self):
        d = make()
        entry, displaced = d.allocate(0x40)
        assert displaced is None
        entry.add_sharer(1)
        found = d.lookup(0x40)
        assert found is entry
        assert found.has_sharer(1)

    def test_double_allocate_rejected(self):
        d = make()
        d.allocate(0x40)
        with pytest.raises(LookupError):
            d.allocate(0x40)

    def test_free(self):
        d = make()
        d.allocate(0x40)
        d.free(0x40)
        assert d.lookup(0x40) is None
        assert d.occupancy() == 0

    def test_double_free_is_a_protocol_error(self):
        """Regression: freeing an untracked address used to raise a bare
        ``KeyError('<addr>')``; it must now name the slice and address."""
        d = make()
        d.allocate(0x40)
        d.free(0x40)
        with pytest.raises(DirectoryProtocolError) as exc:
            d.free(0x40)
        message = str(exc.value)
        assert "dir[" in message  # the slice name
        assert "0x40" in message
        assert "double free" in message

    def test_free_of_never_allocated_is_a_protocol_error(self):
        d = make()
        with pytest.raises(DirectoryProtocolError, match="never allocated"):
            d.free(0x80)

    def test_protocol_error_is_a_lookup_error(self):
        """Callers catching the historical LookupError keep working."""
        assert issubclass(DirectoryProtocolError, LookupError)

    def test_peek_does_not_touch_nru(self):
        """peek() exists for the invariant auditor: it must not perturb
        the NRU replacement state the way lookup() does."""
        d = make()
        entry, _ = d.allocate(0x40)
        entry.nru = False
        assert d.peek(0x40) is entry
        assert entry.nru is False
        assert d.lookup(0x40) is entry
        assert entry.nru is True

    def test_peek_miss(self):
        assert make().peek(0x40) is None

    def test_peek_finds_spilled_entry(self):
        d = make(mode="zerodev", sets=1, ways=1)
        d.allocate(0)
        d.allocate(2)  # spills 0
        assert d.peek(0).addr == 0

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            make(mode="qpi")

    def test_slicing_by_bank(self):
        d = make()
        d.allocate(0)  # bank 0
        d.allocate(1)  # bank 1
        assert d.slices[0].occupancy() == 1
        assert d.slices[1].occupancy() == 1


def fill_one_set(d, count):
    """Allocate ``count`` addresses that land in the same slice set."""
    allocated = []
    target = None
    addr = 0
    while len(allocated) < count:
        bank = LLC.bank_index(addr)
        set_idx = d.geometry.set_index(addr, LLC.banks)
        if bank == 0 and (target is None or set_idx == target):
            target = set_idx
            if d.lookup(addr) is None:
                try:
                    entry, displaced = d.allocate(addr)
                except LookupError:
                    pass
                else:
                    allocated.append((addr, entry, displaced))
        addr += 2  # stay in bank 0
    return allocated


class TestEviction:
    def test_mesi_eviction_returns_displaced(self):
        d = make(mode="mesi", sets=1, ways=2)
        outcomes = fill_one_set(d, 3)
        displaced = [o[2] for o in outcomes if o[2] is not None]
        assert len(displaced) == 1
        assert displaced[0].valid

    def test_displaced_preserves_state(self):
        d = make(mode="mesi", sets=1, ways=1)
        e1, _ = d.allocate(0)
        e1.add_sharer(3)
        e1.set_relocation(1, 2, 3)
        _e2, displaced = d.allocate(2)
        assert displaced.addr == 0
        assert displaced.has_sharer(3)
        assert displaced.relocated
        assert (displaced.reloc_bank, displaced.reloc_set,
                displaced.reloc_way) == (1, 2, 3)

    def test_nru_prefers_not_recent(self):
        d = make(mode="mesi", sets=1, ways=2)
        e0, _ = d.allocate(0)
        e2, _ = d.allocate(2)
        # touch entry for addr 2 (lookup sets NRU); 0's bit gets cleared on
        # the reset pass, so 0 is the victim
        d.lookup(0)
        d.lookup(2)
        # force a reset then re-reference only addr 2
        for e in d.slices[0].sets[0]:
            e.nru = False
        d.lookup(2)
        _e, displaced = d.allocate(4)
        assert displaced.addr == 0


class TestZeroDEV:
    def test_spill_instead_of_evict(self):
        d = make(mode="zerodev", sets=1, ways=1)
        e1, _ = d.allocate(0)
        e1.add_sharer(2)
        _e2, displaced = d.allocate(2)
        assert displaced is None  # caller never back-invalidates
        assert d.spill_count == 1
        spilled = d.lookup(0)
        assert spilled is not None and spilled.has_sharer(2)

    def test_spilled_entry_freed(self):
        d = make(mode="zerodev", sets=1, ways=1)
        d.allocate(0)
        d.allocate(2)  # spills 0
        d.free(0)
        assert d.lookup(0) is None

    def test_occupancy_includes_spill(self):
        d = make(mode="zerodev", sets=1, ways=1)
        d.allocate(0)
        d.allocate(2)
        assert d.occupancy() == 2
        assert len(list(d.iter_valid())) == 2
