"""Differential oracle tests: the fast engine must be bit-identical.

Every cell of the supported scheme x policy grid runs through both the
object engine and the array-state engine; any field of the result --
per-core counters, aggregate statistics, cycle count, energy ledger,
scheme extras, audit outcome, telemetry stream -- that differs is a
failure.  A property-based layer then throws randomly generated traces
(shared blocks, mixed read/write, irregular gaps) at the same assertion.

The property layer uses Hypothesis when available and falls back to a
seeded ``random.Random`` sweep otherwise, so the suite runs in minimal
environments without any extra installs.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.differential import (
    GRID_POLICIES,
    GRID_SCHEMES,
    DiffReport,
    Divergence,
    diff_grid,
    diff_recipe,
    grid_recipes,
    summarize,
)
from repro.sim.parallel import make_recipe
from repro.sim.trace import CoreTrace, TraceRecord, Workload

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # minimal environment: seeded-random fallback below
    HAVE_HYPOTHESIS = False

CORES = 4
ACCESSES = 700


@pytest.fixture(scope="module")
def workloads():
    from repro.workloads import homogeneous_mix

    return [
        homogeneous_mix("bwaves.1", cores=CORES, n_accesses=ACCESSES),
        homogeneous_mix("xalancbmk.2", cores=CORES, n_accesses=ACCESSES),
    ]


def _cell(wl, scheme, policy, directory_mode="mesi", **kw):
    recipe = make_recipe(
        wl,
        scheme,
        policy=policy,
        l2="256KB",
        cores=CORES,
        directory_mode=directory_mode,
        audit="end,collect",
        **kw,
    )
    return diff_recipe(recipe, keep_results=True)


# ---------------------------------------------------------------------------
# the scheme x policy x workload grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", GRID_POLICIES)
@pytest.mark.parametrize("scheme", GRID_SCHEMES)
def test_grid_cell_identical(workloads, scheme, policy):
    for wl in workloads:
        report = _cell(wl, scheme, policy)
        assert report.ok, report.summary()


@pytest.mark.parametrize("scheme", ("inclusive", "ziv:notinprc"))
def test_zerodev_directory_identical(workloads, scheme):
    report = _cell(workloads[0], scheme, "lru", directory_mode="zerodev")
    assert report.ok, report.summary()


def test_audits_run_and_stay_clean(workloads):
    """Both engines finish every grid cell in an invariant-clean state."""
    report = _cell(workloads[0], "ziv:lrunotinprc", "srrip")
    assert report.ok, report.summary()
    for result in (report.object_result, report.fast_result):
        assert result.audit is not None
        assert result.audit.ok
        assert result.audit.violations == []
        assert result.audit.sweeps >= 1


def test_telemetry_streams_identical(workloads):
    report = _cell(
        workloads[1], "ziv:notinprc", "nru", telemetry="200,events=all"
    )
    assert report.ok, report.summary()
    fast = report.fast_result.telemetry
    assert fast is not None
    assert len(fast.series.samples) > 0
    assert report.object_result.telemetry.events == fast.events


# ---------------------------------------------------------------------------
# harness plumbing
# ---------------------------------------------------------------------------


def test_grid_recipes_cover_all_axes(workloads):
    recipes = grid_recipes(workloads[:1])
    assert len(recipes) == len(GRID_SCHEMES) * len(GRID_POLICIES) * 2
    assert {r.scheme for r in recipes} == set(GRID_SCHEMES)
    assert {r.policy for r in recipes} == set(GRID_POLICIES)
    assert {r.config.directory_mode for r in recipes} == {"mesi", "zerodev"}
    # audit baked into every cell's config (and therefore its cache key)
    assert all(r.config.audit.enabled for r in recipes)


def test_diff_grid_smoke(workloads):
    reports = diff_grid(
        workloads[:1],
        schemes=("inclusive",),
        policies=("lru", "srrip"),
        directory_modes=("mesi",),
        cores=CORES,
    )
    assert len(reports) == 2
    assert all(r.ok for r in reports)
    assert summarize(reports).endswith("0 diverging")


def test_report_summary_lists_divergences():
    report = DiffReport(
        scheme="inclusive",
        policy="lru",
        workload="wl",
        directory_mode="mesi",
        divergences=[Divergence("stats.llc_hits", "1", "2")],
    )
    assert not report.ok
    text = report.summary()
    assert "1 divergence(s)" in text
    assert "stats.llc_hits: object=1 fast=2" in text


# ---------------------------------------------------------------------------
# property-based layer: random traces
# ---------------------------------------------------------------------------


def random_workload(seed: int, cores: int = CORES, n: int = 350) -> Workload:
    """A workload of shared-pool random traces.

    All cores draw block addresses from one small pool so the runs
    exercise cross-core sharing: directory forwards, eviction notices,
    write-back merging and (for inclusive designs) back-invalidation."""
    rng = random.Random(seed)
    blocks = rng.choice((48, 96, 160))
    traces = []
    for core in range(cores):
        recs = [
            TraceRecord(
                gap=rng.randrange(4),
                addr=rng.randrange(blocks) * 64,
                is_write=rng.random() < 0.3,
                pc=rng.randrange(32) * 4,
            )
            for _ in range(n)
        ]
        traces.append(CoreTrace(recs, name=f"rand{core}"))
    return Workload(traces, name=f"rand-s{seed}-b{blocks}")


def _assert_random_cell(seed, scheme, policy, directory_mode):
    report = _cell(
        random_workload(seed), scheme, policy, directory_mode=directory_mode
    )
    assert report.ok, report.summary()
    for result in (report.object_result, report.fast_result):
        assert result.audit.violations == []


if HAVE_HYPOTHESIS:

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        scheme=st.sampled_from(GRID_SCHEMES),
        policy=st.sampled_from(GRID_POLICIES),
        directory_mode=st.sampled_from(("mesi", "zerodev")),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_traces_identical(seed, scheme, policy, directory_mode):
        _assert_random_cell(seed, scheme, policy, directory_mode)

else:

    @pytest.mark.parametrize("seed", range(12))
    def test_random_traces_identical(seed):
        rng = random.Random(seed * 7919 + 1)
        _assert_random_cell(
            seed,
            rng.choice(GRID_SCHEMES),
            rng.choice(GRID_POLICIES),
            rng.choice(("mesi", "zerodev")),
        )
