"""Speedup metrics and normalisation."""

import pytest

from repro.sim.engine import SimResult
from repro.sim.metrics import (
    geomean,
    mix_speedup,
    normalized_counts,
    normalized_speedups,
    per_core_speedups,
    speedup_summary,
    weighted_speedup,
)
from repro.sim.stats import SimStats


def result(core_cycles, core_instructions=None, llc_misses=0):
    stats = SimStats.for_cores(len(core_cycles))
    for cs, cyc in zip(stats.cores, core_cycles):
        cs.cycles = cyc
        cs.instructions = 1000
    if core_instructions:
        for cs, inst in zip(stats.cores, core_instructions):
            cs.instructions = inst
    stats.llc_misses = llc_misses
    return SimResult(stats=stats, cycles=max(core_cycles), scheme="s",
                     policy="p", workload="w")


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0]) == pytest.approx(4.0)


class TestSpeedups:
    def test_per_core(self):
        base = result([1000, 2000])
        cand = result([500, 2000])
        assert per_core_speedups(base, cand) == [2.0, 1.0]

    def test_mix_speedup_is_geomean(self):
        base = result([1000, 1000])
        cand = result([500, 2000])
        assert mix_speedup(base, cand) == pytest.approx(1.0)

    def test_weighted_speedup(self):
        base = result([1000, 1000])
        cand = result([500, 1000])
        assert weighted_speedup(base, cand) == pytest.approx(3.0)

    def test_normalized_speedups_pairing(self):
        bases = [result([100]), result([200])]
        cands = [result([50]), result([400])]
        assert normalized_speedups(bases, cands) == [2.0, 0.5]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            normalized_speedups([result([1])], [])

    def test_summary(self):
        s = speedup_summary([1.0, 2.0, 4.0])
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.0)

    def test_summary_empty(self):
        assert speedup_summary([])["mean"] == 0.0


class TestNormalizedCounts:
    def test_llc_misses_ratio(self):
        bases = [result([1], llc_misses=100)]
        cands = [result([1], llc_misses=60)]
        assert normalized_counts(bases, cands, "llc_misses") == 0.6

    def test_inclusion_victims_counter(self):
        b = result([1])
        b.stats.inclusion_victims_llc = 10
        c = result([1])
        c.stats.inclusion_victims_llc = 5
        assert normalized_counts([b], [c], "inclusion_victims") == 0.5
