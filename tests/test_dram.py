"""The event-cost DRAM model."""

from hypothesis import given, strategies as st

from repro.mem.dram import DRAMModel
from repro.params import DRAMParams


def small_params(**kw):
    defaults = dict(channels=1, banks_per_channel=2, row_bits=2)
    defaults.update(kw)
    return DRAMParams(**defaults)


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        d = DRAMModel(small_params())
        lat = d.access(0, cycle=0)
        assert lat == d.params.row_miss_latency
        assert d.row_misses == 1

    def test_same_row_hit(self):
        d = DRAMModel(small_params())
        d.access(0, cycle=0)
        lat = d.access(2, cycle=1000)  # same channel/bank/row (row_bits=2)
        assert lat == d.params.row_hit_latency
        assert d.row_hits == 1

    def test_row_conflict(self):
        d = DRAMModel(small_params())
        p = d.params
        d.access(0, cycle=0)
        # same bank, different row: flip a bit above bank+row-buffer bits
        far = 1 << (1 + p.row_bits)
        lat = d.access(far, cycle=1000)
        assert lat == p.row_conflict_latency
        assert d.row_conflicts == 1


class TestBankTiming:
    def test_busy_bank_queues(self):
        d = DRAMModel(small_params())
        d.access(0, cycle=0)
        lat = d.access(2, cycle=1)  # same bank, 1 cycle later
        wait = d.params.bank_busy - 1
        assert lat == wait + d.params.row_hit_latency
        assert d.total_wait == wait

    def test_different_banks_overlap(self):
        d = DRAMModel(small_params())
        d.access(0, cycle=0)
        # address 1 maps to bank 1 (channels=1): no wait even at cycle 0
        d.access(1, cycle=0)
        assert d.total_wait == 0

    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=1023), min_size=1, max_size=100
        )
    )
    def test_latency_always_positive_and_monotone_bank_time(self, addrs):
        d = DRAMModel(small_params())
        cycle = 0
        for a in addrs:
            lat = d.access(a, cycle)
            assert lat >= d.params.row_hit_latency
            cycle += 10
        assert d.accesses == len(addrs)


class TestCounters:
    def test_reads_writes_split(self):
        d = DRAMModel(small_params())
        d.access(0, 0)
        d.write_back(64, 0)
        assert d.reads == 1 and d.writes == 1

    def test_row_hit_rate(self):
        d = DRAMModel(small_params())
        assert d.row_hit_rate() == 0.0
        d.access(0, 0)
        d.access(2, 1000)
        assert 0.0 < d.row_hit_rate() < 1.0
