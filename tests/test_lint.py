"""The static-analysis pass: every rule fires on a violating fixture,
stays quiet on a clean one, suppressions work, JSON round-trips, and the
shipped tree itself lints clean."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.lint import (
    Finding,
    all_rules,
    findings_from_json,
    findings_to_json,
    get_rule,
    lint_paths,
)
from repro.lint.model import Finding as ModelFinding
from repro.lint.project import LintError, Project
from repro.lint.runner import PARSE_ERROR_RULE, format_findings
from repro.lint.suppress import suppressions_for_line

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

EXPECTED_RULES = (
    "cache-key-completeness",
    "counter-discipline",
    "determinism",
    "event-schema-sync",
    "fork-safety",
    "ledger-schema-sync",
    "lock-discipline",
    "lock-order",
    "telemetry-guard",
)


def lint_tree(tmp_path, tree: dict[str, str], rules=None) -> list[Finding]:
    """Write a fixture tree and lint it with tmp_path as the root."""
    for rel, content in tree.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(content)
    return lint_paths([str(tmp_path)], rule_ids=rules, root=str(tmp_path))


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert tuple(r.rule_id for r in all_rules()) == EXPECTED_RULES

    def test_every_rule_has_description(self):
        for rule in all_rules():
            assert rule.description

    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError, match="unknown rule id"):
            get_rule("no-such-rule")


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_unseeded_module_random_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/noise.py": (
                "import random\n"
                "def jitter():\n"
                "    return random.random()\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "unseeded RNG" in findings[0].message
        assert findings[0].line == 3

    def test_unseeded_random_instance_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/policy.py": (
                "import random\n"
                "rng = random.Random()\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "seed" in findings[0].message

    def test_wall_clock_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/clock.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "wall-clock" in findings[0].message

    def test_set_iteration_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "schemes/order.py": (
                "def levels(props):\n"
                "    return [p for p in set(props)]\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_seeded_rng_and_sorted_sets_stay_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/good.py": (
                "import random\n"
                "def pick(seed, props):\n"
                "    rng = random.Random(seed)\n"
                "    for p in sorted(set(props)):\n"
                "        rng.random()\n"
            ),
        })
        assert findings == []

    def test_out_of_scope_dirs_are_exempt(self, tmp_path):
        # Workload generators may use wall clocks / module randomness:
        # they run outside the simulator scope.
        findings = lint_tree(tmp_path, {
            "workloads/gen.py": (
                "import random, time\n"
                "def f():\n"
                "    return random.random() + time.time()\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------------------
# cache-key completeness
# ---------------------------------------------------------------------------

_PARAMS_OK = """\
from dataclasses import dataclass, field

@dataclass(frozen=True)
class AuditParams:
    enabled: bool = False

@dataclass(frozen=True)
class SystemConfig:
    cores: int
    audit: AuditParams = field(default_factory=AuditParams)
    directory_mode: str = "mesi"
"""

_CONFIG_IO_OK = """\
_SECTIONS = {
    "audit": AuditParams,
}

def config_from_dict(data):
    known = {"cores", "directory_mode"} | set(_SECTIONS)
    return known
"""


class TestCacheKeyCompleteness:
    def test_complete_round_trip_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": _CONFIG_IO_OK,
        })
        assert findings == []

    def test_annotated_sections_registry_is_found(self, tmp_path):
        # config_io annotates `_SECTIONS: dict[str, type[Any]] = {...}`;
        # the rule must read AnnAssign bindings too.
        config_io = _CONFIG_IO_OK.replace(
            "_SECTIONS = {", "_SECTIONS: dict[str, type] = {"
        )
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": config_io,
        })
        assert findings == []

    def test_unregistered_section_fires(self, tmp_path):
        params = _PARAMS_OK.replace(
            "class SystemConfig:",
            "class TelemetryParams:\n"
            "    interval: int = 1000\n\n"
            "@dataclass(frozen=True)\n"
            "class SystemConfig:",
        ).replace(
            "audit: AuditParams = field(default_factory=AuditParams)",
            "audit: AuditParams = field(default_factory=AuditParams)\n"
            "    telemetry: TelemetryParams = "
            "field(default_factory=TelemetryParams)",
        )
        findings = lint_tree(tmp_path, {
            "params.py": params,
            "config_io.py": _CONFIG_IO_OK,
        })
        assert rule_ids(findings) == ["cache-key-completeness"]
        assert "'telemetry'" in findings[0].message
        assert "cache key" in findings[0].message
        assert findings[0].file == "params.py"

    def test_missing_scalar_key_fires(self, tmp_path):
        config_io = _CONFIG_IO_OK.replace('"cores", "directory_mode"',
                                          '"cores"')
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": config_io,
        })
        assert rule_ids(findings) == ["cache-key-completeness"]
        assert "'directory_mode'" in findings[0].message

    def test_wrong_section_class_fires(self, tmp_path):
        config_io = _CONFIG_IO_OK.replace(
            '"audit": AuditParams', '"audit": CacheGeometry'
        )
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": config_io,
        })
        assert rule_ids(findings) == ["cache-key-completeness"]
        assert "CacheGeometry" in findings[0].message

    def test_stale_entries_fire_both_ways(self, tmp_path):
        config_io = _CONFIG_IO_OK.replace(
            '"audit": AuditParams,',
            '"audit": AuditParams,\n    "legacy": AuditParams,',
        ).replace('"cores", "directory_mode"',
                  '"cores", "directory_mode", "ghost"')
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": config_io,
        })
        messages = " ".join(f.message for f in findings)
        assert rule_ids(findings) == ["cache-key-completeness"] * 2
        assert "'legacy'" in messages and "'ghost'" in messages


# ---------------------------------------------------------------------------
# counter discipline
# ---------------------------------------------------------------------------

_STATS_FIXTURE = """\
from dataclasses import dataclass, field

@dataclass(slots=True)
class CoreStats:
    accesses: int = 0
    l1_hits: int = 0

@dataclass(slots=True)
class SimStats:
    cores: list = field(default_factory=list)
    llc_hits: int = 0
    llc_misses: int = 0

    @property
    def total_accesses(self):
        return sum(c.accesses for c in self.cores)
"""


class TestCounterDiscipline:
    def test_declared_counters_stay_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "hierarchy/cmp.py": (
                "class H:\n"
                "    def access(self, core):\n"
                "        self.stats.llc_hits += 1\n"
                "        cs = self.stats.cores[core]\n"
                "        cs.accesses += 1\n"
            ),
        })
        assert findings == []

    def test_typoed_counter_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "hierarchy/cmp.py": (
                "class H:\n"
                "    def access(self):\n"
                "        self.stats.llc_hitz += 1\n"
            ),
        })
        assert rule_ids(findings) == ["counter-discipline"]
        assert "'llc_hitz'" in findings[0].message

    def test_hoisted_alias_chain_is_tracked(self, tmp_path):
        # The engine idiom: stats -> cores list -> per-core local.
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "sim/engine.py": (
                "def run(h, core):\n"
                "    core_stats = h.stats.cores\n"
                "    cs = core_stats[core]\n"
                "    cs.l1_hitz += 1\n"
            ),
        })
        assert rule_ids(findings) == ["counter-discipline"]
        assert "'l1_hitz'" in findings[0].message
        assert findings[0].line == 4

    def test_property_increment_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "sim/engine.py": (
                "def run(stats):\n"
                "    stats.total_accesses += 1\n"
            ),
        })
        assert rule_ids(findings) == ["counter-discipline"]
        assert "read-only" in findings[0].message

    def test_non_stats_objects_are_ignored(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "sim/energy.py": (
                "def tally(energy):\n"
                "    energy.whatever_counter += 1\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------------------
# scope: the array-state fast engine
# ---------------------------------------------------------------------------


class TestFastEngineScope:
    """``repro.sim.fast`` feeds cached results exactly like the object
    engine, so every scoped rule must cover it: fixtures under
    ``sim/fast/`` fire, and the shipped package itself lints clean."""

    def test_fast_is_in_simulator_scope(self):
        from repro.lint.rules.scope import SIMULATOR_SCOPE

        assert "sim" in SIMULATOR_SCOPE
        assert "fast" in SIMULATOR_SCOPE

    def test_determinism_covers_fast_package(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/fast/engine.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.perf_counter()\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "wall-clock" in findings[0].message

    def test_counter_discipline_covers_fast_package(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "sim/fast/engine.py": (
                "class FastHierarchy:\n"
                "    def _flush(self):\n"
                "        self.stats.llc_hitz += 1\n"
            ),
        })
        assert rule_ids(findings) == ["counter-discipline"]
        assert "'llc_hitz'" in findings[0].message

    def test_shipped_fast_package_is_clean(self, monkeypatch):
        """The fast engine and the differential harness ship without a
        single finding (the full tree is linted so cross-file rules see
        the schema registry and docs)."""
        monkeypatch.chdir(REPO_ROOT)
        findings = lint_paths(["src/repro", "docs"])
        fast = [
            f for f in findings
            if "sim/fast" in f.file or f.file.endswith("differential.py")
        ]
        assert fast == []
        assert findings == []


# ---------------------------------------------------------------------------
# telemetry guarding
# ---------------------------------------------------------------------------


class TestTelemetryGuard:
    def test_guarded_emit_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "hierarchy/cmp.py": (
                "class H:\n"
                "    def kill(self, addr):\n"
                "        if self.telemetry is not None:\n"
                "            self.telemetry.emit('back_invalidation',\n"
                "                                addr=addr)\n"
                "    def move(self, addr):\n"
                "        telemetry = self.telemetry\n"
                "        if telemetry is not None:\n"
                "            telemetry.emit('relocation', addr=addr)\n"
            ),
        })
        assert findings == []

    def test_unguarded_emit_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/ziv.py": (
                "class Scheme:\n"
                "    def relocate(self, addr):\n"
                "        self.cmp.telemetry.emit('relocation', addr=addr)\n"
            ),
        })
        assert rule_ids(findings) == ["telemetry-guard"]
        assert "one predicate check" in findings[0].message

    def test_emit_in_else_branch_of_guard_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/char.py": (
                "def f(self):\n"
                "    if self.telemetry is not None:\n"
                "        pass\n"
                "    else:\n"
                "        self.telemetry.emit('tau_reset', d=1)\n"
            ),
        })
        assert rule_ids(findings) == ["telemetry-guard"]

    def test_guard_does_not_cross_function_boundary(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/char.py": (
                "def f(self):\n"
                "    if self.telemetry is not None:\n"
                "        def emit_later():\n"
                "            self.telemetry.emit('tau_reset', d=1)\n"
                "        emit_later()\n"
            ),
        })
        assert rule_ids(findings) == ["telemetry-guard"]

    def test_non_telemetry_emit_is_ignored(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/bus.py": (
                "def f(signal):\n"
                "    signal.emit('edge')\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------------------
# event-schema sync
# ---------------------------------------------------------------------------

_TELEMETRY_FIXTURE = """\
EVENT_KINDS = {
    "relocation": ("relocation", "info"),
    "tau_reset": ("char", "debug"),
}
"""

_DOC_FIXTURE = """\
# Observability

| Kind | Category | Severity | Payload |
|---|---|---|---|
| `relocation` | relocation | info | `addr` |
| `tau_reset` | char | debug | `d` |
"""

_EMITTER_FIXTURE = """\
def move(self, addr, cross_bank):
    telemetry = self.cmp.telemetry
    if telemetry is not None:
        kind = "tau_reset" if cross_bank else "relocation"
        telemetry.emit(kind, addr=addr)
"""


class TestEventSchemaSync:
    def fixture(self) -> dict[str, str]:
        return {
            "sim/telemetry.py": _TELEMETRY_FIXTURE,
            "core/ziv.py": _EMITTER_FIXTURE,
            "docs/OBSERVABILITY.md": _DOC_FIXTURE,
        }

    def test_synchronised_schema_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, self.fixture())
        assert findings == []

    def test_unknown_emitted_kind_fires(self, tmp_path):
        tree = self.fixture()
        tree["core/ziv.py"] = _EMITTER_FIXTURE.replace(
            '"tau_reset" if', '"tau_rset" if'
        )
        findings = lint_tree(tmp_path, tree,
                             rules=["event-schema-sync"])
        messages = " ".join(f.message for f in findings)
        assert "'tau_rset'" in messages
        assert any(f.file == "core/ziv.py" for f in findings)

    def test_undocumented_kind_fires(self, tmp_path):
        tree = self.fixture()
        tree["docs/OBSERVABILITY.md"] = "\n".join(
            line for line in _DOC_FIXTURE.splitlines()
            if "tau_reset" not in line
        )
        findings = lint_tree(tmp_path, tree)
        assert rule_ids(findings) == ["event-schema-sync"]
        assert "missing from the kind table" in findings[0].message

    def test_ghost_doc_row_fires(self, tmp_path):
        tree = self.fixture()
        tree["docs/OBSERVABILITY.md"] += (
            "| `warp_drive` | relocation | info | `addr` |\n"
        )
        findings = lint_tree(tmp_path, tree)
        assert rule_ids(findings) == ["event-schema-sync"]
        assert "ghost row" in findings[0].message
        assert findings[0].file == "docs/OBSERVABILITY.md"

    def test_category_mismatch_fires(self, tmp_path):
        tree = self.fixture()
        tree["docs/OBSERVABILITY.md"] = _DOC_FIXTURE.replace(
            "| `tau_reset` | char | debug |", "| `tau_reset` | char | info |"
        )
        findings = lint_tree(tmp_path, tree)
        assert rule_ids(findings) == ["event-schema-sync"]
        assert "declares (char, debug)" in findings[0].message

    def test_dead_schema_entry_fires(self, tmp_path):
        tree = self.fixture()
        tree["sim/telemetry.py"] = _TELEMETRY_FIXTURE.replace(
            '    "tau_reset": ("char", "debug"),',
            '    "tau_reset": ("char", "debug"),\n'
            '    "never_emitted": ("char", "debug"),',
        )
        tree["docs/OBSERVABILITY.md"] += (
            "| `never_emitted` | char | debug | - |\n"
        )
        findings = lint_tree(tmp_path, tree)
        assert rule_ids(findings) == ["event-schema-sync"]
        assert "no simulator code emits" in findings[0].message

    def test_unresolvable_kind_fires(self, tmp_path):
        tree = self.fixture()
        tree["core/ziv.py"] = (
            "def move(self, kinds, addr):\n"
            "    telemetry = self.cmp.telemetry\n"
            "    if telemetry is not None:\n"
            "        telemetry.emit(kinds[0], addr=addr)\n"
        )
        findings = lint_tree(tmp_path, tree)
        relevant = [f for f in findings
                    if "not statically resolvable" in f.message]
        assert len(relevant) == 1


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    BAD = (
        "import time\n"
        "def stamp():\n"
        "    return time.time(){comment}\n"
    )

    def test_matching_rule_is_suppressed(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/clock.py": self.BAD.format(
                comment="  # repro-lint: ignore[determinism]"
            ),
        })
        assert findings == []

    def test_bare_ignore_suppresses_everything(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/clock.py": self.BAD.format(
                comment="  # repro-lint: ignore"
            ),
        })
        assert findings == []

    def test_other_rule_ignore_does_not_suppress(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/clock.py": self.BAD.format(
                comment="  # repro-lint: ignore[telemetry-guard]"
            ),
        })
        assert rule_ids(findings) == ["determinism"]

    def test_suppression_is_per_line(self, tmp_path):
        source = (
            "import time\n"
            "a = time.time()  # repro-lint: ignore[determinism]\n"
            "b = time.time()\n"
        )
        findings = lint_tree(tmp_path, {"sim/clock.py": source})
        assert [f.line for f in findings] == [3]

    def test_parser_accepts_multiple_rules(self):
        ids = suppressions_for_line(
            "x = 1  # repro-lint: ignore[determinism, counter-discipline]"
        )
        assert ids == frozenset(("determinism", "counter-discipline"))


# ---------------------------------------------------------------------------
# Output formats and model round-trip
# ---------------------------------------------------------------------------


class TestOutput:
    def sample(self) -> list[Finding]:
        return [
            Finding(file="src/a.py", line=3, rule_id="determinism",
                    message="m1"),
            Finding(file="src/b.py", line=1, rule_id="telemetry-guard",
                    message="m2"),
        ]

    def test_json_round_trip(self):
        findings = self.sample()
        assert findings_from_json(findings_to_json(findings)) == findings

    def test_json_document_shape(self):
        doc = json.loads(findings_to_json(self.sample()))
        assert doc["count"] == 2
        assert {f["rule_id"] for f in doc["findings"]} == {
            "determinism", "telemetry-guard"
        }

    def test_human_format(self):
        text = format_findings(self.sample(), "human")
        assert "src/a.py:3: [determinism] m1" in text
        assert "2 finding(s)" in text
        assert format_findings([], "human") == "repro lint: clean"

    def test_finding_model_reexport(self):
        assert Finding is ModelFinding

    def test_parse_error_becomes_finding(self, tmp_path):
        findings = lint_tree(tmp_path, {"sim/broken.py": "def f(:\n"})
        assert rule_ids(findings) == [PARSE_ERROR_RULE]


# ---------------------------------------------------------------------------
# CLI + the shipped tree
# ---------------------------------------------------------------------------


class TestCli:
    def test_lint_subcommand_parses(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["lint", "--format", "json"])
        assert args.command == "lint"
        assert args.format == "json"

    def test_list_rules(self, capsys, monkeypatch):
        from repro.__main__ import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out

    def test_unknown_rule_is_usage_error(self, capsys, monkeypatch,
                                         tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "x.py").write_text("pass\n")
        assert main(["lint", "x.py", "--rules", "bogus"]) == 2

    def test_violations_exit_nonzero(self, capsys, monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text(
            "import time\nT = time.time()\n"
        )
        assert main(["lint", "sim"]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out

    def test_shipped_tree_is_clean(self, capsys, monkeypatch):
        """The meta-test: `repro lint` exits 0 on this repository."""
        from repro.__main__ import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_shipped_tree_json_round_trips(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        findings = lint_paths(["src/repro", "docs"])
        assert findings_from_json(findings_to_json(findings)) == findings
        assert findings == []


# ---------------------------------------------------------------------------
# Concurrency contracts: lock-discipline
# ---------------------------------------------------------------------------

_MGR_HEADER = (
    "import threading\n"
    "class Manager:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._jobs = {}  # repro-lint: guarded-by[_lock]\n"
)


class TestLockDiscipline:
    def test_unguarded_write_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": _MGR_HEADER + (
                "    def drop(self, k):\n"
                "        self._jobs.pop(k, None)\n"
            ),
        }, rules=["lock-discipline"])
        assert any("unguarded write to '_jobs'" in f.message
                   for f in findings)

    def test_locked_access_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": _MGR_HEADER + (
                "    def drop(self, k):\n"
                "        with self._lock:\n"
                "            self._jobs.pop(k, None)\n"
            ),
        }, rules=["lock-discipline"])
        assert findings == []

    def test_condition_aliases_its_lock(self, tmp_path):
        """`with self._cond:` counts as holding the underlying lock."""
        findings = lint_tree(tmp_path, {
            "service/mgr.py": (
                "import threading\n"
                "class Manager:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._cond = threading.Condition(self._lock)\n"
                "        self._n = 0  # repro-lint: guarded-by[_lock]\n"
                "    def bump(self):\n"
                "        with self._cond:\n"
                "            self._n += 1\n"
            ),
        }, rules=["lock-discipline"])
        assert findings == []

    def test_holds_annotation_satisfies_the_guard(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": _MGR_HEADER + (
                "    def _drop(self, k):  # repro-lint: holds[_lock]\n"
                "        self._jobs.pop(k, None)\n"
            ),
        }, rules=["lock-discipline"])
        assert findings == []

    def test_stale_declaration_fires(self, tmp_path):
        """declared-but-never-guarded: dead contract comments rot."""
        findings = lint_tree(tmp_path, {
            "service/mgr.py": (
                "import threading\n"
                "class Manager:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._ghost = None  # repro-lint: guarded-by[_lock]\n"
                "    def noop(self):\n"
                "        with self._lock:\n"
                "            pass\n"
            ),
        }, rules=["lock-discipline"])
        assert len(findings) == 1
        assert "never accessed outside __init__" in findings[0].message
        assert findings[0].line == 5

    def test_guarded_but_never_declared_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": (
                "import threading\n"
                "class Manager:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n"
                "    def add(self, x):\n"
                "        with self._lock:\n"
                "            self._items.append(x)\n"
            ),
        }, rules=["lock-discipline"])
        assert len(findings) == 1
        assert "guarded-by[_lock]" in findings[0].message
        assert "carries no declaration" in findings[0].message

    def test_declaration_naming_unknown_lock_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": (
                "import threading\n"
                "class Manager:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._x = 0  # repro-lint: guarded-by[_mutex]\n"
                "    def get(self):\n"
                "        with self._lock:\n"
                "            return self._x + 1\n"
            ),
        }, rules=["lock-discipline"])
        assert any("no lock named '_mutex'" in f.message for f in findings)

    def test_race_signal_on_mixed_access(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": (
                "import threading\n"
                "class Manager:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._n = 0\n"
                "    def locked_bump(self):\n"
                "        with self._lock:\n"
                "            self._n += 1\n"
                "    def racy_reset(self):\n"
                "        self._n = 0\n"
            ),
        }, rules=["lock-discipline"])
        assert len(findings) == 1
        assert "race signal" in findings[0].message
        assert findings[0].line == 10

    def test_read_only_config_needs_no_declaration(self, tmp_path):
        """Attributes never written after __init__ are
        immutable-after-publish even when reads happen under a lock."""
        findings = lint_tree(tmp_path, {
            "service/mgr.py": (
                "import threading\n"
                "class Manager:\n"
                "    def __init__(self, mode):\n"
                "        self._lock = threading.Lock()\n"
                "        self.mode = mode\n"
                "    def describe(self):\n"
                "        with self._lock:\n"
                "            return self.mode + '!'\n"
            ),
        }, rules=["lock-discipline"])
        assert findings == []

    def test_return_escape_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": _MGR_HEADER + (
                "    def peek(self):\n"
                "        with self._lock:\n"
                "            return self._jobs\n"
            ),
        }, rules=["lock-discipline"])
        assert any("returns guarded attribute '_jobs'" in f.message
                   for f in findings)

    def test_return_from_holds_helper_is_the_contract(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": _MGR_HEADER + (
                "    def _jobs_ref(self):  # repro-lint: holds[_lock]\n"
                "        return self._jobs\n"
            ),
        }, rules=["lock-discipline"])
        assert findings == []

    def test_yield_inside_critical_section_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": (
                "import threading\n"
                "class Manager:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._events = []\n"
                "    def stream(self):\n"
                "        with self._lock:\n"
                "            for e in self._events:\n"
                "                yield e\n"
            ),
        }, rules=["lock-discipline"])
        assert any("yields while holding _lock" in f.message
                   for f in findings)

    def test_executor_closure_capture_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/mgr.py": _MGR_HEADER + (
                "    def flush(self, pool):\n"
                "        pool.submit(lambda: self._jobs.clear())\n"
            ),
        }, rules=["lock-discipline"])
        assert any("captures guarded" in f.message for f in findings)

    def test_callback_invoking_locked_method_stays_quiet(self, tmp_path):
        """The correct cross-thread idiom: hand the pool a *method* that
        takes the lock itself, never the guarded object."""
        findings = lint_tree(tmp_path, {
            "service/mgr.py": _MGR_HEADER + (
                "    def _on_done(self, f):\n"
                "        with self._lock:\n"
                "            self._jobs.clear()\n"
                "    def flush(self, future):\n"
                "        future.add_done_callback(\n"
                "            lambda f: self._on_done(f)\n"
                "        )\n"
            ),
        }, rules=["lock-discipline"])
        assert findings == []

    def test_classless_module_is_skipped(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/util.py": "def helper(x):\n    return x + 1\n",
        }, rules=["lock-discipline"])
        assert findings == []


# ---------------------------------------------------------------------------
# Concurrency contracts: lock-order
# ---------------------------------------------------------------------------


class TestLockOrder:
    def test_two_lock_inversion_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/two.py": (
                "import threading\n"
                "class Two:\n"
                "    def __init__(self):\n"
                "        self._a = threading.Lock()\n"
                "        self._b = threading.Lock()\n"
                "    def ab(self):\n"
                "        with self._a:\n"
                "            with self._b:\n"
                "                pass\n"
                "    def ba(self):\n"
                "        with self._b:\n"
                "            with self._a:\n"
                "                pass\n"
            ),
        }, rules=["lock-order"])
        assert len(findings) == 1
        assert "lock-order cycle _a -> _b -> _a" in findings[0].message

    def test_consistent_order_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/two.py": (
                "import threading\n"
                "class Two:\n"
                "    def __init__(self):\n"
                "        self._a = threading.Lock()\n"
                "        self._b = threading.Lock()\n"
                "    def one(self):\n"
                "        with self._a:\n"
                "            with self._b:\n"
                "                pass\n"
                "    def other(self):\n"
                "        with self._a:\n"
                "            with self._b:\n"
                "                pass\n"
            ),
        }, rules=["lock-order"])
        assert findings == []

    def test_cycle_through_helper_call_fires(self, tmp_path):
        """Call propagation: an inversion split across a helper method
        is still a cycle."""
        findings = lint_tree(tmp_path, {
            "service/two.py": (
                "import threading\n"
                "class Two:\n"
                "    def __init__(self):\n"
                "        self._a = threading.Lock()\n"
                "        self._b = threading.Lock()\n"
                "    def outer(self):\n"
                "        with self._a:\n"
                "            self._inner()\n"
                "    def _inner(self):\n"
                "        with self._b:\n"
                "            pass\n"
                "    def rev(self):\n"
                "        with self._b:\n"
                "            with self._a:\n"
                "                pass\n"
            ),
        }, rules=["lock-order"])
        assert len(findings) == 1
        assert "cycle" in findings[0].message

    def test_rlock_reentrancy_is_not_a_cycle(self, tmp_path):
        """Re-taking the same RLock (the JobManager callback pattern)
        is a self-edge, not an inversion."""
        findings = lint_tree(tmp_path, {
            "service/re.py": (
                "import threading\n"
                "class Re:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.RLock()\n"
                "        self._cond = threading.Condition(self._lock)\n"
                "    def outer(self):\n"
                "        with self._lock:\n"
                "            with self._cond:\n"
                "                pass\n"
            ),
        }, rules=["lock-order"])
        assert findings == []


# ---------------------------------------------------------------------------
# Concurrency contracts: fork-safety
# ---------------------------------------------------------------------------


class TestForkSafety:
    def test_lock_across_fork_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/worker.py": (
                "import threading\n"
                "LOCK = threading.Lock()\n"
                "def work(item):\n"
                "    with LOCK:\n"
                "        return item\n"
                "def run(pool, items):\n"
                "    return pool.map(work, items)\n"
            ),
        }, rules=["fork-safety"])
        assert len(findings) == 1
        assert "with LOCK:" in findings[0].message
        assert findings[0].line == 4

    def test_file_handle_in_worker_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/worker.py": (
                "def work(item):\n"
                "    return open(item).read()\n"
                "def run(pool, items):\n"
                "    return pool.imap(work, items)\n"
            ),
        }, rules=["fork-safety"])
        assert len(findings) == 1
        assert "opens a file handle" in findings[0].message

    def test_fork_safe_marker_whitelists(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/worker.py": (
                "def work(item):  # repro-lint: fork-safe\n"
                "    return open(item).read()\n"
                "def run(pool, items):\n"
                "    return pool.imap(work, items)\n"
            ),
        }, rules=["fork-safety"])
        assert findings == []

    def test_pure_worker_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/worker.py": (
                "def work(item):\n"
                "    return item * 2\n"
                "def run(pool, items):\n"
                "    return pool.map(work, items)\n"
            ),
        }, rules=["fork-safety"])
        assert findings == []

    def test_transitive_callee_is_walked(self, tmp_path):
        """A violation two calls deep (and across modules) still fires."""
        findings = lint_tree(tmp_path, {
            "service/worker.py": (
                "from service import disk\n"
                "def work(item):\n"
                "    return disk.load(item)\n"
                "def run(pool, items):\n"
                "    return pool.map(work, items)\n"
            ),
            "service/disk.py": (
                "def load(path):\n"
                "    return open(path).read()\n"
            ),
        }, rules=["fork-safety"])
        assert len(findings) == 1
        assert findings[0].file.endswith("service/disk.py")

    def test_worker_reaching_ledger_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/worker.py": (
                "from repro.obs.ledger import append_record\n"
                "def work(item):\n"
                "    append_record(item)\n"
                "    return item\n"
                "def run(pool, items):\n"
                "    return pool.map(work, items)\n"
            ),
        }, rules=["fork-safety"])
        assert any("parent-process-only" in f.message for f in findings)

    def test_ledger_two_writes_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "obs/ledger.py": (
                "import os\n"
                "def append_record(rec):\n"
                "    fd = os.open('l', os.O_APPEND | os.O_WRONLY)\n"
                "    os.write(fd, b'a')\n"
                "    os.write(fd, b'b')\n"
                "    os.close(fd)\n"
            ),
        }, rules=["fork-safety"])
        assert len(findings) == 1
        assert "exactly one write" in findings[0].message

    def test_ledger_missing_o_append_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "obs/ledger.py": (
                "import os\n"
                "def append_record(rec):\n"
                "    fd = os.open('l', os.O_WRONLY)\n"
                "    os.write(fd, rec)\n"
                "    os.close(fd)\n"
            ),
        }, rules=["fork-safety"])
        assert len(findings) == 1
        assert "without O_APPEND" in findings[0].message

    def test_ledger_buffered_append_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "obs/ledger.py": (
                "def append_record(rec):\n"
                "    with open('l', 'a') as fh:\n"
                "        fh.write(rec)\n"
            ),
        }, rules=["fork-safety"])
        assert findings
        assert any("os.open" in f.message for f in findings)

    def test_disciplined_ledger_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "obs/ledger.py": (
                "import os\n"
                "def append_record(rec):\n"
                "    fd = os.open('l', os.O_APPEND | os.O_CREAT "
                "| os.O_WRONLY)\n"
                "    try:\n"
                "        os.write(fd, rec)\n"
                "    finally:\n"
                "        os.close(fd)\n"
            ),
        }, rules=["fork-safety"])
        assert findings == []


# ---------------------------------------------------------------------------
# The dataflow layer itself
# ---------------------------------------------------------------------------


class TestDataflow:
    def analyze(self, tmp_path, source):
        from repro.lint.dataflow import analyze_file

        p = tmp_path / "service"
        p.mkdir(exist_ok=True)
        (p / "m.py").write_text(source)
        project = Project([str(p)], root=str(tmp_path))
        return analyze_file(project.files[0])

    def test_classification_three_ways(self, tmp_path):
        from repro.lint.dataflow import (
            CONFINED, GUARDED, IMMUTABLE, classify_attr,
        )

        (cls,) = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.frozen = 1\n"
            "        self.guarded = 2\n"
            "        self.local = 3\n"
            "    def use(self):\n"
            "        with self._lock:\n"
            "            self.guarded += 1\n"
            "        self.local += self.frozen\n"
        ))
        assert classify_attr(cls, "frozen") == IMMUTABLE
        assert classify_attr(cls, "guarded") == GUARDED
        assert classify_attr(cls, "local") == CONFINED

    def test_condition_alias_canonicalises(self, tmp_path):
        (cls,) = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._cond = threading.Condition(self._lock)\n"
        ))
        assert set(cls.locks) == {"_lock", "_cond"}
        assert cls.canonical("_cond") == "_lock"

    def test_lexical_locks_cross_into_wait_predicates(self, tmp_path):
        """The Condition.wait_for lambda runs with the lock held; the
        lexical model must agree."""
        (cls,) = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cond = threading.Condition(self._lock)\n"
            "        self._seq = 0\n"
            "    def wait(self, n):\n"
            "        with self._cond:\n"
            "            self._cond.wait_for(lambda: self._seq > n)\n"
        ))
        (access,) = [a for a in cls.accesses if not a.in_init]
        assert access.attr == "_seq"
        assert access.in_closure
        assert "_lock" in access.held

    def test_marker_parsing(self):
        from repro.lint.dataflow import contract_markers, fork_safe_lines

        src = (
            "a = 1  # repro-lint: guarded-by[_lock]\n"
            "def f():  # repro-lint: holds[_a, _b]\n"
            "    pass\n"
            "def g():  # repro-lint: fork-safe\n"
            "    pass\n"
        )
        markers = contract_markers(src)
        assert markers[1].verb == "guarded-by"
        assert markers[1].args == ("_lock",)
        assert markers[2].verb == "holds"
        assert markers[2].args == ("_a", "_b")
        assert fork_safe_lines(src) == frozenset((4,))

    def test_real_jobmanager_contract_is_live(self, monkeypatch):
        """Non-vacuity: the shipped JobManager is a lock-bearing class
        with a declared contract the analyzer actually checks."""
        from repro.lint.dataflow import analyze_file

        monkeypatch.chdir(REPO_ROOT)
        project = Project(["src/repro/service/jobs.py"])
        classes = {
            c.name: c for c in analyze_file(project.files[0])
        }
        mgr = classes["JobManager"]
        assert mgr.canonical("_cond") == "_lock"
        assert "_jobs" in mgr.declared
        assert "_inflight" in mgr.declared
        assert mgr.holds.get("_publish") == frozenset(("_lock",))
        # And the analyzer sees real locked accesses to check.
        assert any(
            a.attr == "_jobs" and "_lock" in a.held for a in mgr.accesses
        )


# ---------------------------------------------------------------------------
# Baseline record/compare
# ---------------------------------------------------------------------------


class TestBaseline:
    BAD = "import time\nT = time.time()\n"

    def _tree(self, tmp_path):
        sim = tmp_path / "sim"
        sim.mkdir(exist_ok=True)
        (sim / "bad.py").write_text(self.BAD)

    def test_known_findings_pass_new_findings_fail(self, capsys,
                                                   monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        self._tree(tmp_path)
        assert main(["lint", "sim", "--write-baseline", "base.json"]) == 0
        capsys.readouterr()
        # The recorded violation no longer fails the run...
        assert main(["lint", "sim", "--baseline", "base.json"]) == 0
        err = capsys.readouterr().err
        assert "1 known finding(s), 0 new, 0 fixed" in err
        # ...but a new one does, and is the only one reported.
        (tmp_path / "sim" / "worse.py").write_text(self.BAD)
        assert main(["lint", "sim", "--baseline", "base.json"]) == 1
        captured = capsys.readouterr()
        assert "worse.py" in captured.out
        assert "bad.py" not in captured.out
        assert "1 known finding(s), 1 new, 0 fixed" in captured.err

    def test_line_shifts_do_not_defeat_the_baseline(self, capsys,
                                                    monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        self._tree(tmp_path)
        assert main(["lint", "sim", "--write-baseline", "base.json"]) == 0
        (tmp_path / "sim" / "bad.py").write_text("# pushed down\n" + self.BAD)
        assert main(["lint", "sim", "--baseline", "base.json"]) == 0

    def test_fixed_findings_are_counted(self, capsys, monkeypatch,
                                        tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        self._tree(tmp_path)
        assert main(["lint", "sim", "--write-baseline", "base.json"]) == 0
        (tmp_path / "sim" / "bad.py").write_text("CLEAN = 1\n")
        assert main(["lint", "sim", "--baseline", "base.json"]) == 0
        assert "0 known finding(s), 0 new, 1 fixed" in capsys.readouterr().err

    def test_json_format_reports_only_new(self, capsys, monkeypatch,
                                          tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        self._tree(tmp_path)
        assert main(["lint", "sim", "--write-baseline", "base.json"]) == 0
        (tmp_path / "sim" / "worse.py").write_text(self.BAD)
        capsys.readouterr()
        assert main(
            ["lint", "sim", "--format", "json", "--baseline", "base.json"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["findings"][0]["file"].endswith("worse.py")

    def test_flags_are_mutually_exclusive(self, capsys, monkeypatch,
                                          tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        self._tree(tmp_path)
        assert main(["lint", "sim", "--baseline", "b.json",
                     "--write-baseline", "b.json"]) == 2

    def test_missing_baseline_is_usage_error(self, capsys, monkeypatch,
                                             tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        self._tree(tmp_path)
        assert main(["lint", "sim", "--baseline", "missing.json"]) == 2

    def test_committed_baseline_is_empty_and_current(self, monkeypatch):
        """The shipped lint_baseline.json records a clean tree -- when
        this fails, re-record it (and ask why the tree regressed)."""
        from repro.lint.baseline import compare, load_baseline

        monkeypatch.chdir(REPO_ROOT)
        baseline = load_baseline("lint_baseline.json")
        assert baseline == []
        delta = compare(lint_paths(["src/repro", "docs"]), baseline)
        assert delta.new == ()


# ---------------------------------------------------------------------------
# Exit-code contract (docs/STATIC_ANALYSIS.md: 0 clean / 1 findings /
# 2 usage error -- parse errors are findings, hence exit 1)
# ---------------------------------------------------------------------------


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys, monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert main(["lint", "ok.py"]) == 0

    def test_findings_exit_one(self, capsys, monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text("import time\nT = time.time()\n")
        assert main(["lint", "sim"]) == 1

    def test_parse_error_only_tree_exits_one(self, capsys, monkeypatch,
                                             tmp_path):
        """A syntax error is a finding, not a usage error: the tree was
        lintable, its content was not clean."""
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main(["lint", "broken.py"]) == 1
        assert "[parse-error]" in capsys.readouterr().out

    def test_usage_errors_exit_two(self, capsys, monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert main(["lint", "no/such/path"]) == 2
        assert main(["lint", "ok.py", "--rules", "bogus"]) == 2


class TestProject:
    def test_find_module_prefers_shortest_path(self, tmp_path):
        (tmp_path / "params.py").write_text("A = 1\n")
        nested = tmp_path / "deep" / "nested"
        nested.mkdir(parents=True)
        (nested / "params.py").write_text("B = 2\n")
        project = Project([str(tmp_path)], root=str(tmp_path))
        found = project.find_module("params.py")
        assert found is not None and found.rel == "params.py"

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths(["definitely/not/here"])
