"""The static-analysis pass: every rule fires on a violating fixture,
stays quiet on a clean one, suppressions work, JSON round-trips, and the
shipped tree itself lints clean."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.lint import (
    Finding,
    all_rules,
    findings_from_json,
    findings_to_json,
    get_rule,
    lint_paths,
)
from repro.lint.model import Finding as ModelFinding
from repro.lint.project import LintError, Project
from repro.lint.runner import PARSE_ERROR_RULE, format_findings
from repro.lint.suppress import suppressions_for_line

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

EXPECTED_RULES = (
    "cache-key-completeness",
    "counter-discipline",
    "determinism",
    "event-schema-sync",
    "ledger-schema-sync",
    "telemetry-guard",
)


def lint_tree(tmp_path, tree: dict[str, str], rules=None) -> list[Finding]:
    """Write a fixture tree and lint it with tmp_path as the root."""
    for rel, content in tree.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(content)
    return lint_paths([str(tmp_path)], rule_ids=rules, root=str(tmp_path))


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert tuple(r.rule_id for r in all_rules()) == EXPECTED_RULES

    def test_every_rule_has_description(self):
        for rule in all_rules():
            assert rule.description

    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError, match="unknown rule id"):
            get_rule("no-such-rule")


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_unseeded_module_random_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/noise.py": (
                "import random\n"
                "def jitter():\n"
                "    return random.random()\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "unseeded RNG" in findings[0].message
        assert findings[0].line == 3

    def test_unseeded_random_instance_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/policy.py": (
                "import random\n"
                "rng = random.Random()\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "seed" in findings[0].message

    def test_wall_clock_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/clock.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "wall-clock" in findings[0].message

    def test_set_iteration_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "schemes/order.py": (
                "def levels(props):\n"
                "    return [p for p in set(props)]\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_seeded_rng_and_sorted_sets_stay_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/good.py": (
                "import random\n"
                "def pick(seed, props):\n"
                "    rng = random.Random(seed)\n"
                "    for p in sorted(set(props)):\n"
                "        rng.random()\n"
            ),
        })
        assert findings == []

    def test_out_of_scope_dirs_are_exempt(self, tmp_path):
        # Workload generators may use wall clocks / module randomness:
        # they run outside the simulator scope.
        findings = lint_tree(tmp_path, {
            "workloads/gen.py": (
                "import random, time\n"
                "def f():\n"
                "    return random.random() + time.time()\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------------------
# cache-key completeness
# ---------------------------------------------------------------------------

_PARAMS_OK = """\
from dataclasses import dataclass, field

@dataclass(frozen=True)
class AuditParams:
    enabled: bool = False

@dataclass(frozen=True)
class SystemConfig:
    cores: int
    audit: AuditParams = field(default_factory=AuditParams)
    directory_mode: str = "mesi"
"""

_CONFIG_IO_OK = """\
_SECTIONS = {
    "audit": AuditParams,
}

def config_from_dict(data):
    known = {"cores", "directory_mode"} | set(_SECTIONS)
    return known
"""


class TestCacheKeyCompleteness:
    def test_complete_round_trip_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": _CONFIG_IO_OK,
        })
        assert findings == []

    def test_annotated_sections_registry_is_found(self, tmp_path):
        # config_io annotates `_SECTIONS: dict[str, type[Any]] = {...}`;
        # the rule must read AnnAssign bindings too.
        config_io = _CONFIG_IO_OK.replace(
            "_SECTIONS = {", "_SECTIONS: dict[str, type] = {"
        )
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": config_io,
        })
        assert findings == []

    def test_unregistered_section_fires(self, tmp_path):
        params = _PARAMS_OK.replace(
            "class SystemConfig:",
            "class TelemetryParams:\n"
            "    interval: int = 1000\n\n"
            "@dataclass(frozen=True)\n"
            "class SystemConfig:",
        ).replace(
            "audit: AuditParams = field(default_factory=AuditParams)",
            "audit: AuditParams = field(default_factory=AuditParams)\n"
            "    telemetry: TelemetryParams = "
            "field(default_factory=TelemetryParams)",
        )
        findings = lint_tree(tmp_path, {
            "params.py": params,
            "config_io.py": _CONFIG_IO_OK,
        })
        assert rule_ids(findings) == ["cache-key-completeness"]
        assert "'telemetry'" in findings[0].message
        assert "cache key" in findings[0].message
        assert findings[0].file == "params.py"

    def test_missing_scalar_key_fires(self, tmp_path):
        config_io = _CONFIG_IO_OK.replace('"cores", "directory_mode"',
                                          '"cores"')
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": config_io,
        })
        assert rule_ids(findings) == ["cache-key-completeness"]
        assert "'directory_mode'" in findings[0].message

    def test_wrong_section_class_fires(self, tmp_path):
        config_io = _CONFIG_IO_OK.replace(
            '"audit": AuditParams', '"audit": CacheGeometry'
        )
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": config_io,
        })
        assert rule_ids(findings) == ["cache-key-completeness"]
        assert "CacheGeometry" in findings[0].message

    def test_stale_entries_fire_both_ways(self, tmp_path):
        config_io = _CONFIG_IO_OK.replace(
            '"audit": AuditParams,',
            '"audit": AuditParams,\n    "legacy": AuditParams,',
        ).replace('"cores", "directory_mode"',
                  '"cores", "directory_mode", "ghost"')
        findings = lint_tree(tmp_path, {
            "params.py": _PARAMS_OK,
            "config_io.py": config_io,
        })
        messages = " ".join(f.message for f in findings)
        assert rule_ids(findings) == ["cache-key-completeness"] * 2
        assert "'legacy'" in messages and "'ghost'" in messages


# ---------------------------------------------------------------------------
# counter discipline
# ---------------------------------------------------------------------------

_STATS_FIXTURE = """\
from dataclasses import dataclass, field

@dataclass(slots=True)
class CoreStats:
    accesses: int = 0
    l1_hits: int = 0

@dataclass(slots=True)
class SimStats:
    cores: list = field(default_factory=list)
    llc_hits: int = 0
    llc_misses: int = 0

    @property
    def total_accesses(self):
        return sum(c.accesses for c in self.cores)
"""


class TestCounterDiscipline:
    def test_declared_counters_stay_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "hierarchy/cmp.py": (
                "class H:\n"
                "    def access(self, core):\n"
                "        self.stats.llc_hits += 1\n"
                "        cs = self.stats.cores[core]\n"
                "        cs.accesses += 1\n"
            ),
        })
        assert findings == []

    def test_typoed_counter_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "hierarchy/cmp.py": (
                "class H:\n"
                "    def access(self):\n"
                "        self.stats.llc_hitz += 1\n"
            ),
        })
        assert rule_ids(findings) == ["counter-discipline"]
        assert "'llc_hitz'" in findings[0].message

    def test_hoisted_alias_chain_is_tracked(self, tmp_path):
        # The engine idiom: stats -> cores list -> per-core local.
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "sim/engine.py": (
                "def run(h, core):\n"
                "    core_stats = h.stats.cores\n"
                "    cs = core_stats[core]\n"
                "    cs.l1_hitz += 1\n"
            ),
        })
        assert rule_ids(findings) == ["counter-discipline"]
        assert "'l1_hitz'" in findings[0].message
        assert findings[0].line == 4

    def test_property_increment_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "sim/engine.py": (
                "def run(stats):\n"
                "    stats.total_accesses += 1\n"
            ),
        })
        assert rule_ids(findings) == ["counter-discipline"]
        assert "read-only" in findings[0].message

    def test_non_stats_objects_are_ignored(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "sim/energy.py": (
                "def tally(energy):\n"
                "    energy.whatever_counter += 1\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------------------
# scope: the array-state fast engine
# ---------------------------------------------------------------------------


class TestFastEngineScope:
    """``repro.sim.fast`` feeds cached results exactly like the object
    engine, so every scoped rule must cover it: fixtures under
    ``sim/fast/`` fire, and the shipped package itself lints clean."""

    def test_fast_is_in_simulator_scope(self):
        from repro.lint.rules.scope import SIMULATOR_SCOPE

        assert "sim" in SIMULATOR_SCOPE
        assert "fast" in SIMULATOR_SCOPE

    def test_determinism_covers_fast_package(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/fast/engine.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.perf_counter()\n"
            ),
        })
        assert rule_ids(findings) == ["determinism"]
        assert "wall-clock" in findings[0].message

    def test_counter_discipline_covers_fast_package(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/stats.py": _STATS_FIXTURE,
            "sim/fast/engine.py": (
                "class FastHierarchy:\n"
                "    def _flush(self):\n"
                "        self.stats.llc_hitz += 1\n"
            ),
        })
        assert rule_ids(findings) == ["counter-discipline"]
        assert "'llc_hitz'" in findings[0].message

    def test_shipped_fast_package_is_clean(self, monkeypatch):
        """The fast engine and the differential harness ship without a
        single finding (the full tree is linted so cross-file rules see
        the schema registry and docs)."""
        monkeypatch.chdir(REPO_ROOT)
        findings = lint_paths(["src/repro", "docs"])
        fast = [
            f for f in findings
            if "sim/fast" in f.file or f.file.endswith("differential.py")
        ]
        assert fast == []
        assert findings == []


# ---------------------------------------------------------------------------
# telemetry guarding
# ---------------------------------------------------------------------------


class TestTelemetryGuard:
    def test_guarded_emit_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "hierarchy/cmp.py": (
                "class H:\n"
                "    def kill(self, addr):\n"
                "        if self.telemetry is not None:\n"
                "            self.telemetry.emit('back_invalidation',\n"
                "                                addr=addr)\n"
                "    def move(self, addr):\n"
                "        telemetry = self.telemetry\n"
                "        if telemetry is not None:\n"
                "            telemetry.emit('relocation', addr=addr)\n"
            ),
        })
        assert findings == []

    def test_unguarded_emit_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/ziv.py": (
                "class Scheme:\n"
                "    def relocate(self, addr):\n"
                "        self.cmp.telemetry.emit('relocation', addr=addr)\n"
            ),
        })
        assert rule_ids(findings) == ["telemetry-guard"]
        assert "one predicate check" in findings[0].message

    def test_emit_in_else_branch_of_guard_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/char.py": (
                "def f(self):\n"
                "    if self.telemetry is not None:\n"
                "        pass\n"
                "    else:\n"
                "        self.telemetry.emit('tau_reset', d=1)\n"
            ),
        })
        assert rule_ids(findings) == ["telemetry-guard"]

    def test_guard_does_not_cross_function_boundary(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/char.py": (
                "def f(self):\n"
                "    if self.telemetry is not None:\n"
                "        def emit_later():\n"
                "            self.telemetry.emit('tau_reset', d=1)\n"
                "        emit_later()\n"
            ),
        })
        assert rule_ids(findings) == ["telemetry-guard"]

    def test_non_telemetry_emit_is_ignored(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/bus.py": (
                "def f(signal):\n"
                "    signal.emit('edge')\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------------------
# event-schema sync
# ---------------------------------------------------------------------------

_TELEMETRY_FIXTURE = """\
EVENT_KINDS = {
    "relocation": ("relocation", "info"),
    "tau_reset": ("char", "debug"),
}
"""

_DOC_FIXTURE = """\
# Observability

| Kind | Category | Severity | Payload |
|---|---|---|---|
| `relocation` | relocation | info | `addr` |
| `tau_reset` | char | debug | `d` |
"""

_EMITTER_FIXTURE = """\
def move(self, addr, cross_bank):
    telemetry = self.cmp.telemetry
    if telemetry is not None:
        kind = "tau_reset" if cross_bank else "relocation"
        telemetry.emit(kind, addr=addr)
"""


class TestEventSchemaSync:
    def fixture(self) -> dict[str, str]:
        return {
            "sim/telemetry.py": _TELEMETRY_FIXTURE,
            "core/ziv.py": _EMITTER_FIXTURE,
            "docs/OBSERVABILITY.md": _DOC_FIXTURE,
        }

    def test_synchronised_schema_stays_quiet(self, tmp_path):
        findings = lint_tree(tmp_path, self.fixture())
        assert findings == []

    def test_unknown_emitted_kind_fires(self, tmp_path):
        tree = self.fixture()
        tree["core/ziv.py"] = _EMITTER_FIXTURE.replace(
            '"tau_reset" if', '"tau_rset" if'
        )
        findings = lint_tree(tmp_path, tree,
                             rules=["event-schema-sync"])
        messages = " ".join(f.message for f in findings)
        assert "'tau_rset'" in messages
        assert any(f.file == "core/ziv.py" for f in findings)

    def test_undocumented_kind_fires(self, tmp_path):
        tree = self.fixture()
        tree["docs/OBSERVABILITY.md"] = "\n".join(
            line for line in _DOC_FIXTURE.splitlines()
            if "tau_reset" not in line
        )
        findings = lint_tree(tmp_path, tree)
        assert rule_ids(findings) == ["event-schema-sync"]
        assert "missing from the kind table" in findings[0].message

    def test_ghost_doc_row_fires(self, tmp_path):
        tree = self.fixture()
        tree["docs/OBSERVABILITY.md"] += (
            "| `warp_drive` | relocation | info | `addr` |\n"
        )
        findings = lint_tree(tmp_path, tree)
        assert rule_ids(findings) == ["event-schema-sync"]
        assert "ghost row" in findings[0].message
        assert findings[0].file == "docs/OBSERVABILITY.md"

    def test_category_mismatch_fires(self, tmp_path):
        tree = self.fixture()
        tree["docs/OBSERVABILITY.md"] = _DOC_FIXTURE.replace(
            "| `tau_reset` | char | debug |", "| `tau_reset` | char | info |"
        )
        findings = lint_tree(tmp_path, tree)
        assert rule_ids(findings) == ["event-schema-sync"]
        assert "declares (char, debug)" in findings[0].message

    def test_dead_schema_entry_fires(self, tmp_path):
        tree = self.fixture()
        tree["sim/telemetry.py"] = _TELEMETRY_FIXTURE.replace(
            '    "tau_reset": ("char", "debug"),',
            '    "tau_reset": ("char", "debug"),\n'
            '    "never_emitted": ("char", "debug"),',
        )
        tree["docs/OBSERVABILITY.md"] += (
            "| `never_emitted` | char | debug | - |\n"
        )
        findings = lint_tree(tmp_path, tree)
        assert rule_ids(findings) == ["event-schema-sync"]
        assert "no simulator code emits" in findings[0].message

    def test_unresolvable_kind_fires(self, tmp_path):
        tree = self.fixture()
        tree["core/ziv.py"] = (
            "def move(self, kinds, addr):\n"
            "    telemetry = self.cmp.telemetry\n"
            "    if telemetry is not None:\n"
            "        telemetry.emit(kinds[0], addr=addr)\n"
        )
        findings = lint_tree(tmp_path, tree)
        relevant = [f for f in findings
                    if "not statically resolvable" in f.message]
        assert len(relevant) == 1


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    BAD = (
        "import time\n"
        "def stamp():\n"
        "    return time.time(){comment}\n"
    )

    def test_matching_rule_is_suppressed(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/clock.py": self.BAD.format(
                comment="  # repro-lint: ignore[determinism]"
            ),
        })
        assert findings == []

    def test_bare_ignore_suppresses_everything(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/clock.py": self.BAD.format(
                comment="  # repro-lint: ignore"
            ),
        })
        assert findings == []

    def test_other_rule_ignore_does_not_suppress(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "sim/clock.py": self.BAD.format(
                comment="  # repro-lint: ignore[telemetry-guard]"
            ),
        })
        assert rule_ids(findings) == ["determinism"]

    def test_suppression_is_per_line(self, tmp_path):
        source = (
            "import time\n"
            "a = time.time()  # repro-lint: ignore[determinism]\n"
            "b = time.time()\n"
        )
        findings = lint_tree(tmp_path, {"sim/clock.py": source})
        assert [f.line for f in findings] == [3]

    def test_parser_accepts_multiple_rules(self):
        ids = suppressions_for_line(
            "x = 1  # repro-lint: ignore[determinism, counter-discipline]"
        )
        assert ids == frozenset(("determinism", "counter-discipline"))


# ---------------------------------------------------------------------------
# Output formats and model round-trip
# ---------------------------------------------------------------------------


class TestOutput:
    def sample(self) -> list[Finding]:
        return [
            Finding(file="src/a.py", line=3, rule_id="determinism",
                    message="m1"),
            Finding(file="src/b.py", line=1, rule_id="telemetry-guard",
                    message="m2"),
        ]

    def test_json_round_trip(self):
        findings = self.sample()
        assert findings_from_json(findings_to_json(findings)) == findings

    def test_json_document_shape(self):
        doc = json.loads(findings_to_json(self.sample()))
        assert doc["count"] == 2
        assert {f["rule_id"] for f in doc["findings"]} == {
            "determinism", "telemetry-guard"
        }

    def test_human_format(self):
        text = format_findings(self.sample(), "human")
        assert "src/a.py:3: [determinism] m1" in text
        assert "2 finding(s)" in text
        assert format_findings([], "human") == "repro lint: clean"

    def test_finding_model_reexport(self):
        assert Finding is ModelFinding

    def test_parse_error_becomes_finding(self, tmp_path):
        findings = lint_tree(tmp_path, {"sim/broken.py": "def f(:\n"})
        assert rule_ids(findings) == [PARSE_ERROR_RULE]


# ---------------------------------------------------------------------------
# CLI + the shipped tree
# ---------------------------------------------------------------------------


class TestCli:
    def test_lint_subcommand_parses(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["lint", "--format", "json"])
        assert args.command == "lint"
        assert args.format == "json"

    def test_list_rules(self, capsys, monkeypatch):
        from repro.__main__ import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out

    def test_unknown_rule_is_usage_error(self, capsys, monkeypatch,
                                         tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "x.py").write_text("pass\n")
        assert main(["lint", "x.py", "--rules", "bogus"]) == 2

    def test_violations_exit_nonzero(self, capsys, monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text(
            "import time\nT = time.time()\n"
        )
        assert main(["lint", "sim"]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out

    def test_shipped_tree_is_clean(self, capsys, monkeypatch):
        """The meta-test: `repro lint` exits 0 on this repository."""
        from repro.__main__ import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_shipped_tree_json_round_trips(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        findings = lint_paths(["src/repro", "docs"])
        assert findings_from_json(findings_to_json(findings)) == findings
        assert findings == []


class TestProject:
    def test_find_module_prefers_shortest_path(self, tmp_path):
        (tmp_path / "params.py").write_text("A = 1\n")
        nested = tmp_path / "deep" / "nested"
        nested.mkdir(parents=True)
        (nested / "params.py").write_text("B = 2\n")
        project = Project([str(tmp_path)], root=str(tmp_path))
        found = project.find_module("params.py")
        assert found is not None and found.rel == "params.py"

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths(["definitely/not/here"])
