"""Regenerates the paper's fig11 (see repro.experiments.fig11_hawkeye_perf)."""

from conftest import run_and_print


def test_fig11_hawkeye_perf(benchmark, scale):
    result = run_and_print(benchmark, "fig11_hawkeye_perf", scale)
    assert result.rows, "figure produced no rows"
