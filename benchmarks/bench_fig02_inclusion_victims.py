"""Regenerates the paper's fig02 (see repro.experiments.fig02_inclusion_victims)."""

from conftest import run_and_print


def test_fig02_inclusion_victims(benchmark, scale):
    result = run_and_print(benchmark, "fig02_inclusion_victims", scale)
    assert result.rows, "figure produced no rows"
