#!/usr/bin/env python3
"""Wall-clock benchmark: object engine vs array-state fast engine.

Measures, with the same methodology as ``bench_parallel_runner.py``
(fresh hierarchy per run, construction time included, quick-scale mix,
accesses/second derived from retired instructions):

* ``object_access_rate_per_s`` -- the reference object engine
* ``fast_access_rate_per_s``   -- ``repro.sim.fast.FastHierarchy``
* ``fast_speedup``             -- the ratio of the two

and then runs the differential grid (every supported scheme x policy x
directory mode, audited) so the speedup number is only ever reported
next to a machine-checked zero-divergence count.  Run as a script to
(re)generate ``BENCH_pr6.json`` at the repository root:

    PYTHONPATH=src python benchmarks/bench_fast_engine.py

``--min-speedup N`` turns the report into a gate (exit code 1 below N);
CI's perf-smoke job runs with ``--min-speedup 5``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pr6.json"


def measure_access_rate(engine: str, n_accesses: int = 240_000) -> float:
    """Raw hot-path throughput (accesses/second) for one engine.

    Same methodology as ``bench_parallel_runner.measure_access_rate``:
    a fresh hierarchy is built for every run (construction is part of
    the cost for both engines) and the quick-scale mix is replayed until
    ``n_accesses`` retired accesses accumulate.  The default window is
    4x the parallel-runner bench's: the fast engine retires the old 60k
    window in ~0.1s, short enough for scheduler noise to dominate."""
    from repro.experiments.common import get_scale, mix_population
    from repro.params import scaled_config
    from repro.sim.engine import Simulation

    wl = mix_population(get_scale("quick"))[0]
    cfg = scaled_config("256KB")
    total = 0
    t0 = time.perf_counter()
    while total < n_accesses:
        if engine == "fast":
            from repro.sim.fast import FastHierarchy

            h = FastHierarchy(cfg, "inclusive", llc_policy="lru")
        else:
            from repro.hierarchy.cmp import CacheHierarchy
            from repro.schemes import make_scheme

            h = CacheHierarchy(cfg, make_scheme("inclusive"),
                               llc_policy="lru")
        r = Simulation(h, wl).run()
        total += sum(c.instructions for c in r.stats.cores)
    return total / (time.perf_counter() - t0)


def run_differential_grid():
    """The full supported grid on one quick-scale workload, audited."""
    from repro.experiments.common import get_scale, mix_population
    from repro.sim.differential import diff_grid, summarize

    wl = mix_population(get_scale("quick"))[0]
    reports = diff_grid([wl])
    return reports, summarize(reports)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=OUT_PATH,
                        help=f"report path (default: {OUT_PATH.name})")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit 1 if fast/object falls below this")
    parser.add_argument("--accesses", type=int, default=240_000,
                        help="accesses per throughput measurement")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurements per engine; the best is kept")
    args = parser.parse_args()

    # Best-of-N: each trial's rate is depressed only by interference, so
    # the maximum is the least-contended estimate of the engine's speed.
    object_rate = max(
        measure_access_rate("object", args.accesses)
        for _ in range(args.repeats)
    )
    print(f"object engine: {object_rate:8.0f} accesses/s")
    fast_rate = max(
        measure_access_rate("fast", args.accesses)
        for _ in range(args.repeats)
    )
    print(f"fast engine:   {fast_rate:8.0f} accesses/s")
    speedup = fast_rate / object_rate
    print(f"speedup:       {speedup:8.2f}x")

    reports, verdict = run_differential_grid()
    print(verdict)
    divergences = sum(len(r.divergences) for r in reports)

    payload = {
        "bench": "fast_engine",
        "scale": "quick",
        "methodology": "bench_parallel_runner.measure_access_rate: fresh "
                       "hierarchy per run, construction included, "
                       "quick-scale mix, inclusive/lru; best of "
                       f"{args.repeats} runs per engine",
        "accesses_per_measurement": args.accesses,
        "repeats": args.repeats,
        "object_access_rate_per_s": round(object_rate),
        "fast_access_rate_per_s": round(fast_rate),
        "fast_speedup": round(speedup, 2),
        "differential_grid_cells": len(reports),
        "differential_divergences": divergences,
        "differential_audit_clean": divergences == 0,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if divergences:
        print(f"FAIL: {divergences} divergence(s) on the grid")
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
