"""Regenerates the paper's fig10 (see repro.experiments.fig10_lru_misses)."""

from conftest import run_and_print


def test_fig10_lru_misses(benchmark, scale):
    result = run_and_print(benchmark, "fig10_lru_misses", scale)
    assert result.rows, "figure produced no rows"
