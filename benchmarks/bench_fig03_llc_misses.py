"""Regenerates the paper's fig03 (see repro.experiments.fig03_llc_misses)."""

from conftest import run_and_print


def test_fig03_llc_misses(benchmark, scale):
    result = run_and_print(benchmark, "fig03_llc_misses", scale)
    assert result.rows, "figure produced no rows"
