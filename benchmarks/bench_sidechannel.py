"""Prime+probe side-channel bench (paper Section I-A motivation):
the inclusive LLC leaks with near-perfect accuracy; ZIV and the
non-inclusive design blind the attacker."""

from repro.params import scaled_config
from repro.security import prime_probe_experiment

SCHEMES = (
    "inclusive",
    "qbs",
    "sharp",
    "ziv:notinprc",
    "ziv:likelydead",
    "noninclusive",
)


def test_prime_probe_accuracy(benchmark):
    cfg = scaled_config("512KB")

    def campaign():
        return {
            s: prime_probe_experiment(cfg, s, trials=48) for s in SCHEMES
        }

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print()
    print("== Prime+probe attacker accuracy (0.5 = blind) ==")
    for s, r in results.items():
        print(
            f"{s:16s} accuracy={r.accuracy:.2f} "
            f"signal={r.signal_probe_misses:4d} "
            f"noise={r.noise_probe_misses:4d} leaks={r.leaks}"
        )
    assert results["inclusive"].leaks
    assert not results["ziv:notinprc"].leaks
    assert not results["noninclusive"].leaks


def test_evict_reload_and_latency_channel(benchmark):
    from repro.security import (
        evict_reload_experiment,
        relocation_latency_probe,
    )

    cfg = scaled_config("512KB")

    def campaign():
        er = {
            s: evict_reload_experiment(cfg, s, trials=32)
            for s in ("inclusive", "ziv:notinprc", "noninclusive")
        }
        probe = {
            sigma: relocation_latency_probe(cfg, samples=48,
                                            jitter_sigma=sigma)
            for sigma in (0.0, 2.0, 4.0)
        }
        return er, probe

    er, probe = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print()
    print("== Evict+Reload accuracy ==")
    for s, r in er.items():
        print(f"{s:16s} accuracy={r.accuracy:.2f} leaks={r.leaks}")
    print("== Relocated-latency channel vs measurement jitter ==")
    for sigma, r in probe.items():
        print(
            f"sigma={sigma:>4.1f} distinguisher={r.distinguisher_accuracy:.2f}"
            f" open={r.channel_open}"
        )
    assert er["inclusive"].leaks
    assert not er["ziv:notinprc"].leaks
    assert probe[0.0].channel_open  # deterministic machine leaks the delta
    assert not probe[4.0].channel_open  # realistic jitter closes it
