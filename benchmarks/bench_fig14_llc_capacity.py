"""Regenerates the paper's fig14 (see repro.experiments.fig14_llc_capacity)."""

from conftest import run_and_print


def test_fig14_llc_capacity(benchmark, scale):
    result = run_and_print(benchmark, "fig14_llc_capacity", scale)
    assert result.rows, "figure produced no rows"
