"""Regenerates the paper's fig12 (see repro.experiments.fig12_permix_hawkeye)."""

from conftest import run_and_print


def test_fig12_permix_hawkeye(benchmark, scale):
    result = run_and_print(benchmark, "fig12_permix_hawkeye", scale)
    assert result.rows, "figure produced no rows"
