"""Regenerates the paper's fig15 (see repro.experiments.fig15_sparse_dir)."""

from conftest import run_and_print


def test_fig15_sparse_dir(benchmark, scale):
    result = run_and_print(benchmark, "fig15_sparse_dir", scale)
    assert result.rows, "figure produced no rows"
