"""Regenerates the paper's fig17 (see repro.experiments.fig17_mt_hawkeye)."""

from conftest import run_and_print


def test_fig17_mt_hawkeye(benchmark, scale):
    result = run_and_print(benchmark, "fig17_mt_hawkeye", scale)
    assert result.rows, "figure produced no rows"
