"""Regenerates the paper's fig01 (see repro.experiments.fig01_motivation)."""

from conftest import run_and_print


def test_fig01_motivation(benchmark, scale):
    result = run_and_print(benchmark, "fig01_motivation", scale)
    assert result.rows, "figure produced no rows"
