"""Regenerates the paper's fig19 (see repro.experiments.fig19_energy)."""

from conftest import run_and_print


def test_fig19_energy(benchmark, scale):
    result = run_and_print(benchmark, "fig19_energy", scale)
    assert result.rows, "figure produced no rows"
