"""Regenerates the paper's fig18 (see repro.experiments.fig18_reloc_intervals)."""

from conftest import run_and_print


def test_fig18_reloc_intervals(benchmark, scale):
    result = run_and_print(benchmark, "fig18_reloc_intervals", scale)
    assert result.rows, "figure produced no rows"
