"""Ablation benches for the ZIV design choices (DESIGN.md §7):
property ladder, round-robin nextRS, and CHAR threshold dynamics."""

from repro.experiments import ablations


def test_ablation_property_ladder(benchmark, scale):
    result = benchmark.pedantic(
        lambda: ablations.run_property_ladder(scale), rounds=1, iterations=1
    )
    print()
    result.print_table()
    assert result.rows


def test_ablation_round_robin(benchmark, scale):
    result = benchmark.pedantic(
        lambda: ablations.run_round_robin(scale), rounds=1, iterations=1
    )
    print()
    result.print_table()
    assert result.rows


def test_ablation_char_threshold(benchmark, scale):
    result = benchmark.pedantic(
        lambda: ablations.run_char_threshold(scale), rounds=1, iterations=1
    )
    print()
    result.print_table()
    assert result.rows
