"""Inclusion policy x prefetching interplay.

The paper cites Backes & Jimenez (MEMSYS 2019, [1]): recently proposed LLC
management policies deliver their gains in non-inclusive LLCs and suffer
in inclusive ones because of inclusion victims -- and prefetching
amplifies the pressure.  This bench runs the inclusive baseline, the
non-inclusive design and ZIV with the stride prefetcher on and off.
"""

from repro.experiments.common import (
    FigureResult,
    cached_run,
    get_scale,
    mix_population,
)
from repro.params import PrefetchParams, scaled_config
from repro.sim.metrics import geomean, mix_speedup


def run_prefetch_interplay(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    fig = FigureResult(
        figure="Ablation-G",
        title="Inclusion x prefetching @512KB, Hawkeye (norm. I, pf off)",
        columns=["prefetch", "scheme", "speedup", "incl_victims",
                 "pf_useful_rate"],
    )
    base_cfg = scaled_config("512KB")
    baselines = [
        cached_run(wl, "inclusive", "hawkeye", config=base_cfg)
        for wl in mixes
    ]
    for pf_on in (False, True):
        cfg = base_cfg
        if pf_on:
            cfg = base_cfg.replace(
                prefetch=PrefetchParams(kind="stride", degree=2)
            )
        for scheme in ("inclusive", "noninclusive", "ziv:mrlikelydead"):
            runs = [
                cached_run(wl, scheme, "hawkeye", config=cfg)
                for wl in mixes
            ]
            sp = geomean(
                mix_speedup(b, r) for b, r in zip(baselines, runs)
            )
            victims = sum(r.stats.inclusion_victims_llc for r in runs)
            issued = sum(r.stats.prefetches_issued for r in runs)
            useful = sum(r.stats.prefetch_useful for r in runs)
            fig.add(
                "stride" if pf_on else "off",
                scheme,
                sp,
                victims,
                useful / issued if issued else 0.0,
            )
    return fig


def test_ablation_prefetch_interplay(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_prefetch_interplay(scale), rounds=1, iterations=1
    )
    print()
    result.print_table()
    rows = result.row_map(2)
    # ZIV stays inclusion-victim-free even with the prefetcher on
    assert rows[("stride", "ziv:mrlikelydead")][1] == 0
    assert rows[("off", "ziv:mrlikelydead")][1] == 0
