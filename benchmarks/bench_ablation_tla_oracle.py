"""Extra ablation benches: the full TLA family (TLH/ECI/QBS) and the gap
to the oracle-optimal relocation victim (paper Section VI future work)."""

from repro.experiments import ablations
from repro.experiments.common import (
    FigureResult,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    speedups_vs_baseline,
)


def run_tla_family(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Ablation-E",
        title="TLA family vs ZIV @512KB, LRU (norm. I-LRU 256KB)",
        columns=["scheme", "speedup", "incl_victims"],
    )
    for scheme in ("inclusive", "tlh", "eci", "qbs", "ziv:likelydead",
                   "noninclusive"):
        runs = [cached_run(wl, scheme, "lru", l2="512KB") for wl in mixes]
        s = speedups_vs_baseline(mixes, baseline, runs)
        fig.add(scheme, s["mean"],
                sum(r.stats.inclusion_victims_llc for r in runs))
    return fig


def test_ablation_tla_family(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_tla_family(scale), rounds=1, iterations=1
    )
    print()
    result.print_table()
    assert result.rows
    by_scheme = {r[0]: r for r in result.rows}
    # the ZIV guarantee: zero inclusion victims; TLA schemes give none
    assert by_scheme["ziv:likelydead"][2] == 0


def test_ablation_oracle_gap(benchmark, scale):
    result = benchmark.pedantic(
        lambda: ablations.run_oracle_gap(scale), rounds=1, iterations=1
    )
    print()
    result.print_table()
    assert result.rows
