"""Regenerates the paper's fig16 (see repro.experiments.fig16_mt_lru)."""

from conftest import run_and_print


def test_fig16_mt_lru(benchmark, scale):
    result = run_and_print(benchmark, "fig16_mt_lru", scale)
    assert result.rows, "figure produced no rows"
