"""Relocated-access latency sensitivity (paper Section V-B).

The paper observes that "the additional LLC latency incurred for accessing
the shared relocated blocks ... has very little performance impact as
nullifying this additional latency affects performance by a negligible
amount."  This bench nullifies the penalty and measures the delta.
"""

import dataclasses

from repro.experiments.common import (
    FigureResult,
    cached_run,
    get_scale,
    mt_workload,
)
from repro.params import CoreParams, scaled_config
from repro.sim.metrics import geomean, mix_speedup
from repro.workloads.multithreaded import MT_APP_NAMES


def run_penalty_sensitivity(scale=None) -> FigureResult:
    scale = get_scale(scale)
    fig = FigureResult(
        figure="Ablation-F",
        title="Relocated-access penalty: 2 cycles vs nullified (MT apps)",
        columns=["app", "speedup_nullified_vs_normal", "relocated_hits"],
    )
    deltas = []
    for app in MT_APP_NAMES:
        if app == "tpce":
            continue
        wl = mt_workload(app, scale, cores=8)
        normal_cfg = scaled_config("512KB")
        zero_cfg = normal_cfg.replace(
            core=dataclasses.replace(
                normal_cfg.core, relocated_access_penalty=0
            )
        )
        normal = cached_run(wl, "ziv:mrlikelydead", "hawkeye",
                            config=normal_cfg, cores=8)
        zero = cached_run(wl, "ziv:mrlikelydead", "hawkeye",
                          config=zero_cfg, cores=8)
        sp = mix_speedup(normal, zero)
        deltas.append(sp)
        fig.add(app, sp, normal.stats.relocated_hits)
    fig.notes = (
        f"geomean impact of nullifying the penalty: {geomean(deltas):.4f} "
        "(paper: negligible)"
    )
    return fig


def test_ablation_reloc_penalty(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_penalty_sensitivity(scale), rounds=1, iterations=1
    )
    print()
    result.print_table()
    assert result.rows
    for row in result.rows:
        # nullifying a small penalty must not change performance by >2%
        assert 0.98 <= row[1] <= 1.02
