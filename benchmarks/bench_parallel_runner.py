#!/usr/bin/env python3
"""Wall-clock benchmark of the parallel runner and the result cache.

Measures, over a representative recipe grid at REPRO_SCALE=quick:

* ``serial_cold_s``    -- plain serial loop, disk cache disabled
* ``parallel_cold_s``  -- ``run_many(jobs=n_cpu)``, disk cache disabled
* ``warm_cache_s``     -- ``run_many`` resolving everything from disk
* ``access_rate``      -- raw hot-path throughput (accesses/second)

Acceptance (ISSUE): the warm-cache path must beat the cold serial path by
>= 2x; on a multi-core machine the cold parallel path should also show a
measurable improvement.  Run as a script to (re)generate
``BENCH_pr1.json`` at the repository root:

    PYTHONPATH=src python benchmarks/bench_parallel_runner.py

Later PRs re-measure against that baseline without overwriting it:
``--out BENCH_pr4.json`` redirects the report.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pr1.json"


def bench_grid(scale_name: str = "quick"):
    """A miniature sweep shaped like the paper studies: three schemes,
    two policies, the quick-scale mix population."""
    from repro.experiments.common import get_scale, mix_population
    from repro.sim.parallel import make_recipe

    scale = get_scale(scale_name)
    mixes = mix_population(scale)
    return [
        make_recipe(wl, scheme, policy=policy, l2="256KB")
        for scheme in ("inclusive", "noninclusive", "ziv:likelydead")
        for policy in ("lru", "srrip")
        for wl in mixes
    ]


def time_run(recipes, jobs=None):
    from repro.sim.parallel import run_many

    t0 = time.perf_counter()
    results = run_many(recipes, jobs=jobs)
    return time.perf_counter() - t0, results


def measure_access_rate(n_accesses: int = 60_000) -> float:
    """Raw hierarchy throughput on the hot path (accesses/second)."""
    from repro.experiments.common import get_scale, mix_population
    from repro.params import scaled_config
    from repro.hierarchy.cmp import CacheHierarchy
    from repro.schemes import make_scheme
    from repro.sim.engine import Simulation

    wl = mix_population(get_scale("quick"))[0]
    cfg = scaled_config("256KB")
    total = 0
    t0 = time.perf_counter()
    while total < n_accesses:
        h = CacheHierarchy(cfg, make_scheme("inclusive"), llc_policy="lru")
        r = Simulation(h, wl).run()
        total += sum(c.instructions for c in r.stats.cores)
    return total / (time.perf_counter() - t0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=OUT_PATH,
                        help=f"report path (default: {OUT_PATH.name})")
    args = parser.parse_args()
    os.environ.setdefault("REPRO_CACHE_DIR", ".repro_cache_bench")
    from repro.sim.parallel import (
        clear_memo,
        clear_result_cache,
        resolve_jobs,
    )

    n_cpu = resolve_jobs(0)
    recipes = bench_grid()
    print(f"grid: {len(recipes)} recipes")
    print(f"cpus: {n_cpu}")
    if n_cpu == 1:
        # On one CPU the pool is pure overhead, so a parallel-vs-serial
        # ratio says nothing about the runner (BENCH_pr4 recorded 1.04x
        # on a 1-CPU box, which read as a result but was noise).
        print("cpus: only 1 CPU visible -- the parallel-vs-serial "
              "comparison is NOT meaningful and will be flagged")

    os.environ["REPRO_CACHE"] = "off"
    clear_memo()
    serial_cold, _ = time_run(recipes)
    print(f"serial cold:   {serial_cold:8.2f}s")

    clear_memo()
    parallel_cold, _ = time_run(recipes, jobs=0)
    print(f"parallel cold: {parallel_cold:8.2f}s (jobs={n_cpu})")

    # Populate the disk cache, then measure a warm pass from a cold memo
    # (what a new session pays).
    os.environ["REPRO_CACHE"] = "on"
    clear_result_cache()
    clear_memo()
    time_run(recipes)  # write-through
    clear_memo()
    warm, _ = time_run(recipes, jobs=0)
    print(f"warm cache:    {warm:8.2f}s")
    clear_result_cache()

    rate = measure_access_rate()
    print(f"throughput:    {rate:8.0f} accesses/s")

    # ``cpus`` leads the payload: every ratio below is conditioned on it,
    # and on a 1-CPU machine the parallel-vs-serial ratio is recorded as
    # None (measuring pool overhead, not parallelism).
    payload = {
        "bench": "parallel_runner",
        "cpus": n_cpu,
        "parallel_comparison_meaningful": n_cpu > 1,
        "scale": "quick",
        "recipes": len(recipes),
        "serial_cold_s": round(serial_cold, 3),
        "parallel_cold_s": round(parallel_cold, 3),
        "warm_cache_s": round(warm, 3),
        "warm_speedup_vs_serial_cold": round(serial_cold / warm, 2),
        "parallel_cold_speedup_vs_serial_cold": (
            round(serial_cold / parallel_cold, 2) if n_cpu > 1 else None
        ),
        "access_rate_per_s": round(rate),
    }
    if n_cpu == 1:
        payload["parallel_comparison_note"] = (
            "only 1 CPU visible: parallel-vs-serial speedup omitted "
            "(a ratio near 1.0 here measures pool overhead, not the "
            "runner)"
        )
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    assert payload["warm_speedup_vs_serial_cold"] >= 2.0, payload


if __name__ == "__main__":
    main()
