"""Regenerates the paper's fig09 (see repro.experiments.fig09_permix_lru)."""

from conftest import run_and_print


def test_fig09_permix_lru(benchmark, scale):
    result = run_and_print(benchmark, "fig09_permix_lru", scale)
    assert result.rows, "figure produced no rows"
