"""Regenerates the paper's fig08 (see repro.experiments.fig08_lru_perf)."""

from conftest import run_and_print


def test_fig08_lru_perf(benchmark, scale):
    result = run_and_print(benchmark, "fig08_lru_perf", scale)
    assert result.rows, "figure produced no rows"
