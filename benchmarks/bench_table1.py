"""Regenerates the paper's table1 (see repro.experiments.table1)."""

from conftest import run_and_print


def test_table1(benchmark, scale):
    result = run_and_print(benchmark, "table1", scale)
    assert result.rows, "figure produced no rows"
