#!/usr/bin/env python3
"""Wall-clock benchmark: streamed binary traces vs in-memory workloads.

Measures, on the same quick-scale mix and configuration:

* ``inmem_access_rate_per_s``    -- the workload held in memory (the
  fast engine's fused driver, the repo's best case)
* ``streamed_access_rate_per_s`` -- the same workload streamed from a
  ``tracebin`` file through :class:`~repro.sim.tracebin.BinWorkload`
  (per-access driver + chunk decoding; memory bounded by chunk size)
* ``streamed_overhead``          -- the ratio of the two
* ``convert_records_per_s``      -- text -> binary conversion throughput
* ``bytes_per_record``           -- on-disk density of the binary format

The streamed path is expected to be slower -- it exists to make traces
*larger than memory* simulable at all; this benchmark pins down the
price so regressions are visible.  Run as a script to (re)generate
``BENCH_pr7.json`` at the repository root:

    PYTHONPATH=src python benchmarks/bench_tracebin.py

``--check`` additionally asserts that the streamed run's statistics are
bit-identical to the in-memory run's (the acceptance criterion) and
exits 1 otherwise.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pr7.json"

CHUNK_RECORDS = 65536


def build_inputs(tmp: Path):
    from repro.experiments.common import get_scale, mix_population
    from repro.sim.tracebin import save_workload_bin
    from repro.sim.tracefile import save_workload

    wl = mix_population(get_scale("quick"))[0]
    text = tmp / "bench.trace.gz"
    binary = tmp / "bench.tracebin"
    save_workload(wl, text)
    save_workload_bin(wl, binary, chunk_records=CHUNK_RECORDS)
    return wl, text, binary


def run_once(config, workload):
    from repro.sim.engine import Simulation
    from repro.sim.fast import FastHierarchy

    hierarchy = FastHierarchy(config, "inclusive", llc_policy="lru")
    sim = Simulation(hierarchy, workload)
    t0 = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - t0
    return result, result.stats.total_accesses / elapsed


def main(argv=None) -> int:
    from repro.params import scaled_config
    from repro.sim.tracebin import TraceBinReader, convert_text_trace
    from repro.sim.tracebin import open_trace

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--check", action="store_true",
                        help="fail unless streamed stats are bit-identical "
                             "to in-memory stats")
    args = parser.parse_args(argv)

    config = scaled_config("256KB")
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        wl, text, binary = build_inputs(tmp)

        t0 = time.perf_counter()
        info = convert_text_trace(text, tmp / "bench2.tracebin",
                                  chunk_records=CHUNK_RECORDS)
        convert_rate = info["records"] / (time.perf_counter() - t0)

        inmem_rates, streamed_rates = [], []
        base_result = streamed_result = None
        for _ in range(args.repeats):
            base_result, rate = run_once(config, wl)
            inmem_rates.append(rate)
            with open_trace(binary) as bw:
                streamed_result, rate = run_once(config, bw)
            streamed_rates.append(rate)

        with TraceBinReader(binary) as reader:
            bytes_per_record = reader.info()["bytes_per_record"]

        identical = dataclasses.asdict(
            base_result.stats
        ) == dataclasses.asdict(streamed_result.stats)

    inmem = max(inmem_rates)
    streamed = max(streamed_rates)
    report = {
        "bench": "tracebin",
        "scale": "quick",
        "methodology": (
            "fresh FastHierarchy per run, construction included, "
            "quick-scale mix, inclusive/lru; best of "
            f"{args.repeats} runs per mode; streamed = tracebin chunk "
            f"size {CHUNK_RECORDS} via BinWorkload (per-access driver), "
            "in-memory = fused fast-engine driver"
        ),
        "accesses_per_measurement": base_result.stats.total_accesses,
        "repeats": args.repeats,
        "inmem_access_rate_per_s": round(inmem),
        "streamed_access_rate_per_s": round(streamed),
        "streamed_overhead": round(inmem / streamed, 2),
        "convert_records_per_s": round(convert_rate),
        "chunk_records": CHUNK_RECORDS,
        "bytes_per_record": round(bytes_per_record, 2),
        "streamed_stats_identical": identical,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {OUT_PATH}")
    if args.check and not identical:
        print("FAIL: streamed stats differ from in-memory stats",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
