"""Regenerates the paper's fig13 (see repro.experiments.fig13_hawkeye_misses)."""

from conftest import run_and_print


def test_fig13_hawkeye_misses(benchmark, scale):
    result = run_and_print(benchmark, "fig13_hawkeye_misses", scale)
    assert result.rows, "figure produced no rows"
