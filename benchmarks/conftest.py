"""Benchmark-suite configuration.

Each bench regenerates one paper figure/table through its experiment
module and prints the rows.  Simulations are memoised process-wide (the
figures overlap heavily), so the suite's total cost is far below the sum
of its parts.  Set REPRO_SCALE=smoke|quick|standard|full to trade fidelity
for time (default: quick).
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale():
    return os.environ.get("REPRO_SCALE", "quick")


def run_and_print(benchmark, figure_name, scale):
    from repro.experiments import run_figure

    result = benchmark.pedantic(
        lambda: run_figure(figure_name, scale), rounds=1, iterations=1
    )
    print()
    result.print_table()
    return result
