"""Regenerates the paper's fig04 (see repro.experiments.fig04_l2_misses)."""

from conftest import run_and_print


def test_fig04_l2_misses(benchmark, scale):
    result = run_and_print(benchmark, "fig04_l2_misses", scale)
    assert result.rows, "figure produced no rows"
