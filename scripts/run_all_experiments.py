#!/usr/bin/env python3
"""Regenerate every paper figure (plus the ablations) and dump the tables.

Usage:  REPRO_SCALE=standard python scripts/run_all_experiments.py [outfile]

All experiment modules are imported up front so the run is unaffected by
concurrent edits to the working tree, and simulations are shared across
figures through the process-wide result cache.
"""

import importlib
import os
import sys
import time

from repro.experiments import ALL_FIGURES

MODULES = {
    name: importlib.import_module(f"repro.experiments.{name}")
    for name in ALL_FIGURES
}
ablations = importlib.import_module("repro.experiments.ablations")


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "standard")
    out_path = sys.argv[1] if len(sys.argv) > 1 else "experiments_output.txt"
    t_start = time.time()
    with open(out_path, "w") as out:
        def emit(text=""):
            print(text)
            out.write(text + "\n")
            out.flush()

        emit(f"# ZIV reproduction: all figures at scale={scale}")
        emit()
        for name in ALL_FIGURES:
            t0 = time.time()
            fig = MODULES[name].run(scale)
            emit(fig.format_table())
            emit(f"[{name}: {time.time() - t0:.1f}s]")
            emit()
        for fn in (
            ablations.run_property_ladder,
            ablations.run_round_robin,
            ablations.run_char_threshold,
        ):
            t0 = time.time()
            fig = fn(scale)
            emit(fig.format_table())
            emit(f"[{fn.__name__}: {time.time() - t0:.1f}s]")
            emit()
        # Shape-at-a-glance charts for the headline comparisons.
        from repro.experiments.ascii_chart import bar_chart

        for name, col in (
            ("fig08_lru_perf", 2),
            ("fig11_hawkeye_perf", 2),
        ):
            emit(bar_chart(MODULES[name].run(scale), value_col=col,
                           baseline=1.0))
            emit()
        emit(f"total: {time.time() - t_start:.0f}s")


if __name__ == "__main__":
    main()
