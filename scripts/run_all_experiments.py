#!/usr/bin/env python3
"""Regenerate every paper figure (plus the ablations) and dump the tables.

Usage:  REPRO_SCALE=standard python scripts/run_all_experiments.py \\
            [--jobs N] [outfile]

All experiment modules are imported up front so the run is unaffected by
concurrent edits to the working tree.  Every module exposes the recipes
its figure needs, so the script submits the union of all simulations to
``run_many`` first -- fanned out over ``--jobs`` worker processes (or
REPRO_JOBS; default: one per CPU) -- and the per-figure loops below then
resolve entirely from the result cache.  Total wall-clock is roughly the
longest individual simulation times (grid / cores), not the serial sum.
"""

import argparse
import importlib
import os
import time

from repro.experiments import ALL_FIGURES
from repro.sim.parallel import run_many

MODULES = {
    name: importlib.import_module(f"repro.experiments.{name}")
    for name in ALL_FIGURES
}
ablations = importlib.import_module("repro.experiments.ablations")


def collect_recipes(scale):
    """Union of every figure's (and the ablations') submissions, deduped
    by recipe key but kept in first-seen order."""
    seen = set()
    recipes = []
    for module in [*MODULES.values(), ablations]:
        enumerate_ = getattr(module, "recipes", None)
        if enumerate_ is None:
            continue
        for recipe in enumerate_(scale):
            key = recipe.key()
            if key not in seen:
                seen.add(key)
                recipes.append(recipe)
    return recipes


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int,
        default=int(os.environ.get("REPRO_JOBS", "0")),
        help="worker processes for the up-front simulation fan-out "
             "(<=0: one per CPU; default REPRO_JOBS or one per CPU)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print a live progress line (completed/total, cache "
             "provenance, accesses/s, ETA) to stderr during the fan-out",
    )
    parser.add_argument("outfile", nargs="?",
                        default="docs/experiments_output.txt")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = os.environ.get("REPRO_SCALE", "standard")
    out_path = args.outfile
    t_start = time.time()

    recipes = collect_recipes(scale)
    print(f"submitting {len(recipes)} unique simulations "
          f"(jobs={args.jobs if args.jobs > 0 else 'auto'})")
    if args.progress:
        from repro.sim.telemetry import ProgressPrinter

        printer = ProgressPrinter()
        run_many(recipes, jobs=args.jobs, heartbeat=printer)
        printer.done()
    else:
        run_many(recipes, jobs=args.jobs)
    print(f"simulations done in {time.time() - t_start:.0f}s; "
          f"formatting figures")
    with open(out_path, "w") as out:
        def emit(text=""):
            print(text)
            out.write(text + "\n")
            out.flush()

        emit(f"# ZIV reproduction: all figures at scale={scale}")
        emit()
        for name in ALL_FIGURES:
            t0 = time.time()
            fig = MODULES[name].run(scale)
            emit(fig.format_table())
            emit(f"[{name}: {time.time() - t0:.1f}s]")
            emit()
        for fn in (
            ablations.run_property_ladder,
            ablations.run_round_robin,
            ablations.run_char_threshold,
        ):
            t0 = time.time()
            fig = fn(scale)
            emit(fig.format_table())
            emit(f"[{fn.__name__}: {time.time() - t0:.1f}s]")
            emit()
        # Shape-at-a-glance charts for the headline comparisons.
        from repro.experiments.ascii_chart import bar_chart

        for name, col in (
            ("fig08_lru_perf", 2),
            ("fig11_hawkeye_perf", 2),
        ):
            emit(bar_chart(MODULES[name].run(scale), value_col=col,
                           baseline=1.0))
            emit()
        emit(f"total: {time.time() - t_start:.0f}s")


if __name__ == "__main__":
    main()
