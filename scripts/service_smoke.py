#!/usr/bin/env python
"""CI service smoke: drive the simulation job service over real HTTP.

Starts a process-mode :class:`~repro.service.server.ServiceServer` on
an ephemeral port, then asserts the service's core guarantees through
the client, end to end:

* submit/wait/result on **both engines**, with the engines agreeing on
  every counter (the differential-oracle contract, now over HTTP);
* resubmission resolves from storage without a fresh execution, and the
  payload bytes are identical;
* three concurrent clients racing one recipe share a single execution
  -- proven by the ledger: exactly one ``run`` record, two cache-hit
  records, bit-identical payloads;
* recipe rejections are structured 400s naming the offending field,
  and count into ``/metrics``;
* ``/metrics`` parses and its job counters reconcile with what we
  submitted; the ledger grew by exactly the expected record count.

Exit 0 on success; any assertion failure is a non-zero exit.

Usage::

    REPRO_CACHE_DIR=$(mktemp -d) python scripts/service_smoke.py
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config_io import recipe_to_dict  # noqa: E402
from repro.obs.ledger import ledger_path, read_ledger  # noqa: E402
from repro.obs.registry import parse_prometheus  # noqa: E402
from repro.params import (  # noqa: E402
    CacheGeometry,
    DirectoryGeometry,
    LLCGeometry,
    SystemConfig,
)
from repro.service import (  # noqa: E402
    ServiceClient,
    ServiceError,
    create_server,
)
from repro.sim.parallel import RunRecipe  # noqa: E402
from repro.sim.trace import (  # noqa: E402
    CoreTrace,
    TraceRecord,
    Workload,
)


def small_config(engine: str = "object") -> SystemConfig:
    return SystemConfig(
        cores=2,
        l1=CacheGeometry(sets=1, ways=2),
        l2=CacheGeometry(sets=2, ways=4),
        llc=LLCGeometry(banks=2, sets_per_bank=4, ways=4),
        directory=DirectoryGeometry(sets=2, ways=8),
        engine=engine,
    )


def small_workload(k: int = 0, length: int = 600) -> Workload:
    traces = [
        CoreTrace(
            [TraceRecord(1, (c + 1) * 256 + (i * (k + 2)) % 48,
                         i % 5 == 0, i % 4) for i in range(length)]
        )
        for c in range(2)
    ]
    return Workload(traces, f"svc-smoke-wl{k}")


def main() -> int:
    start = len(read_ledger())
    server = create_server(port=0, workers=2, mode="process").start()
    client = ServiceClient(server.url, timeout=180.0)
    try:
        assert client.health()["ok"] is True

        # -- both engines over HTTP, grid of 2 schemes x 2 workloads ----
        grid = [
            RunRecipe(small_workload(k), scheme, small_config(engine))
            for engine in ("object", "fast")
            for scheme in ("inclusive", "ziv:notinprc")
            for k in range(2)
        ]
        payloads = client.run_recipes(
            [recipe_to_dict(r) for r in grid], timeout=180.0
        )
        assert len(payloads) == len(grid)

        # engines agree on every counter: pair object/fast payloads of
        # the same (scheme, workload) point
        half = len(grid) // 2
        for obj, fast in zip(payloads[:half], payloads[half:]):
            assert obj["summary"] == fast["summary"], (obj, fast)
            assert obj["cycles"] == fast["cycles"]

        views = {v["id"]: v for v in client.jobs()}
        assert sorted(v["source"] for v in views.values()) == \
            ["run"] * len(grid)

        # -- resubmission: storage hit, identical bytes -----------------
        d0 = recipe_to_dict(grid[0])
        first_id = client.jobs()[0]["id"]
        dupe = client.submit(d0)
        assert dupe["state"] == "done"
        assert dupe["source"] in ("memo", "disk")
        assert client.result_bytes(dupe["id"]) == \
            client.result_bytes(first_id)

        # -- concurrent clients: one execution, ledger-proven -----------
        race = RunRecipe(small_workload(7, length=900), "qbs",
                         small_config("object"))
        race_dict = recipe_to_dict(race)
        outcomes: list = [None] * 3

        def racer(i: int) -> None:
            c = ServiceClient(server.url, timeout=180.0)
            final = c.wait(c.submit(race_dict)["id"], timeout=180.0)
            outcomes[i] = (final["source"],
                           c.result_bytes(final["id"]))

        threads = [threading.Thread(target=racer, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
        assert all(o is not None for o in outcomes), "racer timed out"
        sources = sorted(s for s, _ in outcomes)
        assert sources.count("run") == 1, sources
        assert len({p for _, p in outcomes}) == 1, "payloads differ"
        race_records = [r.source for r in read_ledger()
                        if r.recipe_key == race.key()]
        assert sorted(race_records).count("run") == 1, race_records
        assert len(race_records) == 3, race_records

        # -- structured rejections --------------------------------------
        for mutate, want_field in (
            (lambda d: d["config"].__setitem__("engine", "warp"),
             "config.engine"),
            (lambda d: d.__setitem__("scheme", "nonesuch"), "scheme"),
        ):
            bad = recipe_to_dict(grid[0])
            bad["config"] = dict(bad["config"])
            mutate(bad)
            try:
                client.submit(bad)
                raise AssertionError("bad recipe must be rejected")
            except ServiceError as err:
                assert err.status == 400, err
                assert err.field == want_field, err

        # -- metrics reconcile ------------------------------------------
        metrics = parse_prometheus(client.metrics())

        def outcome(name: str) -> int:
            return metrics.get(
                ("repro_service_jobs_total", (("outcome", name),)), 0
            )

        # fresh: the grid + the race primary; memo/disk: dupe + 2 racers
        assert outcome("fresh") == len(grid) + 1, metrics
        assert outcome("memo") + outcome("disk") == 3
        assert outcome("rejected") == 2
        assert outcome("failed") == 0
        assert metrics[("repro_service_jobs_inflight", ())] == 0
        assert ("repro_ledger_records", ()) in metrics

        # -- ledger growth accounting -----------------------------------
        grown = len(read_ledger()) - start
        # grid (fresh) + dupe + race (1 run + 2 cache hits)
        expected = len(grid) + 1 + 3
        assert grown == expected, (grown, expected)
    finally:
        server.close()

    print(
        f"service smoke: {expected} resolution(s) over HTTP at "
        f"{server.url}, ledger {ledger_path()} grew by {grown}, "
        f"one execution per key, both engines agree"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
