#!/usr/bin/env python3
"""CI large-trace smoke: the out-of-core pipeline end to end.

Builds a multi-core workload, round-trips it through the gzip text and
chunked binary trace formats, then runs it four ways and demands
bit-identical statistics:

1. in memory (the reference),
2. streamed from the ``tracebin`` file,
3. streamed with checkpointing on, interrupted (``stop_after``) and
   resumed -- twice, so a resumed run is itself interrupted and resumed
   again (the sharded-across-sessions shape),
4. via a :class:`~repro.sim.tracebin.TraceRef` recipe (the cache-key
   path), on both engines.

Exits non-zero on the first divergence.  Scale with ``--accesses``:

    PYTHONPATH=src python scripts/trace_smoke.py --accesses 40000
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
from pathlib import Path


def signature(result):
    return (
        dataclasses.asdict(result.stats),
        result.cycles,
        result.energy.total_energy_pj() if result.energy else None,
        result.telemetry.series.to_dict() if result.telemetry else None,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=40_000,
                        help="accesses per core (default 40000)")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--chunk-records", type=int, default=4096)
    args = parser.parse_args(argv)

    from repro.params import scaled_config
    from repro.sim.checkpoint import SimulationInterrupted
    from repro.sim.engine import run_workload
    from repro.sim.parallel import RunRecipe, fetch_or_run
    from repro.sim.tracebin import (
        convert_text_trace,
        make_trace_ref,
        open_trace,
    )
    from repro.sim.tracefile import save_workload
    from repro.workloads import homogeneous_mix

    config = scaled_config("256KB", cores=args.cores)
    wl = homogeneous_mix("xalancbmk.2", cores=args.cores,
                         n_accesses=args.accesses)
    total = wl.total_accesses()
    run_kwargs = dict(scheme_name="ziv:notinprc", telemetry="5000")

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        text = tmp / "smoke.trace.gz"
        binary = tmp / "smoke.tracebin"
        save_workload(wl, text)
        info = convert_text_trace(text, binary,
                                  chunk_records=args.chunk_records)
        assert info["fingerprint"] == wl.fingerprint(), (
            "conversion changed the content fingerprint"
        )
        print(f"converted: {info['records']} records, {info['chunks']} "
              f"chunks, {info['bytes']} bytes")

        print(f"[1/4] in-memory run ({total} accesses)")
        base = run_workload(config, wl, **run_kwargs)
        base_sig = signature(base)

        print("[2/4] streamed run")
        with open_trace(binary) as bw:
            streamed = run_workload(config, bw, **run_kwargs)
        assert signature(streamed) == base_sig, (
            "streamed run diverged from in-memory run"
        )

        print("[3/4] streamed run, interrupted twice and resumed")
        ckpt = tmp / "smoke.ckpt"
        legs = 0
        resume = None
        stops = [total // 3, 2 * total // 3, None]
        result = None
        for stop in stops:
            with open_trace(binary) as bw:
                try:
                    result = run_workload(
                        config, bw,
                        checkpoint_path=ckpt,
                        stop_after=stop,
                        resume_from=resume,
                        **run_kwargs,
                    )
                    break
                except SimulationInterrupted as interrupted:
                    legs += 1
                    resume = ckpt
                    print(f"  leg {legs}: checkpointed at "
                          f"{interrupted.accesses_done}/{total}")
        assert result is not None, "smoke run never completed"
        assert legs == 2, f"expected 2 interrupted legs, got {legs}"
        assert signature(result) == base_sig, (
            "checkpoint-kill-resume run diverged from in-memory run"
        )

        print("[4/4] TraceRef recipes on both engines")
        ref = make_trace_ref(binary)
        for engine in ("object", "fast"):
            recipe = RunRecipe(
                workload=ref,
                scheme="ziv:notinprc",
                config=config.replace(
                    engine=engine,
                    telemetry=base.telemetry.params,
                ),
            )
            result = fetch_or_run(recipe)
            assert signature(result) == base_sig, (
                f"TraceRef run on {engine} engine diverged"
            )

    print("trace smoke: all runs bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
