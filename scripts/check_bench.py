#!/usr/bin/env python
"""Validate the unified BENCH_*.json schema.

Every committed benchmark report -- and every report a benchmark script
emits from now on -- must carry the keys ``repro obs regress`` consumes:

* ``bench``        -- the benchmark family name (string);
* ``cpus``         -- host CPU count the rates were measured on (int,
                      positive); absolute rates only transfer between
                      hosts with matching counts, so regress skips
                      mismatches *by reading this field*;
* ``methodology``  -- one-sentence note on how the numbers were taken
                      (fresh hierarchy?  best-of-N?  scale?), so a
                      future reader can tell whether two reports are
                      comparable at all;
* at least one *directional* throughput metric: a key ending in
  ``_per_s``, containing ``speedup``, or containing ``overhead``
  (see ``repro.obs.regress.metric_direction``).

Exit 0 when every file conforms, 1 otherwise (listing each problem).

Usage::

    python scripts/check_bench.py [FILE_OR_GLOB ...]   # default BENCH_*.json
"""

from __future__ import annotations

import glob
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.regress import metric_direction  # noqa: E402

REQUIRED = {
    "bench": str,
    "cpus": int,
    "methodology": str,
}


def check_report(path: str, data: object) -> list:
    problems = []
    if not isinstance(data, dict):
        return [f"{path}: report must be a JSON object"]
    for key, kind in sorted(REQUIRED.items()):
        value = data.get(key)
        if value is None:
            problems.append(f"{path}: missing required key {key!r}")
        elif not isinstance(value, kind) or isinstance(value, bool):
            problems.append(
                f"{path}: {key!r} must be {kind.__name__}, "
                f"got {type(value).__name__}"
            )
        elif kind is int and value <= 0:
            problems.append(f"{path}: {key!r} must be positive")
        elif kind is str and not value.strip():
            problems.append(f"{path}: {key!r} must be non-empty")
    directional = [k for k in data if metric_direction(k) is not None]
    if not directional:
        problems.append(
            f"{path}: no directional throughput metric (need a key "
            f"ending in _per_s, or containing speedup/overhead)"
        )
    return problems


def main(argv=None) -> int:
    patterns = (argv if argv else None) or ["BENCH_*.json"]
    paths: list = []
    for pattern in patterns:
        matches = sorted(glob.glob(pattern))
        paths.extend(matches if matches else [pattern])
    if not paths:
        print("no bench reports found", file=sys.stderr)
        return 1
    problems = []
    for path in paths:
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{path}: {exc}")
            continue
        problems.extend(check_report(path, data))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"{len(paths)} bench report(s) conform to the unified "
              f"schema")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
