#!/usr/bin/env python3
"""Run the repo's static-analysis pass without an installed package.

Equivalent to ``PYTHONPATH=src python -m repro lint``; exists so CI and
pre-commit hooks have a single-file entry point that works from a bare
checkout.

Usage:  python scripts/run_lint.py [paths...] [--format=json]
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
