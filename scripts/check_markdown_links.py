#!/usr/bin/env python3
"""Validate relative links and intra-repo anchors in the repo's *.md files.

Checks, for every tracked markdown file:

* ``[text](relative/path)`` — the target file/directory exists;
* ``[text](path#anchor)`` / ``[text](#anchor)`` — the target file has a
  heading whose GitHub slug equals the anchor;
* bare intra-repo references in inline code are NOT checked (they name
  modules, not files).

External links (http/https/mailto) are intentionally skipped: CI must
not depend on the network.  Exit status: 0 clean, 1 with a report of
every broken link.

Usage:  python scripts/check_markdown_links.py [root]
"""

from __future__ import annotations

import pathlib
import re
import sys

# Skip link targets with a scheme (http:, https:, mailto:, ...).
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

# [text](target) -- won't match images' leading "!" capture, which is fine
# (image targets get the same existence check).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")

_CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for ASCII docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # strip links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set:
    """Every heading anchor a markdown file exposes."""
    slugs: dict = {}
    in_fence = False
    for line in path.read_text(errors="replace").splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING.match(line)
        if m:
            slug = github_slug(m.group(2))
            n = slugs.get(slug, 0)
            slugs[slug] = n + 1
    out = set()
    for slug, count in slugs.items():
        out.add(slug)
        for i in range(1, count):
            out.add(f"{slug}-{i}")
    return out


def links_in(path: pathlib.Path):
    """(line_number, target) for every markdown link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(errors="replace").splitlines(), 1
    ):
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK.finditer(line):
            yield lineno, m.group(1)


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    problems = []
    for lineno, target in links_in(path):
        if _EXTERNAL.match(target) or target.startswith("//"):
            continue
        base, _, anchor = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: "
                    f"broken link target {base!r}"
                )
                continue
        else:
            resolved = path
        if anchor:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # anchors into non-markdown are out of scope
            if anchor.lower() not in heading_slugs(resolved):
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: missing anchor "
                    f"#{anchor} in {resolved.relative_to(root)}"
                )
    return problems


def markdown_files(root: pathlib.Path) -> list:
    skip_parts = {".git", ".repro_cache", "node_modules", "__pycache__"}
    return sorted(
        p for p in root.rglob("*.md")
        if not (set(p.relative_to(root).parts[:-1]) & skip_parts)
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0] if argv else ".").resolve()
    problems = []
    files = markdown_files(root)
    for path in files:
        problems.extend(check_file(path, root))
    if problems:
        print(f"{len(problems)} broken markdown link(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"{len(files)} markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
