#!/usr/bin/env python
"""CI observability smoke: exercise the ledger end to end.

Runs a small recipe grid on both engines (fresh, then cache-resolved),
then asserts the observability stack's core guarantees:

* every resolution appended exactly one ledger record, with the right
  provenance (``run`` then ``memo``) and a non-zero rate on fresh runs;
* records round-trip bit-identically through their canonical JSON line
  form *and* through the Prometheus exposition (floats use shortest
  round-trip formatting);
* the profiled run reports phase times and a counter attribution that
  is identical across engines;
* ``run_regress`` over the fresh ledger produces a report without
  errors (the CI regression *gate* is a separate ``repro obs regress
  --check`` invocation against the committed BENCH history).

Exit 0 on success; any assertion failure is a non-zero exit.

Usage::

    REPRO_CACHE_DIR=$(mktemp -d) python scripts/obs_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.ledger import (  # noqa: E402
    LedgerRecord,
    ledger_path,
    read_ledger,
)
from repro.obs.registry import (  # noqa: E402
    parse_prometheus,
    registry_from_ledger,
)
from repro.obs.regress import run_regress  # noqa: E402
from repro.params import (  # noqa: E402
    CacheGeometry,
    DirectoryGeometry,
    LLCGeometry,
    SystemConfig,
)
from repro.sim.engine import run_workload  # noqa: E402
from repro.sim.parallel import RunRecipe, run_many  # noqa: E402
from repro.sim.trace import (  # noqa: E402
    CoreTrace,
    TraceRecord,
    Workload,
)


def small_config(engine: str = "object") -> SystemConfig:
    return SystemConfig(
        cores=2,
        l1=CacheGeometry(sets=1, ways=2),
        l2=CacheGeometry(sets=2, ways=4),
        llc=LLCGeometry(banks=2, sets_per_bank=4, ways=4),
        directory=DirectoryGeometry(sets=2, ways=8),
        engine=engine,
    )


def small_workload(k: int = 0, length: int = 600) -> Workload:
    traces = [
        CoreTrace(
            [TraceRecord(1, (c + 1) * 256 + (i * (k + 2)) % 48,
                         i % 5 == 0, i % 4) for i in range(length)]
        )
        for c in range(2)
    ]
    return Workload(traces, f"smoke-wl{k}")


def main() -> int:
    start = len(read_ledger())

    # -- a small grid on both engines, fresh then cache-resolved -------
    recipes = [
        RunRecipe(small_workload(k), scheme, small_config(engine))
        for engine in ("object", "fast")
        for scheme in ("inclusive", "ziv:notinprc")
        for k in range(2)
    ]
    results = run_many(recipes)
    rerun = run_many(recipes)
    assert len(results) == len(rerun) == len(recipes)

    records = read_ledger()[start:]
    assert len(records) == 2 * len(recipes), (
        f"expected {2 * len(recipes)} ledger records, got {len(records)}"
    )
    fresh = records[: len(recipes)]
    cached = records[len(recipes):]
    assert all(r.source == "run" and not r.cache_hit for r in fresh)
    assert all(r.source == "memo" and r.cache_hit for r in cached)
    assert all(r.wall_s > 0 and r.accesses_per_s > 0 for r in fresh)
    assert {r.engine for r in fresh} == {"object", "fast"}
    assert {r.recipe_key for r in fresh} == {r.key() for r in recipes}

    # -- JSON-line round trip is bit-identical --------------------------
    for rec in records:
        line = rec.to_json_line()
        assert LedgerRecord.from_json_line(line) == rec
        assert LedgerRecord.from_json_line(line).to_json_line() == line

    # -- Prometheus exposition round trip is exact ----------------------
    registry = registry_from_ledger(records)
    parsed = parse_prometheus(registry.to_prometheus())
    for engine in ("object", "fast"):
        best = max(
            r.accesses_per_s for r in fresh if r.engine == engine
        )
        key = ("repro_best_accesses_per_s", (("engine", engine),))
        assert parsed[key] == best, (engine, parsed[key], best)
    assert parsed[("repro_ledger_records", ())] == len(records)

    # -- profiler: phases on both engines, engine-invariant attribution
    wl = small_workload(9)
    profiled = {
        engine: run_workload(small_config(engine), wl, "inclusive",
                             profile="on")
        for engine in ("object", "fast")
    }
    for engine, result in profiled.items():
        p = result.profile
        assert p is not None and p.engine == engine
        assert p.phase_s.get("access_loop", 0.0) > 0.0
    assert (
        profiled["object"].profile.attribution
        == profiled["fast"].profile.attribution
    )

    # -- the regress machinery runs clean over what we just recorded ----
    report = run_regress(ledger_records=read_ledger())
    assert not report.errors, report.errors

    print(
        f"obs smoke: {len(records) + 2} ledger record(s) in "
        f"{ledger_path()}, round-trips exact, profiler live on both "
        f"engines"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
