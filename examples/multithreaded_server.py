#!/usr/bin/env python3
"""Multi-threaded and server workloads (a miniature of the paper's
Figs. 16-17).

Runs the PARSEC/SPEC-OMP-like shared-memory applications on the 8-core
machine and the TPC-E-like profile on the scaled many-core machine, under
the inclusive baseline, the non-inclusive LLC, QBS, and ZIV.

Observations to look for (mirroring the paper):
* canneal/facesim/vips are barely sensitive to inclusion victims;
* QBS can fall *below* the inclusive baseline on LLC-reuse-heavy apps
  (it sacrifices LLC hits to protect private copies);
* applu and TPC-E reward the ZIV designs.

Run:  python examples/multithreaded_server.py [accesses]
"""

import sys

from repro import (
    mix_speedup,
    multithreaded_workload,
    run_workload,
    scaled_config,
    scaled_manycore_config,
)


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    schemes = (
        ("inclusive", "I"),
        ("noninclusive", "NI"),
        ("qbs", "QBS"),
        ("ziv:mrlikelydead", "ZIV-MRLikelyDead"),
    )
    print(f"{'app':10s}" + "".join(f"{label:>18s}" for _s, label in schemes))

    for app in ("canneal", "facesim", "vips", "applu"):
        cfg = scaled_config("512KB")
        wl = multithreaded_workload(app, cores=cfg.cores, n_accesses=accesses)
        base = run_workload(cfg, wl, "inclusive", "hawkeye")
        cells = []
        for scheme, _label in schemes:
            r = run_workload(cfg, wl, scheme, "hawkeye")
            cells.append(f"{mix_speedup(base, r):>18.3f}")
        print(f"{app:10s}" + "".join(cells))

    cfg = scaled_manycore_config()
    wl = multithreaded_workload("tpce", cores=cfg.cores, n_accesses=accesses)
    base = run_workload(cfg, wl, "inclusive", "hawkeye")
    cells = []
    for scheme, _label in schemes:
        r = run_workload(cfg, wl, scheme, "hawkeye")
        cells.append(f"{mix_speedup(base, r):>18.3f}")
    print(f"{'tpce(16c)':10s}" + "".join(cells))
    print("\n(speedup per app normalised to its own inclusive baseline)")


if __name__ == "__main__":
    main()
