#!/usr/bin/env python3
"""Workload anatomy: why the synthetic suite reproduces the paper's
phenomena.

Characterises a spread of the SPEC-2017-like profiles (footprint, reuse
distances, write ratios) against the scaled cache capacities, then shows
the causal chain the paper builds on:

* applications whose reuse fits the private L2 become *victims* of
  inclusion victims;
* circular applications whose reuse exceeds the LLC share make MIN-leaning
  policies victimise recently used (privately cached) blocks;
* streaming applications inflict the evictions.

Run:  python examples/workload_anatomy.py
"""

from repro import scaled_config
from repro.workloads import build_trace
from repro.workloads.analysis import format_profile_table, profile_trace


def main() -> None:
    config = scaled_config("512KB")
    l2 = config.l2.blocks
    llc_share = config.llc.blocks // config.cores
    print(
        f"scaled capacities: L1={config.l1.blocks}  L2={l2}  "
        f"LLC share/core={llc_share}  LLC={config.llc.blocks} blocks\n"
    )

    picks = (
        "exchange2.2",  # L1/L2-resident victim app
        "leela.2",
        "gcc.2",        # mostly L2-resident
        "xalancbmk.2",  # the circular troublemaker
        "bwaves.2",     # large circular
        "mcf.2",        # pointer chase
        "lbm.2",        # pure streaming
    )
    profiles = [profile_trace(build_trace(p, 4000, seed=1)) for p in picks]
    print(format_profile_table(profiles))

    print(
        f"\n{'trace':16s} {'fits L2':>8s} {'fits LLC share':>14s} "
        f"{'role in the mix'}"
    )
    roles = {
        "exchange2.2": "victim of inclusion victims",
        "leela.2": "victim of inclusion victims",
        "gcc.2": "mixed",
        "xalancbmk.2": "makes MIN/Hawkeye victimise live blocks",
        "bwaves.2": "makes MIN/Hawkeye victimise live blocks",
        "mcf.2": "inflicts LLC evictions",
        "lbm.2": "inflicts LLC evictions",
    }
    for p in profiles:
        in_l2 = p.reuse_fraction_within(l2)
        in_llc = p.reuse_fraction_within(llc_share)
        print(
            f"{p.name:16s} {in_l2:>8.2f} {in_llc:>14.2f} {roles[p.name]}"
        )
    print(
        "\n('fits' columns: fraction of reuses whose LRU stack distance "
        "is below the capacity)"
    )


if __name__ == "__main__":
    main()
