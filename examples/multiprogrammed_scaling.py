#!/usr/bin/env python3
"""L2-capacity scaling study on a small mix population (a miniature of the
paper's Figs. 8 and 11).

Shows the paper's central claim: as the private L2 grows toward half the
LLC, the baseline inclusive design stagnates while the ZIV designs keep
tracking (or beating) the non-inclusive LLC -- with a hard guarantee of
zero inclusion victims.

Run:  python examples/multiprogrammed_scaling.py [n_mixes] [accesses]
"""

import sys

from repro import (
    heterogeneous_mixes,
    mix_speedup,
    geomean,
    run_workload,
    scaled_config,
)


def main() -> None:
    n_mixes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    mixes = heterogeneous_mixes(n_mixes=n_mixes, n_accesses=accesses)

    baseline = [
        run_workload(scaled_config("256KB"), wl, "inclusive", "lru")
        for wl in mixes
    ]

    matrix = (
        ("inclusive", "lru", "I-LRU"),
        ("noninclusive", "lru", "NI-LRU"),
        ("ziv:likelydead", "lru", "ZIV-LikelyDead"),
        ("inclusive", "hawkeye", "I-Hawkeye"),
        ("noninclusive", "hawkeye", "NI-Hawkeye"),
        ("ziv:mrlikelydead", "hawkeye", "ZIV-MRLikelyDead"),
    )
    print(f"{'design':18s}" + "".join(f"{l2:>10s}" for l2 in
                                      ("256KB", "512KB", "768KB")))
    for scheme, policy, label in matrix:
        row = [label]
        for l2 in ("256KB", "512KB", "768KB"):
            cfg = scaled_config(l2)
            runs = [run_workload(cfg, wl, scheme, policy) for wl in mixes]
            sp = geomean(mix_speedup(b, r) for b, r in zip(baseline, runs))
            row.append(f"{sp:>10.3f}")
        print(f"{row[0]:18s}" + "".join(row[1:]))
    print(
        "\n(speedup normalised to I-LRU @ 256KB; larger is better; the "
        "paper's shape: ZIV tracks NI while inclusive baselines sag)"
    )


if __name__ == "__main__":
    main()
