#!/usr/bin/env python3
"""Prime+probe across the shared LLC: inclusion victims as a side channel.

Reproduces the paper's Section I-A security motivation.  An attacker on
core 0 primes an LLC set and then probes it; a victim on core 1 performs a
secret-dependent access in between.  With a baseline inclusive LLC the
prime back-invalidates the victim's private copy, so the secret access is
forced through the LLC and the probe observes it: the channel is
noise-free.  With the ZIV LLC the victim's block is *relocated* instead of
evicted, its private copy survives, and the attacker learns nothing --
exactly the isolation a non-inclusive LLC offers, without giving up
inclusivity.

Run:  python examples/side_channel.py [trials]
"""

import sys

from repro.params import scaled_config
from repro.security import prime_probe_experiment


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    config = scaled_config("512KB")
    print(f"prime+probe campaign: {trials} trials per design\n")
    print(
        f"{'design':18s} {'accuracy':>9s} {'signal misses':>14s} "
        f"{'noise misses':>13s}  verdict"
    )
    for scheme in (
        "inclusive",
        "qbs",
        "sharp",
        "ziv:notinprc",
        "ziv:mrlikelydead",
        "noninclusive",
    ):
        policy = "hawkeye" if scheme == "ziv:mrlikelydead" else "lru"
        r = prime_probe_experiment(
            config, scheme, llc_policy=policy, trials=trials
        )
        verdict = "LEAKS" if r.leaks else "blind (guessing)"
        print(
            f"{scheme:18s} {r.accuracy:>9.2f} {r.signal_probe_misses:>14d} "
            f"{r.noise_probe_misses:>13d}  {verdict}"
        )
    print(
        "\naccuracy 1.0 = every secret bit recovered; 0.5 = attacker is "
        "reduced to coin flips"
    )

    from repro.security import (
        evict_reload_experiment,
        relocation_latency_probe,
    )

    print("\n-- Evict+Reload (shared-memory variant) --")
    for scheme in ("inclusive", "ziv:notinprc", "noninclusive"):
        r = evict_reload_experiment(config, scheme, trials=trials)
        verdict = "LEAKS" if r.leaks else "blind"
        print(f"{scheme:18s} accuracy={r.accuracy:.2f}  {verdict}")

    print(
        "\n-- Relocated-access latency channel (paper III-C1) --\n"
        "jitter  reloc_mean  normal_mean  distinguisher  channel"
    )
    for sigma in (0.0, 1.0, 2.0, 4.0):
        r = relocation_latency_probe(config, samples=48, jitter_sigma=sigma)
        state = "OPEN" if r.channel_open else "closed"
        print(
            f"{sigma:>6.1f}  {r.relocated_mean:>10.1f}  "
            f"{r.normal_mean:>11.1f}  {r.distinguisher_accuracy:>13.2f}  "
            f"{state}"
        )
    print(
        "\nThe 1-3 cycle relocated-access delta is a real signal on a "
        "noiseless machine but drowns once measurement jitter reaches the "
        "delta's own magnitude -- the paper's III-C1 argument, quantified."
    )


if __name__ == "__main__":
    main()
