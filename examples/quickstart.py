#!/usr/bin/env python3
"""Quickstart: build a CMP, run one workload under three LLC designs, and
watch the ZIV LLC eliminate inclusion victims.

The workload is the paper's Section I-A troublemaker: a circular access
pattern whose footprint exceeds the per-core LLC share, mixed with a
cache-resident application that becomes the *victim* of the circular
application's LLC evictions.

Run:  python examples/quickstart.py
"""

from repro import scaled_config, run_workload
from repro.sim.trace import Workload
from repro.workloads import build_trace


def main() -> None:
    config = scaled_config("512KB")
    print(
        f"CMP: {config.cores} cores, "
        f"L2 {config.l2.blocks} blocks/core, "
        f"LLC {config.llc.blocks} blocks "
        f"({config.llc.banks} banks x {config.llc.ways}-way), "
        f"sparse directory {config.directory_provisioning:.1f}x"
    )

    # Half the cores run a circular (MIN-hostile) application, the other
    # half a small cache-resident one -- the classic inclusion-victim mix.
    traces = []
    for core in range(config.cores):
        app = "bwaves.2" if core % 2 == 0 else "leela.2"
        traces.append(
            build_trace(
                app, 6000, base_addr=(core + 1) << 24, seed=core, name=app
            )
        )
    workload = Workload(traces, name="quickstart-mix")

    print(f"\nworkload: {workload.describe()}\n")
    header = (
        f"{'design':24s} {'LLC misses':>10s} {'incl.victims':>12s} "
        f"{'relocations':>11s} {'cycles':>9s}"
    )
    print(header)
    print("-" * len(header))
    for scheme, policy in (
        ("inclusive", "lru"),
        ("inclusive", "hawkeye"),
        ("noninclusive", "hawkeye"),
        ("ziv:mrlikelydead", "hawkeye"),
    ):
        result = run_workload(config, workload, scheme, llc_policy=policy)
        s = result.stats
        print(
            f"{scheme + '/' + policy:24s} {s.llc_misses:>10d} "
            f"{s.inclusion_victims_llc:>12d} {s.relocations:>11d} "
            f"{result.cycles:>9d}"
        )
    print(
        "\nThe ZIV design reports zero LLC-replacement inclusion victims "
        "by construction -- the paper's headline guarantee."
    )


if __name__ == "__main__":
    main()
