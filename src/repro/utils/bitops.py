"""Bit-manipulation primitives, including the paper's Algorithm 1.

The property vector (PV) of an LLC bank is a bitmask with one bit per set.
Algorithm 1 of the paper computes the *decoded nextRS*: a one-hot mask
selecting the next set bit of the PV in round-robin order after the
currently used relocation set.  The hardware uses the classic
two's-complement trick ``x & (~x + 1)`` to isolate the lowest set bit; we
mirror that logic exactly on Python integers (masked to the vector width)
so that unit tests can validate it against a naive scan.
"""

from __future__ import annotations


def lowest_set_bit(x: int) -> int:
    """Isolate the lowest set bit of ``x`` (0 if ``x`` == 0)."""
    return x & -x


def encode_onehot(position: int) -> int:
    """One-hot mask with a single bit at ``position``."""
    if position < 0:
        raise ValueError("position must be non-negative")
    return 1 << position


def decode_onehot(onehot: int) -> int:
    """Bit position of a one-hot mask (-1 for the zero mask)."""
    if onehot == 0:
        return -1
    if onehot & (onehot - 1):
        raise ValueError(f"{onehot:#x} is not one-hot")
    return onehot.bit_length() - 1


def decoded_next_rs(pv: int, decoded_rs: int, width: int) -> int:
    """Paper Algorithm 1: compute the decoded nextRS.

    ``pv`` is the property vector (bit i set => set i satisfies the
    property), ``decoded_rs`` is the one-hot mask of the current relocation
    set (0 if none has been used yet), and ``width`` is the number of sets.
    Returns a one-hot mask of the next eligible set in round-robin order,
    or 0 if the PV is empty.

    The round-robin wraps: if the only set bit of the PV is at or below the
    current position, the scan wraps to the lowest set bit overall (lines
    5-7 of Algorithm 1).
    """

    full = (1 << width) - 1
    pv &= full
    decoded_rs &= full
    if pv == 0:
        return 0
    if decoded_rs == 0:
        # No current RS: the mask degenerates and the lowest set bit wins.
        return lowest_set_bit(pv)
    # mask = 11...100...0 with the 0->1 crossover right after the current RS
    mask = ((~decoded_rs + 1) & ~decoded_rs) & full
    upper_pv = pv & mask
    lower_pv = pv & ~mask & full
    decoded_next_upper = lowest_set_bit(upper_pv)
    decoded_next_lower = lowest_set_bit(lower_pv)
    if decoded_next_upper == 0:
        return decoded_next_lower
    return decoded_next_upper


def naive_next_rs(pv: int, current_pos: int, width: int) -> int:
    """Reference implementation of Algorithm 1 by linear scan.

    Returns the *position* of the next set bit strictly after
    ``current_pos`` in round-robin order (wrapping), or -1 if ``pv`` is
    empty.  Used only by tests to validate :func:`decoded_next_rs`.
    """

    if pv == 0:
        return -1
    for offset in range(1, width + 1):
        pos = (current_pos + offset) % width
        if pv & (1 << pos):
            return pos
    return -1
