"""Small generic helpers (bit manipulation, RNG seeding)."""

from repro.utils.bitops import (
    decoded_next_rs,
    decode_onehot,
    encode_onehot,
    lowest_set_bit,
)

__all__ = [
    "decoded_next_rs",
    "decode_onehot",
    "encode_onehot",
    "lowest_set_bit",
]
