"""Baseline inclusive LLC: evictions back-invalidate private copies."""

from __future__ import annotations

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext
from repro.schemes.base import InclusionScheme


class InclusiveScheme(InclusionScheme):
    """The classic inclusive LLC (paper Section I).

    On a fill, the baseline replacement policy picks the victim from the
    target set; if the victim has privately cached copies, they are
    forcefully invalidated (back-invalidation), producing inclusion
    victims.
    """

    name = "inclusive"
    inclusive = True

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        bank = self.cmp.llc.bank_of(addr)
        set_idx = self.cmp.llc.set_of(addr)
        return self._baseline_fill(bank, set_idx, addr, ctx, back_invalidate=True)
