"""The other two TLA techniques: TLH and ECI (Jaleel et al., MICRO 2010).

The paper's Related Work describes all three Temporal-Locality-Aware
inclusive-cache techniques; QBS (the best, and the one the paper evaluates)
lives in :mod:`repro.schemes.qbs`.  For completeness and for ablation
benches we also implement:

* **TLH (temporal locality hints)** -- the private caches send hints about
  their hits so the LLC's recency state tracks true temporal locality.
  The cost is enormous hint bandwidth; we model an ideal (every L1/L2 hit
  hints) and a sampled variant via ``hint_rate``.
* **ECI (early core invalidation)** -- on an LLC replacement the *next*
  victim candidate is invalidated early from the core caches (while
  keeping its LLC copy), so a still-live block earns an LLC hit before it
  reaches the victim position and can be protected.  ECI trades extra
  (early) inclusion victims for fewer fatal ones.
"""

from __future__ import annotations

import random

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext
from repro.schemes.base import InclusionScheme


class TLHScheme(InclusionScheme):
    """Inclusive LLC with temporal-locality hints from the private caches.

    The hierarchy calls :meth:`on_private_hit` for every private-cache hit
    (the hint); the scheme promotes the LLC copy's replacement state with
    probability ``hint_rate``."""

    name = "tlh"
    inclusive = True
    wants_private_hit_hints = True

    def __init__(self, hint_rate: float = 1.0, seed: int = 0x71A) -> None:
        super().__init__()
        if not 0.0 <= hint_rate <= 1.0:
            raise ValueError("hint_rate must be within [0, 1]")
        self.hint_rate = hint_rate
        self._rng = random.Random(seed)
        self.hints_sent = 0

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        bank = self.cmp.llc.bank_of(addr)
        set_idx = self.cmp.llc.set_of(addr)
        return self._baseline_fill(bank, set_idx, addr, ctx,
                                   back_invalidate=True)

    def on_private_hit(self, addr: int, ctx: AccessContext) -> None:
        if self.hint_rate < 1.0 and self._rng.random() >= self.hint_rate:
            return
        bank, set_idx, way = self.cmp.llc.location(addr)
        if way >= 0:
            self.cmp.llc.banks[bank].policy.on_hit(set_idx, way, ctx)
            self.hints_sent += 1

    def on_stats(self) -> dict:
        return {"hints_sent": self.hints_sent}


class ECIScheme(InclusionScheme):
    """Inclusive LLC with early core invalidation.

    After the normal (back-invalidating) replacement, the next victim
    candidate's private copies are invalidated early.  If the block is
    still live, the core's next access to it hits in the LLC, refreshing
    its replacement state and saving it from the real eviction that would
    otherwise follow."""

    name = "eci"
    inclusive = True

    def __init__(self) -> None:
        super().__init__()
        self.early_invalidations = 0

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        cmp = self.cmp
        bank = cmp.llc.bank_of(addr)
        set_idx = cmp.llc.set_of(addr)
        cache = cmp.llc.banks[bank]
        way = cache.find_invalid_way(set_idx)
        if way >= 0:
            return self._install_into(bank, set_idx, way, addr, ctx)
        way = cache.policy.victim(set_idx, ctx)
        victim = cache.blocks[set_idx][way]
        cmp.back_invalidate(victim.addr, reason="llc")
        self._evict_clean_or_writeback(bank, set_idx, way, ctx)
        blk = self._install_into(bank, set_idx, way, addr, ctx)
        self._early_invalidate_next(bank, set_idx, ctx, exclude_way=way)
        return blk

    def _early_invalidate_next(
        self, bank: int, set_idx: int, ctx: AccessContext, exclude_way: int
    ) -> None:
        cache = self.cmp.llc.banks[bank]
        for way in cache.ranked_victims(set_idx, ctx):
            if way == exclude_way:
                continue
            candidate = cache.blocks[set_idx][way]
            if self.cmp.privately_cached(candidate.addr):
                # Early invalidation: kill the private copies but KEEP the
                # LLC copy so a live block can still earn an LLC hit.
                self.cmp.back_invalidate(candidate.addr, reason="llc")
                candidate.not_in_prc = True
                self.early_invalidations += 1
            break

    def on_stats(self) -> dict:
        return {"early_invalidations": self.early_invalidations}
