"""Inclusion-scheme interface.

A scheme owns the LLC fill path: given a block to install, it selects the
victim, performs any back-invalidations / relocations / writebacks through
the hierarchy's helpers, and installs the new block.  Schemes also receive
content-change notifications so that designs maintaining per-set metadata
(the ZIV property vectors) can stay coherent.
"""

from __future__ import annotations

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext


class InclusionScheme:
    """Strategy for LLC victim selection and inclusion maintenance."""

    name = "abstract"
    inclusive = True
    #: Whether the scheme consumes CHAR dead-block inference hints.
    needs_char = False
    #: Whether the scheme guarantees zero LLC-eviction inclusion victims
    #: (the ZIV invariant; audited by :mod:`repro.sim.audit`).
    zero_inclusion_victims = False

    def __init__(self) -> None:
        self.cmp = None

    def bind(self, cmp) -> None:
        """Attach to a :class:`~repro.hierarchy.cmp.CacheHierarchy`."""
        if self.cmp is not None:
            raise RuntimeError("scheme already bound")
        self.cmp = cmp

    # -- the fill path -----------------------------------------------------------

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        """Install ``addr`` into the LLC, making room as the scheme
        dictates.  Must leave the hierarchy consistent."""
        raise NotImplementedError

    # -- notifications (default: no-op) --------------------------------------------

    def after_set_update(self, bank: int, set_idx: int) -> None:
        """The contents, flags, or replacement order of (bank, set)
        changed.  ZIV refreshes its property vectors here."""

    def on_stats(self) -> dict:
        """Scheme-specific statistics for reporting."""
        return {}

    # -- shared helpers -------------------------------------------------------------

    def _install_into(
        self, bank: int, set_idx: int, way: int, addr: int, ctx: AccessContext
    ) -> CacheBlock:
        blk = self.cmp.llc.banks[bank].install(set_idx, way, addr, ctx)
        self.after_set_update(bank, set_idx)
        return blk

    def _evict_clean_or_writeback(
        self, bank: int, set_idx: int, way: int, ctx: AccessContext
    ) -> CacheBlock:
        """Evict (bank, set, way) from the LLC; forward dirty data to
        memory.  Does not touch the directory or private caches."""
        blk = self.cmp.llc.banks[bank].evict_way(set_idx, way, ctx)
        if blk.dirty:
            self.cmp.writeback_to_memory(blk.addr, ctx)
        return blk

    def _baseline_fill(
        self, bank: int, set_idx: int, addr: int, ctx: AccessContext,
        back_invalidate: bool,
    ) -> CacheBlock:
        """The canonical fill: invalid way if any, else the baseline
        policy's victim; optionally back-invalidate private copies of the
        victim (the inclusive baseline's behaviour)."""
        cache = self.cmp.llc.banks[bank]
        way = cache.find_invalid_way(set_idx)
        if way < 0:
            way = cache.policy.victim(set_idx, ctx)
            victim = cache.blocks[set_idx][way]
            if back_invalidate:
                self.cmp.back_invalidate(victim.addr, reason="llc")
            self._evict_clean_or_writeback(bank, set_idx, way, ctx)
        return self._install_into(bank, set_idx, way, addr, ctx)
