"""Non-inclusive LLC: evictions leave private copies alone."""

from __future__ import annotations

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext
from repro.schemes.base import InclusionScheme


class NonInclusiveScheme(InclusionScheme):
    """The paper's non-inclusive comparison point (Section I).

    Implements the first inclusion action (allocate on fill) but not the
    second (no back-invalidation).  The hierarchy handles the resulting
    "fourth case" -- directory hit with LLC miss -- by forwarding data from
    a sharer core, which is exactly the coherence complication the paper
    credits inclusive designs with avoiding.
    """

    name = "noninclusive"
    inclusive = False

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        bank = self.cmp.llc.bank_of(addr)
        set_idx = self.cmp.llc.set_of(addr)
        return self._baseline_fill(bank, set_idx, addr, ctx, back_invalidate=False)
