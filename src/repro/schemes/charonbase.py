"""CHARonBase: CHAR-assisted in-set victim choice (paper Section V-A).

If the baseline policy's victim has privately cached copies, victimise
instead the LikelyDead block (per CHAR's inference) that the baseline
policy ranks highest; if the target set holds no LikelyDead block, fall
back to the baseline victim -- possibly generating inclusion victims.  The
paper uses this design to show that a *local* dead-block-assisted choice is
not enough: ZIV's global relocation-set selection beats it as the L2 grows.
"""

from __future__ import annotations

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext
from repro.schemes.base import InclusionScheme


class CHAROnBaseScheme(InclusionScheme):
    name = "charonbase"
    inclusive = True
    needs_char = True

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        cmp = self.cmp
        bank = cmp.llc.bank_of(addr)
        set_idx = cmp.llc.set_of(addr)
        cache = cmp.llc.banks[bank]
        way = cache.find_invalid_way(set_idx)
        if way >= 0:
            return self._install_into(bank, set_idx, way, addr, ctx)

        chosen = cache.policy.victim(set_idx, ctx)
        if cmp.privately_cached(cache.blocks[set_idx][chosen].addr):
            for way in cache.ranked_victims(set_idx, ctx):
                if cache.blocks[set_idx][way].likely_dead:
                    chosen = way
                    break
        victim = cache.blocks[set_idx][chosen]
        cmp.back_invalidate(victim.addr, reason="llc")
        self._evict_clean_or_writeback(bank, set_idx, chosen, ctx)
        return self._install_into(bank, set_idx, chosen, addr, ctx)
