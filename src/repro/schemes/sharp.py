"""SHARP victim selection (Yan et al., ISCA 2017).

SHARP's three-step LLC victim search (paper Section II):

1. prefer a block with **no** private copies;
2. else a block cached privately **only by the requesting core**;
3. else a **random** block (incrementing an alarm counter) -- this step
   generates inclusion victims, so SHARP cannot guarantee freedom from
   them.

Within steps 1 and 2 candidates are considered in the baseline policy's
victimisation order, as the paper prescribes for its evaluation.
"""

from __future__ import annotations

import random

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext
from repro.schemes.base import InclusionScheme


class SHARPScheme(InclusionScheme):
    name = "sharp"
    inclusive = True

    def __init__(self, seed: int = 0x5A4B) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        cmp = self.cmp
        bank = cmp.llc.bank_of(addr)
        set_idx = cmp.llc.set_of(addr)
        cache = cmp.llc.banks[bank]
        way = cache.find_invalid_way(set_idx)
        if way >= 0:
            return self._install_into(bank, set_idx, way, addr, ctx)

        candidates = list(cache.ranked_victims(set_idx, ctx))
        requester_mask = 1 << ctx.core
        chosen = -1
        # Step 1: not resident in any private cache.
        for way in candidates:
            if not cmp.privately_cached(cache.blocks[set_idx][way].addr):
                chosen = way
                break
        if chosen < 0:
            # Step 2: resident only in the requesting core's private cache.
            for way in candidates:
                sharers = cmp.sharer_mask(cache.blocks[set_idx][way].addr)
                if sharers == requester_mask:
                    chosen = way
                    break
        if chosen < 0:
            # Step 3: random victim; raises the alarm counter.
            chosen = self._rng.choice(candidates)
            cmp.stats.sharp_alarms += 1
        victim = cache.blocks[set_idx][chosen]
        cmp.back_invalidate(victim.addr, reason="llc")
        self._evict_clean_or_writeback(bank, set_idx, chosen, ctx)
        return self._install_into(bank, set_idx, chosen, addr, ctx)
