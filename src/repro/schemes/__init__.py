"""LLC inclusion schemes: how the LLC selects victims and treats the
private caches on eviction.

* ``inclusive`` -- baseline inclusive LLC with back-invalidations.
* ``noninclusive`` -- no back-invalidations (implements fill-on-miss only).
* ``qbs`` -- TLA query-based selection (Jaleel et al., MICRO 2010).
* ``sharp`` -- SHARP victim selection (Yan et al., ISCA 2017).
* ``charonbase`` -- CHAR-assisted in-set victim choice (paper Section V-A).
* ``ziv`` -- the paper's contribution, in :mod:`repro.core.ziv`.
"""

from repro.schemes.base import InclusionScheme
from repro.schemes.inclusive import InclusiveScheme
from repro.schemes.noninclusive import NonInclusiveScheme
from repro.schemes.qbs import QBSScheme
from repro.schemes.sharp import SHARPScheme
from repro.schemes.charonbase import CHAROnBaseScheme
from repro.schemes.tla import ECIScheme, TLHScheme

__all__ = [
    "InclusionScheme",
    "InclusiveScheme",
    "NonInclusiveScheme",
    "QBSScheme",
    "SHARPScheme",
    "CHAROnBaseScheme",
    "TLHScheme",
    "ECIScheme",
    "make_scheme",
]


def make_scheme(name: str, **kwargs) -> InclusionScheme:
    """Build an inclusion scheme by name.

    ZIV variants are named ``"ziv:<property>"`` with property one of
    ``notinprc``, ``lrunotinprc``, ``maxrrpvnotinprc``, ``likelydead``,
    ``mrlikelydead`` (see :mod:`repro.core.ziv`).
    """
    from repro.core.ziv import ZIVScheme  # local import to avoid a cycle

    if name.startswith("ziv:"):
        return ZIVScheme(property_name=name.split(":", 1)[1], **kwargs)
    factory = {
        "inclusive": InclusiveScheme,
        "noninclusive": NonInclusiveScheme,
        "qbs": QBSScheme,
        "sharp": SHARPScheme,
        "charonbase": CHAROnBaseScheme,
        "tlh": TLHScheme,
        "eci": ECIScheme,
    }
    try:
        cls = factory[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; known: {sorted(factory)} or 'ziv:<prop>'"
        ) from None
    return cls(**kwargs)
