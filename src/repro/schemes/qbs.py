"""Query-based selection (QBS) from the TLA study (Jaleel et al., MICRO 2010).

QBS queries the private caches before evicting an LLC victim candidate: if
the candidate is privately resident, it is moved to the MRU position and
the next candidate is considered.  The paper notes that with an up-to-date
sparse directory the "query" is a directory lookup (III-A), and that QBS
generalises to any baseline policy by walking candidates in the policy's
victimisation order.  QBS offers **no guarantee**: if every candidate is
privately cached, the baseline victim is evicted and inclusion victims are
generated (these fall out as ``qbs_failures``).
"""

from __future__ import annotations

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext
from repro.schemes.base import InclusionScheme


class QBSScheme(InclusionScheme):
    name = "qbs"
    inclusive = True

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        cmp = self.cmp
        bank = cmp.llc.bank_of(addr)
        set_idx = cmp.llc.set_of(addr)
        cache = cmp.llc.banks[bank]
        way = cache.find_invalid_way(set_idx)
        if way >= 0:
            return self._install_into(bank, set_idx, way, addr, ctx)

        candidates = list(cache.ranked_victims(set_idx, ctx))
        chosen = -1
        for way in candidates:
            victim = cache.blocks[set_idx][way]
            if cmp.privately_cached(victim.addr):
                # Query says resident: protect the block by promotion and
                # try the next candidate.
                cache.promote(set_idx, way, ctx)
                cmp.stats.qbs_retries += 1
            else:
                chosen = way
                break
        if chosen < 0:
            # Every block in the set is privately cached: fall back to the
            # baseline victim and pay the inclusion victims.
            chosen = candidates[0]
            cmp.stats.qbs_failures += 1
            victim = cache.blocks[set_idx][chosen]
            cmp.back_invalidate(victim.addr, reason="llc")
        self._evict_clean_or_writeback(bank, set_idx, chosen, ctx)
        return self._install_into(bank, set_idx, chosen, addr, ctx)
