"""Property vector (PV) with ``emptyPV`` and the round-robin ``nextRS``.

One PV per tracked property per LLC bank: bit *i* is set when set *i* of
the bank satisfies the property.  ``nextRS`` points, in round-robin order,
to the next eligible relocation set; it is recomputed by Algorithm 1 (see
:func:`repro.utils.bitops.decoded_next_rs`) whenever a relocation starts or
the PV becomes non-empty.  The round-robin choice spreads the relocation
load uniformly over eligible sets (paper III-D1).
"""

from __future__ import annotations

from repro.utils.bitops import (
    decode_onehot,
    decoded_next_rs,
    encode_onehot,
    lowest_set_bit,
    naive_next_rs,
)


class PropertyVector:
    """PV + emptyPV + nextRS for one property of one LLC bank."""

    def __init__(self, n_sets: int, name: str = "pv") -> None:
        if n_sets <= 0:
            raise ValueError("n_sets must be positive")
        self.n_sets = n_sets
        self.name = name
        self.bits = 0
        self._decoded_rs = 0  # one-hot of the last relocation set used
        self.flips = 0  # PV bit transitions (energy accounting)
        #: When False, nextRS degenerates to the lowest set bit (an
        #: ablation of the paper's round-robin load spreading).
        self.round_robin = True

    # -- bit maintenance -----------------------------------------------------

    def set_bit(self, set_idx: int, value: bool) -> bool:
        """Update one bit; returns True if the bit changed."""
        mask = 1 << set_idx
        old = bool(self.bits & mask)
        if old == value:
            return False
        if value:
            self.bits |= mask
        else:
            self.bits &= ~mask
        self.flips += 1
        return True

    def get_bit(self, set_idx: int) -> bool:
        return bool(self.bits >> set_idx & 1)

    @property
    def empty(self) -> bool:
        """The paper's ``emptyPV`` summary bit (computed by OR-reduction
        in hardware)."""
        return self.bits == 0

    def population(self) -> int:
        return self.bits.bit_count()

    # -- relocation-set selection ------------------------------------------------

    def next_relocation_set(self) -> int:
        """Consume the next relocation set in round-robin order.

        Returns the set index, advancing the internal pointer; -1 when the
        PV is empty.  Mirrors the hardware: the decoded nextRS is the
        output of Algorithm 1 on the current PV and the last-used RS."""
        rs = self._decoded_rs if self.round_robin else 0
        decoded = decoded_next_rs(self.bits, rs, self.n_sets)
        if decoded == 0:
            return -1
        self._decoded_rs = decoded
        return decode_onehot(decoded)

    def peek_relocation_set(self) -> int:
        """The set nextRS currently points to, without consuming it."""
        decoded = decoded_next_rs(self.bits, self._decoded_rs, self.n_sets)
        return decode_onehot(decoded) if decoded else -1

    def naive_peek(self) -> int:
        """Reference recomputation of :meth:`peek_relocation_set` by
        linear scan (:func:`repro.utils.bitops.naive_next_rs`).  Used by
        the runtime auditor and tests to validate the Algorithm 1
        implementation against first principles."""
        if self.bits == 0:
            return -1
        if self._decoded_rs == 0:
            return decode_onehot(lowest_set_bit(self.bits))
        return naive_next_rs(
            self.bits, decode_onehot(self._decoded_rs), self.n_sets
        )

    def force_pointer(self, set_idx: int) -> None:
        """Point the round-robin at ``set_idx`` (used by tests)."""
        self._decoded_rs = encode_onehot(set_idx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PV {self.name} pop={self.population()}/{self.n_sets} "
            f"rs={decode_onehot(self._decoded_rs) if self._decoded_rs else -1}>"
        )
