"""The paper's contribution: the Zero Inclusion Victim LLC."""

from repro.core.property_vector import PropertyVector
from repro.core.properties import (
    PROPERTY_LADDERS,
    PropertyTracker,
    ZIV_PROPERTY_NAMES,
)
from repro.core.relocation import RelocationTracker
from repro.core.char import CharEngine
from repro.core.ziv import ZIVScheme
from repro.core.oracle_ziv import OracleZIVScheme

__all__ = [
    "OracleZIVScheme",
    "PropertyVector",
    "PropertyTracker",
    "PROPERTY_LADDERS",
    "ZIV_PROPERTY_NAMES",
    "RelocationTracker",
    "CharEngine",
    "ZIVScheme",
]
