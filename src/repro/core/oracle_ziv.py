"""Oracle-assisted ZIV: the paper's Section VI future-work study.

    "One can compute the optimal relocation victim from among the LLC
    blocks that are not resident in the private caches for a given private
    cache capacity.  Future work needs to explore how close one can get to
    this oracle-assisted optimal selection."

This module implements that oracle: a ZIV variant that, when a relocation
is needed, evicts the **NotInPrC block with the furthest next use in the
global access stream** anywhere in the home bank (falling back across
banks), using the same lock-step Belady oracle as the I-MIN study.  It
upper-bounds what any realisable relocation-set property can achieve and
lets the ablation bench measure how close ``LikelyDead``/``MRLikelyDead``
come (see ``benchmarks/bench_ablation_oracle.py``).
"""

from __future__ import annotations

from repro.cache.replacement.belady import NextUseOracle
from repro.cache.set_assoc import AccessContext
from repro.core.ziv import ZIVInvariantError, ZIVScheme


class OracleZIVScheme(ZIVScheme):
    """ZIV whose relocation victim is Belady-optimal among NotInPrC blocks.

    Requires lock-step scheduling (the oracle consumes the canonical
    global stream) -- exactly like the I-MIN motivation runs."""

    def __init__(self, oracle: NextUseOracle) -> None:
        super().__init__(property_name="notinprc")
        self.name = "ziv:oracle"
        self.oracle = oracle

    def _find_oracle_victim(self, bank: int, pos: int):
        """(set, way) of the NotInPrC block with the furthest next use in
        ``bank``; None if the bank holds no NotInPrC block."""
        best = None
        best_next = -1
        cache = self.cmp.llc.banks[bank]
        for set_idx in range(cache.sets):
            for way, blk in enumerate(cache.blocks[set_idx]):
                if blk.valid and blk.not_in_prc:
                    nxt = self.oracle.next_use(blk.addr, pos)
                    if nxt > best_next:
                        best = (set_idx, way)
                        best_next = nxt
        return best

    def _relocation_path(self, bank, set_idx, victim_way, addr, ctx):
        cmp = self.cmp
        self.tracker.refresh(bank, set_idx)
        # Invalid sets first, as in every ZIV design.
        rs = self.tracker.pick_global(bank, "invalid")
        if rs >= 0:
            cmp.stats.count_property_hit("global:invalid")
            self._relocate(bank, set_idx, victim_way, bank, rs, ctx,
                           level="invalid")
            return self._install_into(bank, set_idx, victim_way, addr, ctx)
        target = self._find_oracle_victim(bank, ctx.global_pos)
        search_banks = [bank]
        if target is None:
            banks = cmp.llc.geometry.banks
            search_banks = [(bank + d) % banks for d in range(1, banks)]
            for b in search_banks:
                target = self._find_oracle_victim(b, ctx.global_pos)
                if target is not None:
                    bank_t = b
                    break
            else:
                raise ZIVInvariantError(
                    "no NotInPrC block exists in any bank"
                )
        else:
            bank_t = bank
        rs, dst_way = target
        cmp.stats.count_property_hit("global:oracle")
        if rs == set_idx and bank_t == bank:
            # The oracle's choice lives in the original set: evict it
            # in place of the baseline victim, no relocation needed.
            cmp.stats.relocation_same_set += 1
            self._evict_clean_or_writeback(bank, set_idx, dst_way, ctx)
            return self._install_into(bank, set_idx, dst_way, addr, ctx)
        self._relocate_to_way(bank, set_idx, victim_way, bank_t, rs,
                              dst_way, ctx)
        return self._install_into(bank, set_idx, victim_way, addr, ctx)

    def _relocate_to_way(self, src_bank, src_set, src_way, dst_bank,
                         dst_set, dst_way, ctx: AccessContext) -> None:
        """Like :meth:`_relocate` but with the destination way chosen by
        the oracle instead of the property-driven selector."""
        cmp = self.cmp
        dst_cache = cmp.llc.banks[dst_bank]
        if dst_cache.blocks[dst_set][dst_way].valid:
            self._assert_clean_victim(dst_bank, dst_set, dst_way)
            self._evict_clean_or_writeback(dst_bank, dst_set, dst_way, ctx)
        moving = cmp.llc.banks[src_bank].extract_way(src_set, src_way)
        was_relocated = moving.relocated
        dst_cache.install_relocated(dst_set, dst_way, moving, ctx)
        entry = cmp.directory.lookup(moving.addr)
        if entry is None:
            raise ZIVInvariantError(
                f"relocating {moving.addr:#x} with no directory entry"
            )
        entry.set_relocation(dst_bank, dst_set, dst_way)
        cmp.stats.relocations += 1
        if was_relocated:
            cmp.stats.relocations_rechained += 1
        if dst_bank != src_bank:
            cmp.stats.relocations_cross_bank += 1
        cmp.energy.record_relocation()
        self.reloc.record(src_bank, ctx.cycle)
        telemetry = cmp.telemetry
        if telemetry is not None:
            kind = (
                "cross_bank_fallback" if dst_bank != src_bank
                else "re_relocation" if was_relocated
                else "relocation"
            )
            telemetry.emit(
                kind,
                addr=moving.addr,
                src=[src_bank, src_set, src_way],
                dst=[dst_bank, dst_set, dst_way],
                property="oracle",
                rechained=was_relocated,
                cross_bank=dst_bank != src_bank,
            )
        self.after_set_update(src_bank, src_set)
        self.after_set_update(dst_bank, dst_set)
