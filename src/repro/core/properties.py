"""Relocation-set properties and their per-set maintenance (paper III-D).

A *relocation set* must contain at least one block that can be evicted
without generating inclusion victims.  The paper defines a ladder of
properties of increasing selectivity; each ZIV variant tracks a subset:

========================  =====================================================
``invalid``               the set has an invalid way
``notinprc``              the set has a valid block with no private copies
``lrunotinprc``           the block in the LRU position has no private copies
``maxrrpvnotinprc``       the set has an RRPV==max (cache-averse) block with
                          no private copies
``likelydeadnotinprc``    the set has a CHAR-inferred dead block with no
                          private copies
========================  =====================================================

:class:`PropertyTracker` owns one :class:`PropertyVector` per (bank,
property) and recomputes a set's property bits whenever the hierarchy
reports that the set changed.  It also implements the relocation-set
*victim* selection rules of paper III-E.
"""

from __future__ import annotations

from typing import Optional

from repro.core.property_vector import PropertyVector

ZIV_PROPERTY_NAMES = (
    "invalid",
    "notinprc",
    "lrunotinprc",
    "maxrrpvnotinprc",
    "likelydeadnotinprc",
)

#: Relocation-set selection priority ladder per ZIV variant (paper III-D2..7).
#: At each level the original set is checked before the global PV.
PROPERTY_LADDERS = {
    "notinprc": ("invalid", "notinprc"),
    "lrunotinprc": ("invalid", "lrunotinprc", "notinprc"),
    "maxrrpvnotinprc": ("invalid", "maxrrpvnotinprc", "notinprc"),
    "likelydead": ("invalid", "likelydeadnotinprc", "notinprc"),
    "mrlikelydead": (
        "invalid",
        "maxrrpvnotinprc",
        "likelydeadnotinprc",
        "notinprc",
    ),
}


def compute_property(blocks, prop: str, max_rrpv: int) -> bool:
    """Naive reference recomputation of one set's property bit.

    Mirrors :meth:`PropertyTracker.refresh` but stands alone, so the
    runtime auditor (:mod:`repro.sim.audit`) and tests can cross-check a
    :class:`PropertyVector` bit against first principles without going
    through the tracker's incremental maintenance."""
    if prop == "invalid":
        return any(not blk.valid for blk in blocks)
    if prop == "notinprc":
        return any(blk.valid and blk.not_in_prc for blk in blocks)
    if prop == "lrunotinprc":
        lru_blk = None
        for blk in blocks:
            if blk.valid and (lru_blk is None or blk.stamp < lru_blk.stamp):
                lru_blk = blk
        return lru_blk is not None and lru_blk.not_in_prc
    if prop == "maxrrpvnotinprc":
        return any(
            blk.valid and blk.not_in_prc and blk.rrpv >= max_rrpv
            for blk in blocks
        )
    if prop == "likelydeadnotinprc":
        return any(
            blk.valid and blk.not_in_prc and blk.likely_dead
            for blk in blocks
        )
    raise ValueError(f"unknown property {prop!r}")


class PropertyTracker:
    """Maintains the PVs of every tracked property for a banked LLC."""

    def __init__(self, llc, properties: tuple[str, ...], stats=None) -> None:
        unknown = set(properties) - set(ZIV_PROPERTY_NAMES)
        if unknown:
            raise ValueError(f"unknown properties: {sorted(unknown)}")
        self.llc = llc
        self.properties = tuple(properties)
        self.stats = stats
        self.pvs: list[dict[str, PropertyVector]] = [
            {
                prop: PropertyVector(
                    llc.geometry.sets_per_bank, name=f"{prop}[{b}]"
                )
                for prop in properties
            }
            for b in range(llc.geometry.banks)
        ]
        # Direct per-bank PV references for the hot refresh path (None for
        # untracked properties).
        self._fast = [
            tuple(
                bank_pvs.get(prop)
                for prop in (
                    "invalid",
                    "notinprc",
                    "lrunotinprc",
                    "maxrrpvnotinprc",
                    "likelydeadnotinprc",
                )
            )
            for bank_pvs in self.pvs
        ]
        for bank in range(llc.geometry.banks):
            for set_idx in range(llc.geometry.sets_per_bank):
                self.refresh(bank, set_idx)

    # -- maintenance ---------------------------------------------------------

    def refresh(self, bank: int, set_idx: int) -> None:
        """Recompute every tracked property bit of (bank, set) from the
        current block states (one associativity-wide scan)."""
        blocks = self.llc.banks[bank].blocks[set_idx]
        max_rrpv = self.llc.banks[bank].policy.max_rrpv
        pv_invalid, pv_nip, pv_lru, pv_maxrrpv, pv_dead = self._fast[bank]
        has_invalid = False
        has_nip = False
        has_maxrrpv_nip = False
        has_dead_nip = False
        lru_blk = None
        for blk in blocks:
            if not blk.valid:
                has_invalid = True
                continue
            if blk.not_in_prc:
                has_nip = True
                if blk.rrpv >= max_rrpv:
                    has_maxrrpv_nip = True
                if blk.likely_dead:
                    has_dead_nip = True
            if lru_blk is None or blk.stamp < lru_blk.stamp:
                lru_blk = blk
        if pv_invalid is not None:
            pv_invalid.set_bit(set_idx, has_invalid)
        if pv_nip is not None:
            pv_nip.set_bit(set_idx, has_nip)
        if pv_lru is not None:
            pv_lru.set_bit(
                set_idx, lru_blk is not None and lru_blk.not_in_prc
            )
        if pv_maxrrpv is not None:
            pv_maxrrpv.set_bit(set_idx, has_maxrrpv_nip)
        if pv_dead is not None:
            pv_dead.set_bit(set_idx, has_dead_nip)

    # -- queries ---------------------------------------------------------------

    def satisfies(self, bank: int, set_idx: int, prop: str) -> bool:
        return self.pvs[bank][prop].get_bit(set_idx)

    def pv(self, bank: int, prop: str) -> PropertyVector:
        return self.pvs[bank][prop]

    def pick_global(self, bank: int, prop: str) -> int:
        """Consume the round-robin nextRS of (bank, prop); -1 if empty."""
        return self.pvs[bank][prop].next_relocation_set()

    # -- relocation-set victim selection (paper III-E) ----------------------------

    def select_relocation_victim(
        self, bank: int, set_idx: int, scheme_property: str
    ) -> int:
        """Pick the way to evict from the relocation set.

        The priority order mirrors the scheme's property ladder: an invalid
        way first, then the scheme-specific rule.  Returns -1 if no block
        in the set can be evicted without inclusion victims (the caller
        must then have chosen the set wrongly -- an invariant violation).
        """
        cache = self.llc.banks[bank]
        way = cache.find_invalid_way(set_idx)
        if way >= 0:
            return way
        blocks = cache.blocks[set_idx]
        max_rrpv = cache.policy.max_rrpv
        if scheme_property in ("notinprc", "lrunotinprc"):
            return self._nip_closest_to_lru(blocks)
        if scheme_property == "maxrrpvnotinprc":
            return self._nip_highest_rrpv(blocks)
        if scheme_property == "likelydead":
            way = self._dead_closest_to_lru(blocks)
            if way >= 0:
                return way
            return self._nip_closest_to_lru(blocks)
        if scheme_property == "mrlikelydead":
            way = self._nip_with_rrpv(blocks, max_rrpv)
            if way >= 0:
                return way
            way = self._dead_highest_rrpv(blocks)
            if way >= 0:
                return way
            return self._nip_highest_rrpv(blocks)
        raise ValueError(f"unknown scheme property {scheme_property!r}")

    @staticmethod
    def _nip_closest_to_lru(blocks) -> int:
        best, best_stamp = -1, None
        for way, blk in enumerate(blocks):
            if blk.valid and blk.not_in_prc:
                if best_stamp is None or blk.stamp < best_stamp:
                    best, best_stamp = way, blk.stamp
        return best

    @staticmethod
    def _nip_highest_rrpv(blocks) -> int:
        best, best_rrpv = -1, -1
        for way, blk in enumerate(blocks):
            if blk.valid and blk.not_in_prc and blk.rrpv > best_rrpv:
                best, best_rrpv = way, blk.rrpv
        return best

    @staticmethod
    def _nip_with_rrpv(blocks, rrpv: int) -> int:
        for way, blk in enumerate(blocks):
            if blk.valid and blk.not_in_prc and blk.rrpv >= rrpv:
                return way
        return -1

    @staticmethod
    def _dead_closest_to_lru(blocks) -> int:
        best, best_stamp = -1, None
        for way, blk in enumerate(blocks):
            if blk.valid and blk.likely_dead and blk.not_in_prc:
                if best_stamp is None or blk.stamp < best_stamp:
                    best, best_stamp = way, blk.stamp
        return best

    @staticmethod
    def _dead_highest_rrpv(blocks) -> int:
        best, best_rrpv = -1, -1
        for way, blk in enumerate(blocks):
            if (blk.valid and blk.likely_dead and blk.not_in_prc
                    and blk.rrpv > best_rrpv):
                best, best_rrpv = way, blk.rrpv
        return best
