"""Relocation datapath bookkeeping: FIFO occupancy and interval statistics.

The ZIV LLC buffers blocks awaiting relocation in an eight-entry FIFO per
bank (paper III-D1): the decoded ``nextRS`` takes three cycles to
recompute, so back-to-back relocations queue briefly.  The paper's Fig. 18
characterises the distribution of inter-relocation intervals per bank to
show the FIFO almost never fills.  This module models that queueing and
collects the interval histogram.
"""

from __future__ import annotations

import math
from collections import deque


class _BankRelocationState:
    __slots__ = ("last_cycle", "pending_departures")

    def __init__(self) -> None:
        self.last_cycle = None
        self.pending_departures: deque[int] = deque()


def interval_bucket(interval: int) -> int:
    """Fig. 18 bucket of one interval: floor(log2), with intervals <= 1
    collapsed into bucket 0."""
    return int(math.log2(interval)) if interval > 1 else 0


class RelocationTracker:
    """Per-bank relocation interval histogram and FIFO occupancy model."""

    def __init__(self, banks: int, fifo_depth: int = 8,
                 nextrs_latency: int = 3) -> None:
        self.banks = banks
        self.fifo_depth = fifo_depth
        self.nextrs_latency = nextrs_latency
        self._state = [_BankRelocationState() for _ in range(banks)]
        #: exact interval counts (interval -> occurrences); the log2
        #: histogram is derived from this, so threshold queries like
        #: :meth:`fraction_below` stay exact for non-power-of-2 cut-offs
        self.interval_counts: dict[int, int] = {}
        self.intervals_recorded = 0
        self.short_intervals = 0  # intervals below the nextRS latency
        self.fifo_peak = 0
        self.fifo_overflows = 0

    @property
    def interval_log2_histogram(self) -> dict[int, int]:
        """Histogram over floor(log2(interval)); index 0 holds intervals
        <= 1 (the paper's Fig. 18 binning)."""
        out: dict[int, int] = {}
        for interval, n in self.interval_counts.items():
            bucket = interval_bucket(interval)
            out[bucket] = out.get(bucket, 0) + n
        return out

    def record(self, bank: int, cycle: int) -> None:
        """Record a relocation starting at ``cycle`` in ``bank``."""
        state = self._state[bank]
        if state.last_cycle is not None:
            interval = max(0, cycle - state.last_cycle)
            self.interval_counts[interval] = (
                self.interval_counts.get(interval, 0) + 1
            )
            self.intervals_recorded += 1
            if interval < self.nextrs_latency:
                self.short_intervals += 1
        state.last_cycle = cycle
        # FIFO model: a relocation departs nextrs_latency cycles after the
        # later of its arrival and the previous departure.
        departures = state.pending_departures
        while departures and departures[0] <= cycle:
            departures.popleft()
        start = max(cycle, departures[-1] if departures else cycle)
        departures.append(start + self.nextrs_latency)
        occupancy = len(departures)
        if occupancy > self.fifo_peak:
            self.fifo_peak = occupancy
        if occupancy > self.fifo_depth:
            self.fifo_overflows += 1

    # -- reporting -----------------------------------------------------------

    def cdf(self) -> list[tuple[int, float]]:
        """Cumulative distribution over log2(interval) buckets, as plotted
        in the paper's Fig. 18: (log2 bucket, cumulative fraction)."""
        if not self.intervals_recorded:
            return []
        total = self.intervals_recorded
        histogram = self.interval_log2_histogram
        out = []
        acc = 0
        for bucket in sorted(histogram):
            acc += histogram[bucket]
            out.append((bucket, acc / total))
        return out

    def fraction_below(self, cycles: int) -> float:
        """Fraction of intervals strictly shorter than ``cycles``.

        Exact for any threshold: computed from the per-interval counts,
        not the log2 buckets, so e.g. ``fraction_below(nextrs_latency)``
        always agrees with the ``short_intervals`` counter."""
        if not self.intervals_recorded:
            return 0.0
        count = sum(
            n
            for interval, n in self.interval_counts.items()
            if interval < cycles
        )
        return count / self.intervals_recorded
