"""Adapted CHAR dead-block inference (paper III-D6).

CHAR (Chaudhuri et al., PACT 2012) classifies blocks evicted from the L2
into groups and tracks, per group, how many evictions occur and how many of
those blocks are later *recalled* from the LLC.  A group whose recall ratio
falls below a threshold ``tau`` is considered dead-on-eviction; a block
evicted from the L2 that classifies into such a group carries a one-bit
dead hint to the home LLC bank in its eviction notice/writeback header.

The ZIV adaptation makes ``tau = 1/2^d`` dynamic: when a relocation finds
the ``LikelyDeadNotInPrC`` PV empty, the bank decrements ``d`` (making the
inference more aggressive) and requests, through the threshold request
bitvector (TRBV) piggybacked on notice acknowledgments, that the L2
controllers adopt the smaller ``d``.  ``d`` is periodically reset to its
initial value to track phase changes.

Block classification attributes (we model no prefetcher, so the paper's
prefetch attribute is constant): filled-via-LLC-hit (2) x saturating L2
demand-reuse count (4) x dirty (2) = 16 groups per core.
"""

from __future__ import annotations

from repro.hierarchy.private import PrivateEviction
from repro.params import CHARParams


class _CoreCharState:
    """Per-L2-controller CHAR state: group counters and the local ``d``."""

    __slots__ = ("evictions", "recalls", "d", "evictions_total")

    def __init__(self, n_groups: int, initial_d: int) -> None:
        self.evictions = [0] * n_groups
        self.recalls = [0] * n_groups
        self.d = initial_d
        self.evictions_total = 0


class _BankCharState:
    """Per-LLC-bank state: the bank's ``d``, TRBV, pacing counters."""

    __slots__ = ("d", "trbv", "notices_since_decrement")

    def __init__(self, cores: int, initial_d: int) -> None:
        self.d = initial_d
        self.trbv = 0
        self.notices_since_decrement = 0


class CharEngine:
    """The full CHAR subsystem: core-side classifiers + bank-side ``d``."""

    def __init__(self, cores: int, banks: int, params: CHARParams | None = None) -> None:
        self.params = params or CHARParams()
        self.cores = cores
        self.banks = banks
        p = self.params
        # prefetch(2) x fill-source(2) x reuse(buckets) x dirty(2)
        self.n_groups = 2 * 2 * p.reuse_buckets * 2
        self.core_state = [
            _CoreCharState(self.n_groups, p.initial_d) for _ in range(cores)
        ]
        self.bank_state = [
            _BankCharState(cores, p.initial_d) for _ in range(banks)
        ]
        self._notices_since_reset = 0
        # statistics
        self.dead_hints = 0
        self.decrements = 0
        self.resets = 0
        # Bound by TelemetryCollector.bind() while a traced run is active.
        self.telemetry = None

    # -- classification -------------------------------------------------------

    def group_of(self, ev: PrivateEviction) -> int:
        p = self.params
        reuse = min(ev.demand_reuses, p.reuse_buckets - 1)
        group = (
            (1 if ev.fill_hit else 0)
            + 2 * reuse
            + 2 * p.reuse_buckets * (1 if ev.dirty else 0)
        )
        if getattr(ev, "prefetched", False):
            group += 2 * 2 * p.reuse_buckets
        return group

    def on_l2_eviction(self, core: int, ev: PrivateEviction) -> tuple[int, bool]:
        """Classify a departing L2 block.

        Returns (group, dead_hint): the group id tags the LLC block for
        recall detection; the dead hint travels in the notice header."""
        state = self.core_state[core]
        group = self.group_of(ev)
        state.evictions[group] += 1
        state.evictions_total += 1
        if state.evictions[group] >= self.params.counter_halve_at:
            state.evictions[group] //= 2
            state.recalls[group] //= 2
        dead = self._infer_dead(state, group)
        if dead:
            self.dead_hints += 1
        return group, dead

    def _infer_dead(self, state: _CoreCharState, group: int) -> bool:
        e = state.evictions[group]
        if e < self.params.min_evictions:
            return False
        # tau = 1/2^d  =>  recall/evict < tau  <=>  (recall << d) < evict
        return (state.recalls[group] << state.d) < e

    def on_recall(self, core: int, group: int) -> None:
        """A block tagged (core, group) was recalled from the LLC by the
        same core: credit the group."""
        self.core_state[core].recalls[group] += 1

    # -- dynamic threshold ---------------------------------------------------------

    def on_pv_empty(self, bank: int) -> None:
        """A relocation in ``bank`` found the LikelyDeadNotInPrC PV empty:
        lower the bank's ``d`` (rate-limited) and arm the TRBV."""
        state = self.bank_state[bank]
        if state.d <= self.params.min_d:
            return
        if (state.d < self.params.initial_d
                and state.notices_since_decrement < self.params.decrement_interval):
            # Too soon after the previous decrement: the new threshold has
            # not had time to take effect yet.
            return
        state.d -= 1
        state.trbv = (1 << self.cores) - 1
        state.notices_since_decrement = 0
        self.decrements += 1
        if self.telemetry is not None:
            self.telemetry.emit("tau_decrement", bank=bank, d=state.d)

    def on_notice(self, bank: int, core: int) -> None:
        """A private-cache eviction notice (or writeback) from ``core``
        arrived at ``bank``: piggyback the bank's ``d`` in the ack if the
        TRBV bit is armed; advance pacing and periodic-reset clocks."""
        state = self.bank_state[bank]
        state.notices_since_decrement += 1
        if state.trbv >> core & 1:
            state.trbv &= ~(1 << core)
            core_state = self.core_state[core]
            if state.d < core_state.d:
                core_state.d = state.d
        self._notices_since_reset += 1
        if self._notices_since_reset >= self.params.reset_interval:
            self.reset_thresholds()

    def reset_thresholds(self) -> None:
        """Periodic reset of ``d`` back to the initial value everywhere,
        taking care of phase changes (paper III-D6)."""
        self._notices_since_reset = 0
        self.resets += 1
        for cs in self.core_state:
            cs.d = self.params.initial_d
        for bs in self.bank_state:
            bs.d = self.params.initial_d
            bs.trbv = 0
        if self.telemetry is not None:
            self.telemetry.emit("tau_reset", d=self.params.initial_d)
