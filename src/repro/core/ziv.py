"""The Zero Inclusion Victim LLC scheme (paper Section III).

The ZIV LLC is an inclusive LLC that **never back-invalidates**: when the
baseline replacement policy picks a victim with privately cached copies,
the victim is *relocated* to another LLC set instead of being evicted.  The
destination -- the relocation set -- is chosen through a priority ladder of
per-set properties tracked by property vectors (III-D); at every priority
level the original set is checked before the global round-robin pointer, so
relocation happens only when strictly necessary.  Relocated blocks are
reached through their sparse-directory entry, which records the
``<bank, set, way>`` tuple (III-C), and die when their last private copy is
evicted (III-C2).

Variants (``property_name``):

``notinprc``          relocate into any set holding a non-private block
``lrunotinprc``       prefer sets whose LRU block is non-private
``maxrrpvnotinprc``   prefer sets holding a cache-averse non-private block
                      (pairs with Hawkeye/RRIP baselines; "MRNotInPrC")
``likelydead``        prefer sets holding a CHAR-inferred dead block
                      ("LikelyDeadNotInPrC", pairs with an LRU baseline)
``mrlikelydead``      combine Hawkeye's classification with CHAR's
                      ("MaxRRPVLikelyDeadNotInPrC")
"""

from __future__ import annotations

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import AccessContext
from repro.core.properties import PROPERTY_LADDERS, PropertyTracker
from repro.core.relocation import RelocationTracker
from repro.schemes.base import InclusionScheme


class ZIVInvariantError(RuntimeError):
    """Raised when no inclusion-victim-free victim exists anywhere -- which
    the paper proves impossible while aggregate private capacity is below
    the LLC capacity."""


class ZIVScheme(InclusionScheme):
    inclusive = True
    #: The paper's central guarantee: LLC replacement never produces an
    #: inclusion victim.  The runtime auditor (repro.sim.audit) holds the
    #: back-invalidation counters to exactly zero for this scheme.
    zero_inclusion_victims = True

    def __init__(
        self, property_name: str = "notinprc", round_robin: bool = True
    ) -> None:
        super().__init__()
        if property_name not in PROPERTY_LADDERS:
            raise ValueError(
                f"unknown ZIV property {property_name!r}; known: "
                f"{sorted(PROPERTY_LADDERS)}"
            )
        self.property_name = property_name
        self.ladder = PROPERTY_LADDERS[property_name]
        self.name = f"ziv:{property_name}"
        self.needs_char = "likelydeadnotinprc" in self.ladder
        #: Ablation knob: False replaces the round-robin nextRS with a
        #: fixed lowest-set-bit choice, concentrating relocation load.
        self.round_robin = round_robin
        self.tracker: PropertyTracker | None = None
        self.reloc: RelocationTracker | None = None

    def bind(self, cmp) -> None:
        super().bind(cmp)
        self.tracker = PropertyTracker(cmp.llc, self.ladder)
        if not self.round_robin:
            for bank_pvs in self.tracker.pvs:
                for pv in bank_pvs.values():
                    pv.round_robin = False
        self.reloc = RelocationTracker(
            cmp.llc.geometry.banks,
            fifo_depth=cmp.config.relocation_fifo_depth,
            nextrs_latency=cmp.config.nextrs_latency,
        )

    # -- notifications -----------------------------------------------------------

    def after_set_update(self, bank: int, set_idx: int) -> None:
        self.tracker.refresh(bank, set_idx)

    # -- the fill path -------------------------------------------------------------

    def install(self, addr: int, ctx: AccessContext) -> CacheBlock:
        cmp = self.cmp
        bank = cmp.llc.bank_of(addr)
        set_idx = cmp.llc.set_of(addr)
        cache = cmp.llc.banks[bank]
        way = cache.find_invalid_way(set_idx)
        if way >= 0:
            return self._install_into(bank, set_idx, way, addr, ctx)

        victim_way = cache.policy.victim(set_idx, ctx)
        victim = cache.blocks[set_idx][victim_way]
        if not cmp.privately_cached(victim.addr):
            # The common case: the baseline victim generates no inclusion
            # victims, so the ZIV LLC behaves exactly like the baseline.
            self._evict_clean_or_writeback(bank, set_idx, victim_way, ctx)
            return self._install_into(bank, set_idx, victim_way, addr, ctx)

        return self._relocation_path(bank, set_idx, victim_way, addr, ctx)

    # -- relocation machinery ---------------------------------------------------------

    def _relocation_path(
        self, bank: int, set_idx: int, victim_way: int, addr: int,
        ctx: AccessContext,
    ) -> CacheBlock:
        """The baseline victim is privately cached: walk the property
        ladder (original set first, then global, per level)."""
        cmp = self.cmp
        # Victim selection may have aged replacement state (e.g. SRRIP), so
        # make sure the original set's property bits are current.
        self.tracker.refresh(bank, set_idx)
        for level in self.ladder:
            # (a) Original set satisfying the property: pick a different
            # in-set victim, no relocation needed (paper III-D4).
            if self.tracker.satisfies(bank, set_idx, level):
                way = self.tracker.select_relocation_victim(
                    bank, set_idx, self.property_name
                )
                if way >= 0:
                    self._assert_clean_victim(bank, set_idx, way)
                    cmp.stats.relocation_same_set += 1
                    cmp.stats.count_property_hit(f"local:{level}")
                    if cmp.llc.banks[bank].blocks[set_idx][way].valid:
                        self._evict_clean_or_writeback(bank, set_idx, way, ctx)
                    return self._install_into(bank, set_idx, way, addr, ctx)
            # (b) Global relocation set through the PV's nextRS.
            rs = self.tracker.pick_global(bank, level)
            if rs >= 0:
                cmp.stats.count_property_hit(f"global:{level}")
                self._relocate(bank, set_idx, victim_way, bank, rs, ctx,
                               level=level)
                return self._install_into(bank, set_idx, victim_way, addr, ctx)
            if level == "likelydeadnotinprc" and cmp.char is not None:
                # Empty LikelyDeadNotInPrC PV: ask CHAR to lower d.
                cmp.char.on_pv_empty(bank)

        # Every PV of this bank is empty: all blocks in the bank are
        # privately cached.  Fall back to cross-bank relocation (III-D1).
        target = self._find_cross_bank_target(bank)
        if target is None:
            raise ZIVInvariantError(
                "no relocation set exists in any bank; aggregate private "
                "capacity must exceed the LLC capacity"
            )
        rbank, rs, level = target
        cmp.stats.relocations_cross_bank += 1
        self._relocate(bank, set_idx, victim_way, rbank, rs, ctx,
                       level=level, cross_bank=True)
        return self._install_into(bank, set_idx, victim_way, addr, ctx)

    def _find_cross_bank_target(
        self, bank: int
    ) -> tuple[int, int, str] | None:
        """One-hop neighbours first, then the remaining banks.  Returns
        (bank, relocation set, satisfied property level)."""
        banks = self.cmp.llc.geometry.banks
        order = []
        if banks > 1:
            order = [(bank + 1) % banks, (bank - 1) % banks]
            order += [b for b in range(banks) if b != bank and b not in order]
        for b in order:
            for level in self.ladder:
                rs = self.tracker.pick_global(b, level)
                if rs >= 0:
                    return b, rs, level
        return None

    def _relocate(
        self,
        src_bank: int,
        src_set: int,
        src_way: int,
        dst_bank: int,
        dst_set: int,
        ctx: AccessContext,
        level: str | None = None,
        cross_bank: bool = False,
    ) -> None:
        """Move the block at (src_bank, src_set, src_way) into the chosen
        relocation set, evicting an inclusion-victim-free block there.

        ``level`` names the property-ladder rung that supplied the
        relocation set and ``cross_bank`` flags the III-D1 fallback; both
        exist only to label the telemetry event."""
        cmp = self.cmp
        dst_cache = cmp.llc.banks[dst_bank]
        dst_way = self.tracker.select_relocation_victim(
            dst_bank, dst_set, self.property_name
        )
        if dst_way < 0:
            raise ZIVInvariantError(
                f"relocation set {dst_set} of bank {dst_bank} has no "
                "evictable block despite its property bit"
            )
        if dst_cache.blocks[dst_set][dst_way].valid:
            self._assert_clean_victim(dst_bank, dst_set, dst_way)
            self._evict_clean_or_writeback(dst_bank, dst_set, dst_way, ctx)

        src_cache = cmp.llc.banks[src_bank]
        moving = src_cache.extract_way(src_set, src_way)
        was_relocated = moving.relocated
        dst_cache.install_relocated(dst_set, dst_way, moving, ctx)

        # Record the new location in the block's sparse-directory entry.
        # (The hardware reaches the entry through the back-pointer stored
        # in the relocated block's tag, III-C3; the functional model looks
        # the entry up by address.)
        entry = cmp.directory.lookup(moving.addr)
        if entry is None:
            raise ZIVInvariantError(
                f"relocating {moving.addr:#x} with no directory entry"
            )
        entry.set_relocation(dst_bank, dst_set, dst_way)

        cmp.stats.relocations += 1
        if was_relocated:
            cmp.stats.relocations_rechained += 1
        cmp.energy.record_relocation()
        self.reloc.record(src_bank, ctx.cycle)
        cmp.stats.relocation_fifo_peak = max(
            cmp.stats.relocation_fifo_peak, self.reloc.fifo_peak
        )
        telemetry = cmp.telemetry
        if telemetry is not None:
            kind = (
                "cross_bank_fallback" if cross_bank
                else "re_relocation" if was_relocated
                else "relocation"
            )
            telemetry.emit(
                kind,
                addr=moving.addr,
                src=[src_bank, src_set, src_way],
                dst=[dst_bank, dst_set, dst_way],
                property=level,
                rechained=was_relocated,
                cross_bank=cross_bank,
            )
        self.after_set_update(src_bank, src_set)
        self.after_set_update(dst_bank, dst_set)

    def _assert_clean_victim(self, bank: int, set_idx: int, way: int) -> None:
        blk = self.cmp.llc.banks[bank].blocks[set_idx][way]
        if blk.valid and self.cmp.privately_cached(blk.addr):
            raise ZIVInvariantError(
                f"relocation-set victim {blk.addr:#x} is privately cached"
            )

    # -- reporting -------------------------------------------------------------------

    def on_stats(self) -> dict:
        pv_flips = sum(
            pv.flips for bank in self.tracker.pvs for pv in bank.values()
        )
        return {
            "property_hits": dict(self.cmp.stats.property_hits),
            "pv_flips": pv_flips,
            "reloc_intervals": self.reloc.intervals_recorded,
            "interval_histogram": dict(self.reloc.interval_log2_histogram),
            "short_intervals": self.reloc.short_intervals,
            "fifo_peak": self.reloc.fifo_peak,
            "fifo_overflows": self.reloc.fifo_overflows,
        }
