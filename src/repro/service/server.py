"""The HTTP/JSON surface of the simulation service (stdlib only).

A :class:`ServiceServer` wraps a ``ThreadingHTTPServer`` (one thread
per connection, daemonic) around a :class:`~repro.service.jobs.
JobManager`.  Endpoints -- the authoritative reference with examples
lives in ``docs/SERVICE.md``:

====================================  =====================================
``GET  /``                            service + endpoint index
``GET  /healthz``                     liveness probe with job tallies
``POST /v1/jobs``                     submit one recipe dict -> job view
``GET  /v1/jobs``                     all job views
``GET  /v1/jobs/<id>``                one job view (``?wait=S`` blocks
                                      until terminal)
``GET  /v1/jobs/<id>/result``         deterministic result payload
                                      (``?wait=S`` blocks)
``GET  /v1/events``                   job-event log (``?since=N`` cursor,
                                      ``?timeout=S`` long-poll)
``GET  /v1/events/stream``            the same log as Server-Sent Events
``GET  /metrics``                     Prometheus text exposition (ledger
                                      aggregation + service counters)
====================================  =====================================

Error contract: every non-2xx response is structured JSON --
``{"error": {"type", "message", "field"}}`` -- where ``field`` names
the offending submission key (``"config.engine"``) when one is
attributable.  A malformed recipe is a 400 with its field, never a
bare 500; unexpected server faults are 500s that still carry the
structured body.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.config_io import RecipeError, recipe_from_dict
from repro.params import ConfigError
from repro.service.api import result_to_json
from repro.service.jobs import JobManager

#: Bounds on ``?wait=``/``?timeout=`` so a client cannot pin a server
#: thread forever.
MAX_WAIT_S = 300.0


class _RequestError(Exception):
    """Internal: maps straight to one structured JSON error response."""

    def __init__(self, status: int, type_: str, message: str,
                 field: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.type_ = type_
        self.field = field


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass carries the manager.
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, obj: Any) -> None:
        self._send_bytes(
            status,
            json.dumps(obj, sort_keys=True).encode(),
            "application/json",
        )

    def _send_error_json(self, err: _RequestError) -> None:
        self._send_json(err.status, {"error": {
            "type": err.type_,
            "message": str(err),
            "field": err.field,
        }})

    def _query(self) -> "dict[str, str]":
        return {
            k: v[-1] for k, v in parse_qs(urlsplit(self.path).query).items()
        }

    def _wait_seconds(self, query: "dict[str, str]", key: str) -> float:
        raw = query.get(key)
        if raw is None:
            return 0.0
        try:
            return max(0.0, min(float(raw), MAX_WAIT_S))
        except ValueError:
            raise _RequestError(
                400, "BadRequest", f"{key} must be a number", field=key
            ) from None

    def _read_json_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            raise _RequestError(400, "BadRequest",
                                "request needs a JSON body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _RequestError(
                400, "BadRequest", f"invalid JSON body: {exc}"
            ) from exc

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            handler = self._route(method, path)
            if handler is None:
                raise _RequestError(
                    404, "NotFound", f"no such endpoint: {method} {path}"
                )
            handler()
        except _RequestError as err:
            self._send_error_json(err)
        except BrokenPipeError:  # subscriber went away mid-stream
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - structured 500, not bare
            self._send_error_json(_RequestError(
                500, type(exc).__name__, str(exc)
            ))

    def _route(self, method: str, path: str) -> Optional[Any]:
        if method == "GET":
            fixed = {
                "/": self._get_index,
                "/healthz": self._get_health,
                "/v1/jobs": self._get_jobs,
                "/v1/events": self._get_events,
                "/v1/events/stream": self._get_events_stream,
                "/metrics": self._get_metrics,
            }
            if path in fixed:
                return fixed[path]
            if path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/"):]
                if rest.endswith("/result"):
                    job_id = rest[: -len("/result")]
                    return lambda: self._get_result(job_id)
                if "/" not in rest:
                    return lambda: self._get_job(rest)
            return None
        if method == "POST" and path == "/v1/jobs":
            return self._post_job
        return None

    # -- endpoints ---------------------------------------------------------

    def _get_index(self) -> None:
        self._send_json(200, {
            "service": "repro-simulation-service",
            "endpoints": [
                "GET /healthz",
                "POST /v1/jobs",
                "GET /v1/jobs",
                "GET /v1/jobs/<id>",
                "GET /v1/jobs/<id>/result",
                "GET /v1/events",
                "GET /v1/events/stream",
                "GET /metrics",
            ],
        })

    def _get_health(self) -> None:
        jobs = self.manager.jobs()
        states: "dict[str, int]" = {}
        for view in jobs:
            states[view["state"]] = states.get(view["state"], 0) + 1
        self._send_json(200, {"ok": True, "jobs": states,
                              "workers": self.manager.workers,
                              "mode": self.manager.mode})

    def _post_job(self) -> None:
        data = self._read_json_body()
        try:
            recipe = recipe_from_dict(data)
        except RecipeError as exc:
            self.manager.record_rejection()
            raise _RequestError(400, "RecipeError", str(exc),
                                field=exc.field) from exc
        except ConfigError as exc:
            self.manager.record_rejection()
            raise _RequestError(400, "ConfigError", str(exc)) from exc
        view = self.manager.submit(recipe)
        self._send_json(202, {"job": view})

    def _get_jobs(self) -> None:
        self._send_json(200, {"jobs": self.manager.jobs()})

    def _get_job(self, job_id: str) -> None:
        wait_s = self._wait_seconds(self._query(), "wait")
        if wait_s > 0:
            view = self.manager.wait(job_id, timeout=wait_s)
        else:
            view = self.manager.get(job_id)
        if view is None:
            raise _RequestError(404, "NotFound",
                                f"unknown job {job_id!r}")
        self._send_json(200, {"job": view})

    def _get_result(self, job_id: str) -> None:
        wait_s = self._wait_seconds(self._query(), "wait")
        view = (
            self.manager.wait(job_id, timeout=wait_s) if wait_s > 0
            else self.manager.get(job_id)
        )
        if view is None:
            raise _RequestError(404, "NotFound",
                                f"unknown job {job_id!r}")
        if view["state"] == "failed":
            raise _RequestError(409, "JobFailed", view["error"])
        if view["state"] != "done":
            raise _RequestError(
                409, "JobNotDone",
                f"job {job_id} is {view['state']}; poll or pass ?wait=S",
            )
        result = self.manager.result(job_id)
        if result is None:  # result cache disabled and memo evicted
            raise _RequestError(
                410, "ResultGone",
                f"result for job {job_id} is no longer stored",
            )
        self._send_bytes(200, result_to_json(result), "application/json")

    def _get_events(self) -> None:
        query = self._query()
        try:
            since = int(query.get("since", "0"))
        except ValueError:
            raise _RequestError(400, "BadRequest",
                                "since must be an integer",
                                field="since") from None
        timeout = self._wait_seconds(query, "timeout")
        events, cursor = self.manager.events_since(since, timeout=timeout)
        self._send_json(200, {"events": events, "next": cursor})

    def _get_events_stream(self) -> None:
        """Server-Sent Events: one ``data:`` line per job event, from
        the ``since`` cursor onward, until the client disconnects or
        the server shuts down."""
        query = self._query()
        cursor = int(query.get("since", "0") or 0)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        while not getattr(self.server, "stopping", False):
            events, cursor = self.manager.events_since(
                cursor, timeout=1.0
            )
            for event in events:
                line = json.dumps(event, sort_keys=True)
                self.wfile.write(f"data: {line}\n\n".encode())
            if events:
                self.wfile.flush()

    def _get_metrics(self) -> None:
        from repro.obs.ledger import read_ledger
        from repro.obs.registry import MetricsRegistry, registry_from_ledger

        registry = MetricsRegistry()
        self.manager.fill_registry(registry)
        registry_from_ledger(read_ledger(), registry=registry)
        self._send_bytes(
            200, registry.to_prometheus().encode(),
            "text/plain; version=0.0.4",
        )


class ServiceServer:
    """One simulation-service instance: HTTP front, job manager back.

    ``start()`` serves on a daemon thread (the in-process form the
    docs and tests use); ``serve_forever()`` serves on the calling
    thread (the ``repro serve`` CLI).  ``close()`` is idempotent and
    shuts down both the HTTP listener and the worker pool."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: Optional[int] = None, mode: str = "process",
                 verbose: bool = False) -> None:
        self.manager = JobManager(workers=workers, mode=mode)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.manager = self.manager  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.stopping = False  # type: ignore[attr-defined]
        # Lifecycle state.  Without the lock, two concurrent close()
        # calls both pass the check-then-act on _closed and server_close
        # runs twice on one socket (found by `repro lint` bring-up,
        # regression-tested in tests/test_service.py).
        self._state_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None  # repro-lint: guarded-by[_state_lock]
        self._closed = False  # repro-lint: guarded-by[_state_lock]

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]  # type: ignore[return-value]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve on a background daemon thread; returns self."""
        with self._state_lock:
            if self._closed:
                raise RuntimeError("service server is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._httpd.serve_forever,
                    name="repro-service-http", daemon=True,
                )
                self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def close(self) -> None:
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
        # Exactly one caller reaches this point; the teardown itself
        # runs unlocked so a concurrent (idempotent) close() never
        # blocks behind shutdown().
        self._httpd.stopping = True  # type: ignore[attr-defined]
        self._httpd.shutdown()
        self._httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self.manager.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def create_server(host: str = "127.0.0.1", port: int = 0,
                  workers: Optional[int] = None, mode: str = "process",
                  verbose: bool = False) -> ServiceServer:
    """Build (but do not start) a service instance.  ``port=0`` binds a
    free ephemeral port -- read it back from ``server.port``/
    ``server.url``."""
    return ServiceServer(host=host, port=port, workers=workers,
                         mode=mode, verbose=verbose)
