"""Wire formats of the simulation service.

The submission side is :mod:`repro.config_io` (``recipe_from_dict``
with its field-attributed :class:`~repro.config_io.RecipeError`
rejections); this module owns the *response* side: a deterministic
JSON form of :class:`~repro.sim.engine.SimResult`.

Determinism is a contract, not a nicety: the server serialises every
result with ``json.dumps(..., sort_keys=True)``, and two clients that
resolved the same recipe -- whether both were served from one
execution, or one hit the disk cache a week later -- receive
**byte-identical payloads**.  The service smoke test and
``tests/test_service.py`` assert exactly that.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any


def _sanitize(value: Any) -> Any:
    """Deterministic JSON-ready projection of a result substructure.

    Dict keys are stringified (JSON objects only key on strings; int
    keys in e.g. histogram extras must not round-trip ambiguously),
    tuples become lists, and anything non-native falls back to
    ``repr`` -- never silently dropped."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _sanitize(dataclasses.asdict(value))
    return repr(value)


def result_to_dict(result: Any) -> dict:
    """JSON-ready form of one :class:`~repro.sim.engine.SimResult`.

    Counters come over verbatim (``stats`` is the full
    :class:`~repro.sim.stats.SimStats` tree, per-core breakdown
    included); the optional instrumentation attachments collapse to
    their summaries -- the service serves *results*, not transcripts,
    and the full telemetry/audit objects stay in the result cache."""
    stats = _sanitize(dataclasses.asdict(result.stats))
    audit = None
    if result.audit is not None:
        audit = {
            "ok": result.audit.ok,
            "violations": len(result.audit.violations),
            "sweeps": result.audit.sweeps,
            "truncated": result.audit.truncated,
        }
    telemetry = None
    if result.telemetry is not None:
        telemetry = {
            "samples": len(result.telemetry.series),
            "events": len(result.telemetry.events),
        }
    profile = None
    if result.profile is not None:
        profile = {
            "engine": result.profile.engine,
            "phase_s": _sanitize(dict(result.profile.phase_s)),
            "attribution": _sanitize(dict(result.profile.attribution)),
        }
    return {
        "workload": result.workload,
        "scheme": result.scheme,
        "policy": result.policy,
        "cycles": result.cycles,
        "summary": _sanitize(result.stats.summary()),
        "stats": stats,
        "ipc_per_core": list(result.ipc_per_core),
        "scheme_stats": _sanitize(result.scheme_stats),
        "energy": _sanitize(result.energy),
        "audit": audit,
        "telemetry": telemetry,
        "profile": profile,
    }


def result_to_json(result: Any) -> bytes:
    """The canonical payload bytes: sorted keys, compact separators --
    the exact bytes every client of the same recipe receives."""
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    ).encode()
