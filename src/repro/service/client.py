"""HTTP client for the simulation service (stdlib ``urllib`` only).

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.server` -- submit recipes (as dicts or
:class:`~repro.sim.parallel.RunRecipe` objects, converted via
``recipe_to_dict``), wait on jobs, fetch results (both parsed and as
the raw canonical bytes), read the event log, and scrape ``/metrics``.
Every non-2xx response raises :class:`ServiceError` carrying the
server's structured error body, including the offending submission
``field`` for recipe rejections.

``run_recipes`` is the remote-sweep helper: submit a whole recipe grid
(the server deduplicates and coalesces), then collect payloads in
submission order -- the client-side analogue of
:func:`repro.sim.parallel.run_many`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Iterable, Optional

from repro.config_io import recipe_to_dict


class ServiceError(Exception):
    """A structured error response from the service.

    ``status`` is the HTTP status code, ``type`` the server-side error
    class name, ``field`` the offending submission field (empty when
    not attributable)."""

    def __init__(self, status: int, type_: str, message: str,
                 field: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.type = type_
        self.field = field

    def __str__(self) -> str:
        base = super().__str__()
        if self.field:
            return f"[{self.status} {self.type}] {base} (field: {self.field})"
        return f"[{self.status} {self.type}] {base}"


class ServiceClient:
    """A connection-per-request client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                detail = json.loads(raw)["error"]
            except (ValueError, KeyError, TypeError):
                raise ServiceError(
                    exc.code, "HTTPError", raw.decode(errors="replace")
                ) from exc
            raise ServiceError(
                exc.code,
                detail.get("type", "Error"),
                detail.get("message", ""),
                detail.get("field", ""),
            ) from exc

    def _get_json(self, path: str) -> Any:
        return json.loads(self._request("GET", path))

    # -- protocol ----------------------------------------------------------

    def health(self) -> dict:
        return self._get_json("/healthz")

    def submit(self, recipe: Any) -> dict:
        """Submit one recipe (a ``RunRecipe`` or an already-serialized
        dict); returns the job view -- possibly already ``done`` when
        the server had the result cached."""
        body = recipe if isinstance(recipe, dict) else recipe_to_dict(recipe)
        reply = json.loads(self._request("POST", "/v1/jobs", body=body))
        return reply["job"]

    def job(self, job_id: str) -> dict:
        return self._get_json(f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> "list[dict]":
        return self._get_json("/v1/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 60.0) -> dict:
        """Block (server-side long-poll) until the job is terminal;
        returns its final view.  Raises :class:`ServiceError` if the
        job is still not terminal after ``timeout`` seconds."""
        view = self._get_json(f"/v1/jobs/{job_id}?wait={timeout}")["job"]
        if view["state"] not in ("done", "failed"):
            raise ServiceError(
                408, "Timeout",
                f"job {job_id} still {view['state']} after {timeout}s",
            )
        return view

    def result_bytes(self, job_id: str, timeout: float = 0.0) -> bytes:
        """The canonical result payload, verbatim -- byte-identical
        across every client that resolved the same recipe."""
        path = f"/v1/jobs/{job_id}/result"
        if timeout > 0:
            path += f"?wait={timeout}"
        return self._request("GET", path)

    def result(self, job_id: str, timeout: float = 0.0) -> dict:
        """The result payload parsed to a dict."""
        return json.loads(self.result_bytes(job_id, timeout=timeout))

    def events(self, since: int = 0, timeout: float = 0.0) \
            -> "tuple[list[dict], int]":
        """Job events after the ``since`` cursor plus the next cursor;
        ``timeout`` > 0 long-polls for fresh events."""
        path = f"/v1/events?since={since}"
        if timeout > 0:
            path += f"&timeout={timeout}"
        reply = self._get_json(path)
        return reply["events"], reply["next"]

    def metrics(self) -> str:
        """The Prometheus text exposition, verbatim (parse with
        :func:`repro.obs.registry.parse_prometheus`)."""
        return self._request("GET", "/metrics").decode()

    # -- sweeps ------------------------------------------------------------

    def run_recipes(self, recipes: Iterable[Any],
                    timeout: float = 300.0) -> "list[dict]":
        """Submit every recipe, then wait for all of them; returns the
        parsed result payloads in submission order.  The server
        deduplicates: a grid with repeated recipes still executes each
        distinct key once.  Raises :class:`ServiceError` on the first
        failed job."""
        views = [self.submit(r) for r in recipes]
        payloads: "list[dict]" = []
        for view in views:
            final = self.wait(view["id"], timeout=timeout)
            if final["state"] == "failed":
                raise ServiceError(
                    500, "JobFailed",
                    f"job {final['id']} ({final['workload']}) failed: "
                    f"{final['error']}",
                )
            payloads.append(self.result(final["id"]))
        return payloads
