"""The job layer of the simulation service: submit, dedup, execute.

The ROADMAP's service item names the refactor this module embodies:
**submission, execution and result storage as separable layers**.
Storage is :mod:`repro.sim.parallel`'s memo + disk cache, reached
through its public seam (``lookup_result``/``publish_result``/
``record_resolution``); execution is the same ``_execute_recipe`` pure
function ``run_many`` fans out, here dispatched onto a persistent
worker pool; and submission is this module's :class:`JobManager`.

Dedup semantics (the service's core guarantee):

* a submission whose key is already **stored** resolves immediately
  (``source`` ``"memo"``/``"disk"``, no execution);
* a submission whose key is already **in flight** coalesces onto the
  running job -- it completes when the primary completes, sharing the
  single execution;
* otherwise the submission becomes the **primary** job for its key and
  is dispatched to the pool.

Every resolution appends exactly one run-ledger record: ``"run"`` for
the primary's fresh execution, ``"memo"``/``"disk"`` for coalesced and
cache-resolved submissions -- so N concurrent clients submitting one
recipe leave one fresh record and N-1 cache-hit records, and the
ledger *proves* the single execution.

Subscribers observe the job stream through a monotonically numbered
event log (:meth:`JobManager.events_since`); terminal events carry a
:class:`~repro.sim.telemetry.RunProgress` heartbeat, the same shape
``run_many --progress`` prints locally.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim import parallel

#: The lifecycle state machine.  ``queued -> running -> done|failed``
#: for primary jobs; coalesced jobs skip ``running`` (they never own an
#: execution) and cache-resolved jobs are born ``done``.
JOB_STATES = ("queued", "running", "done", "failed")

#: Submission outcomes counted for ``/metrics``.
OUTCOMES = ("fresh", "coalesced", "memo", "disk", "failed", "rejected")


def _dispatch_execute(item: "tuple[str, Any]") -> "tuple[str, Any, float]":
    """Pool entry point: resolve ``parallel._execute_recipe`` at call
    time (module-level so it pickles under ``spawn``; late-bound so
    tests can monkeypatch the execution layer without touching the
    manager)."""
    return parallel._execute_recipe(item)


@dataclass
class Job:
    """One submission and its resolution state (internal; JSON views go
    through :meth:`view`)."""

    id: str
    key: str
    recipe: Any
    state: str = "queued"
    source: str = ""
    error: str = ""
    coalesced_into: str = ""
    submitted_ts: float = 0.0
    started_ts: float = 0.0
    finished_ts: float = 0.0
    wall_s: float = 0.0
    accesses: int = 0

    @property
    def label(self) -> str:
        r = self.recipe
        return f"{r.scheme}/{r.policy}: {r.workload.name}"

    def view(self) -> dict:
        """JSON-ready snapshot of this job."""
        r = self.recipe
        return {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "source": self.source,
            "error": self.error,
            "coalesced_into": self.coalesced_into,
            "scheme": r.scheme,
            "policy": r.policy,
            "scheduling": r.scheduling,
            "workload": r.workload.name,
            "engine": r.config.engine,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "wall_s": self.wall_s,
            "accesses": self.accesses,
        }


@dataclass
class _Tally:
    """Fleet accounting for RunProgress heartbeats + /metrics."""

    submitted: int = 0
    completed: int = 0
    from_memo: int = 0
    from_disk: int = 0
    simulated: int = 0
    failed: int = 0
    rejected: int = 0
    accesses: int = 0
    fresh_accesses: int = 0
    fresh_wall_s: float = 0.0
    started_ts: float = field(default_factory=time.time)


class JobManager:
    """Accepts recipe submissions, deduplicates them by content key,
    executes misses on a worker pool, and records every resolution in
    the run ledger.

    ``mode="process"`` (the default) executes on a
    ``ProcessPoolExecutor`` using the same start method as
    ``run_many`` (``REPRO_MP_START``); ``mode="thread"`` executes
    in-process on a thread pool -- same semantics, no fork cost, the
    right choice for tests, docs and tiny workloads."""

    def __init__(self, workers: Optional[int] = None,
                 mode: str = "process") -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        self.mode = mode
        self.workers = workers if workers else (os.cpu_count() or 1)
        # One lock owns every mutable field below; the contract comments
        # are machine-checked by `repro lint` (lock-discipline).
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: "dict[str, Job]" = {}  # repro-lint: guarded-by[_lock]
        self._inflight: "dict[str, str]" = {}  # repro-lint: guarded-by[_lock] (key -> primary job id)
        self._waiters: "dict[str, list[str]]" = {}  # repro-lint: guarded-by[_lock] (key -> coalesced ids)
        self._events: "list[dict]" = []  # repro-lint: guarded-by[_lock]
        self._seq = itertools.count(1)  # repro-lint: guarded-by[_lock]
        self._next_seq = 1  # repro-lint: guarded-by[_lock]
        self._job_ids = itertools.count(1)  # repro-lint: guarded-by[_lock]
        self._tally = _Tally()  # repro-lint: guarded-by[_lock]
        self._outcomes = {name: 0 for name in OUTCOMES}  # repro-lint: guarded-by[_lock]
        self._last_progress: Optional[dict] = None  # repro-lint: guarded-by[_lock]
        self._executor: Optional[concurrent.futures.Executor] = None  # repro-lint: guarded-by[_lock]
        self._closed = False  # repro-lint: guarded-by[_lock]

    # -- executor ----------------------------------------------------------

    def _ensure_executor(self) -> concurrent.futures.Executor:  # repro-lint: holds[_lock]
        if self._executor is None:
            if self.mode == "process":
                ctx = multiprocessing.get_context(parallel._start_method())
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            else:
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-service",
                )
        return self._executor

    # -- submission --------------------------------------------------------

    def submit(self, recipe: Any) -> dict:
        """Submit one recipe; returns the job's view immediately (the
        job may already be ``done`` when the result was cached)."""
        key = recipe.key()
        # Submission timestamps are job metadata for /jobs views; they
        # never enter a SimResult or a cache key.
        now = time.time()  # repro-lint: ignore[determinism]
        with self._lock:
            if self._closed:
                raise RuntimeError("job manager is closed")
            job = Job(id=f"j{next(self._job_ids)}", key=key,
                      recipe=recipe, submitted_ts=now)
            self._jobs[job.id] = job
            self._tally.submitted += 1
            hit = parallel.lookup_result(key)
            if hit is not None:
                result, source = hit
                self._resolve(job, result, source, 0.0)
                self._publish("done", job)
                return job.view()
            primary = self._inflight.get(key)
            if primary is not None:
                job.coalesced_into = primary
                self._outcomes["coalesced"] += 1
                self._waiters.setdefault(key, []).append(job.id)
                self._publish("queued", job)
                return job.view()
            self._inflight[key] = job.id
            job.state = "running"
            job.started_ts = now
            self._outcomes["fresh"] += 1
            # Publish BEFORE dispatching: a tiny job can complete before
            # add_done_callback registers, which runs _on_future inline
            # in this thread (the RLock is reentrant) -- publishing
            # afterwards would order 'running' after 'done'.
            self._publish("running", job)
            try:
                future = self._ensure_executor().submit(
                    _dispatch_execute, (key, recipe)
                )
            except BaseException as exc:  # noqa: BLE001 - must unwedge key
                # A dispatch failure (broken process pool, interpreter
                # shutdown) must not strand the key: the stale _inflight
                # entry would make every later submission of this recipe
                # coalesce onto a primary that can never finish.
                self._on_error(key, exc)
                return job.view()
            future.add_done_callback(
                lambda f, key=key: self._on_future(key, f)
            )
            return job.view()

    def record_rejection(self) -> None:
        """Count one rejected submission (a 400 at the HTTP layer)."""
        with self._lock:
            self._tally.rejected += 1
            self._outcomes["rejected"] += 1

    # -- completion --------------------------------------------------------

    def _on_future(self, key: str, future: "concurrent.futures.Future") \
            -> None:
        try:
            _key, result, wall_s = future.result()
        except BaseException as exc:  # noqa: BLE001 - job must record it
            self._on_error(key, exc)
            return
        with self._lock:
            parallel.publish_result(key, result)
            primary_id = self._inflight.pop(key, None)
            waiting = self._waiters.pop(key, [])
            if primary_id is not None:
                primary = self._jobs[primary_id]
                self._resolve(primary, result, "run", wall_s)
                self._publish("done", primary)
            for jid in waiting:
                waiter = self._jobs[jid]
                self._resolve(waiter, result, "memo", 0.0)
                self._publish("done", waiter)
            self._cond.notify_all()

    def _on_error(self, key: str, exc: BaseException) -> None:
        message = f"{type(exc).__name__}: {exc}"
        with self._lock:
            primary_id = self._inflight.pop(key, None)
            waiting = self._waiters.pop(key, [])
            for jid in ([primary_id] if primary_id else []) + waiting:
                job = self._jobs[jid]
                job.state = "failed"
                job.error = message
                # Failure timestamp: job metadata, not simulation state.
                job.finished_ts = time.time()  # repro-lint: ignore[determinism]
                self._tally.failed += 1
                self._outcomes["failed"] += 1
                self._publish("failed", job)
            self._cond.notify_all()

    def _resolve(self, job: Job, result: Any, source: str,  # repro-lint: holds[_lock]
                 wall_s: float) -> None:
        """Complete one job from a result (lock held): ledger record,
        tallies, state."""
        job.state = "done"
        job.source = source
        # Completion timestamp: job metadata, not simulation state.
        job.finished_ts = time.time()  # repro-lint: ignore[determinism]
        job.wall_s = wall_s
        job.accesses = result.stats.total_accesses
        parallel.record_resolution(job.recipe, job.key, result, source,
                                   wall_s)
        t = self._tally
        t.completed += 1
        t.accesses += job.accesses
        if source == "run":
            t.simulated += 1
            t.fresh_accesses += job.accesses
            t.fresh_wall_s += wall_s
        elif source == "memo":
            t.from_memo += 1
            self._outcomes["memo"] += 1
        elif source == "disk":
            t.from_disk += 1
            self._outcomes["disk"] += 1
        self._cond.notify_all()

    # -- progress / events -------------------------------------------------

    def _progress(self, job: Job) -> dict:  # repro-lint: holds[_lock]
        """A :class:`~repro.sim.telemetry.RunProgress`-shaped heartbeat
        for one resolved job (lock held)."""
        import dataclasses

        from repro.sim.telemetry import RunProgress

        t = self._tally
        rate = (
            t.fresh_accesses / t.fresh_wall_s if t.fresh_wall_s > 0
            else 0.0
        )
        return dataclasses.asdict(RunProgress(
            completed=t.completed,
            total=t.submitted,
            label=job.label,
            source=job.source or "failed",
            from_memo=t.from_memo,
            from_disk=t.from_disk,
            simulated=t.simulated,
            # Heartbeat wall time: progress reporting, never cached.
            elapsed_s=time.time() - t.started_ts,  # repro-lint: ignore[determinism]
            accesses=t.accesses,
            accesses_per_s=rate,
            eta_s=None,
            key=job.key,
            engine=job.recipe.config.engine,
        ))

    def _publish(self, kind: str, job: Job) -> None:  # repro-lint: holds[_lock]
        """Append one event to the subscriber log (lock held)."""
        event = {
            "seq": next(self._seq),
            # Event timestamp for SSE consumers; ordering comes from
            # `seq`, so the clock is cosmetic.
            "ts": time.time(),  # repro-lint: ignore[determinism]
            "kind": kind,
            "job": job.view(),
        }
        if kind in ("done", "failed"):
            progress = self._progress(job)
            event["progress"] = progress
            self._last_progress = progress
        self._events.append(event)
        self._next_seq = event["seq"] + 1
        self._cond.notify_all()

    def events_since(self, seq: int = 0, timeout: float = 0.0) \
            -> "tuple[list[dict], int]":
        """Events with ``seq`` greater than the cursor, plus the next
        cursor value.  ``timeout`` > 0 long-polls until at least one
        new event arrives (or the deadline passes)."""
        with self._cond:
            if timeout > 0:
                self._cond.wait_for(
                    lambda: self._next_seq > seq + 1 or self._closed,
                    timeout=timeout,
                )
            fresh = [e for e in self._events if e["seq"] > seq]
            return fresh, self._next_seq - 1

    # -- inspection --------------------------------------------------------

    def get(self, job_id: str) -> Optional[dict]:
        with self._lock:
            job = self._jobs.get(job_id)
            return job.view() if job is not None else None

    def jobs(self) -> "list[dict]":
        with self._lock:
            return [job.view() for job in self._jobs.values()]

    def wait(self, job_id: str, timeout: float = 60.0) -> Optional[dict]:
        """Block until the job reaches a terminal state (or the timeout
        passes); returns the job's view, None for unknown ids."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            self._cond.wait_for(
                lambda: job.state in ("done", "failed"), timeout=timeout
            )
            return job.view()

    def result(self, job_id: str) -> Optional[Any]:
        """The :class:`~repro.sim.engine.SimResult` of a ``done`` job
        (None otherwise)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != "done":
                return None
            hit = parallel.lookup_result(job.key)
            return hit[0] if hit is not None else None

    # -- metrics -----------------------------------------------------------

    def fill_registry(self, registry: Any) -> None:
        """Add the service-level metrics to a
        :class:`~repro.obs.registry.MetricsRegistry`."""
        registry.counter(
            "repro_service_jobs_total",
            "service submissions by outcome (fresh executions, "
            "coalesced/memo/disk dedup hits, failures, rejections)",
        )
        registry.gauge("repro_service_jobs_inflight",
                       "keys currently executing on the worker pool")
        registry.gauge("repro_service_workers",
                       "configured worker-pool width")
        with self._lock:
            for outcome in OUTCOMES:
                registry.inc(
                    "repro_service_jobs_total", {"outcome": outcome},
                    self._outcomes[outcome],
                )
            registry.set("repro_service_jobs_inflight", None,
                         len(self._inflight))
            registry.set("repro_service_workers", None, self.workers)
            if self._last_progress is not None:
                from repro.sim.telemetry import RunProgress

                registry.observe_progress(
                    RunProgress(**self._last_progress)
                )

    # -- shutdown ----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
            self._executor = None
            self._cond.notify_all()
        if executor is not None:
            executor.shutdown(wait=wait)
