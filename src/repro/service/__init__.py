"""Simulation service: async recipe-in / result-out job server.

The service decomposes remote simulation into three separable layers:

* **submission** -- :class:`~repro.service.jobs.JobManager` accepts
  serialized recipes, deduplicates by content key, and coalesces
  concurrent submissions of the same recipe onto one execution;
* **execution** -- the same pure worker function ``run_many`` uses,
  dispatched onto a persistent process (or thread) pool;
* **result storage** -- :mod:`repro.sim.parallel`'s memo + disk cache,
  plus one run-ledger record per resolution.

:mod:`repro.service.server` wraps the manager in a stdlib HTTP/JSON
surface; :mod:`repro.service.client` speaks it.  See
``docs/SERVICE.md`` for the protocol walkthrough.
"""

from repro.service.api import result_to_dict, result_to_json
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JOB_STATES, OUTCOMES, JobManager
from repro.service.server import ServiceServer, create_server

__all__ = [
    "JOB_STATES",
    "OUTCOMES",
    "JobManager",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "create_server",
    "result_to_dict",
    "result_to_json",
]
