"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                 available schemes, policies, profiles, figures
``figure <name>``        regenerate one paper figure (e.g. fig08_lru_perf)
``run``                  run one workload/scheme/policy combination
``sidechannel``          prime+probe campaign across designs
``config``               print the scaled and paper-scale configurations
``cache``                inspect or clear the persistent result cache
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.core.properties import PROPERTY_LADDERS
    from repro.experiments import ALL_FIGURES
    from repro.workloads import ALL_PROFILE_NAMES, MT_APP_NAMES

    print("schemes: inclusive noninclusive qbs sharp charonbase tlh eci")
    print("         " + " ".join(f"ziv:{p}" for p in sorted(PROPERTY_LADDERS)))
    print("policies: lru nru random srrip brrip drrip ship hawkeye belady")
    print("figures:", " ".join(ALL_FIGURES))
    print("profiles:", " ".join(ALL_PROFILE_NAMES))
    print("multithreaded:", " ".join(MT_APP_NAMES))
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import run_figure

    result = run_figure(args.name, args.scale)
    result.print_table()
    return 0


def _cmd_run(args) -> int:
    from repro.params import scaled_config
    from repro.sim.engine import run_workload
    from repro.workloads import homogeneous_mix, multithreaded_workload

    if args.config:
        from repro.config_io import load_config

        config = load_config(args.config)
    else:
        config = scaled_config(args.l2)
    if args.workload.startswith("mt:"):
        wl = multithreaded_workload(
            args.workload[3:], cores=config.cores, n_accesses=args.accesses
        )
    else:
        wl = homogeneous_mix(
            args.workload, cores=config.cores, n_accesses=args.accesses
        )
    from repro.sim.report import describe_result

    result = run_workload(
        config, wl, args.scheme, llc_policy=args.policy, audit=args.audit
    )
    print(describe_result(result))
    if result.audit is not None:
        print(result.audit.summary())
        if not result.audit.ok:
            return 1
    return 0


def _cmd_sidechannel(args) -> int:
    from repro.params import scaled_config
    from repro.security import prime_probe_experiment

    config = scaled_config(args.l2)
    for scheme in ("inclusive", "qbs", "sharp", "ziv:notinprc",
                   "noninclusive"):
        r = prime_probe_experiment(config, scheme, trials=args.trials)
        verdict = "LEAKS" if r.leaks else "blind"
        print(f"{scheme:14s} accuracy={r.accuracy:.2f}  {verdict}")
    return 0


def _cmd_config(_args) -> int:
    from repro.experiments.table1 import run

    run().print_table()
    return 0


def _cmd_cache(args) -> int:
    from repro.sim.parallel import cache_dir, cache_enabled, cache_info
    from repro.sim.parallel import clear_result_cache

    if args.action == "clear":
        removed = clear_result_cache()
        print(f"removed {removed} cached result(s) from {cache_dir()}")
        return 0
    info = cache_info()
    state = "on" if cache_enabled() else "off (REPRO_CACHE)"
    print(f"dir: {info['path']}")
    print(f"state: {state}")
    print(f"entries: {info['entries']}")
    print(f"bytes: {info['bytes']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zero Inclusion Victim LLC reproduction (ISCA 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list schemes/policies/profiles/figures")

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("name")
    p.add_argument("--scale", default=None,
                   choices=("smoke", "quick", "standard", "full"))

    p = sub.add_parser("run", help="run one simulation")
    p.add_argument("--workload", default="xalancbmk.2",
                   help="profile name, or mt:<app> for multi-threaded")
    p.add_argument("--scheme", default="ziv:likelydead")
    p.add_argument("--policy", default="lru")
    p.add_argument("--l2", default="512KB",
                   choices=("256KB", "512KB", "768KB", "1MB"))
    p.add_argument("--accesses", type=int, default=4000)
    p.add_argument("--config", default=None, metavar="FILE.json",
                   help="machine description (see repro.config_io)")
    p.add_argument("--audit", nargs="?", const="end", default=None,
                   metavar="SPEC",
                   help="enable the runtime invariant auditor; SPEC is a "
                        "comma list of 'end' (default), 'every', an "
                        "integer interval N, 'fail' (fail-fast) or "
                        "'collect' -- e.g. --audit=100,fail.  The "
                        "REPRO_AUDIT environment variable supplies a "
                        "default spec (see repro.sim.audit)")

    p = sub.add_parser("sidechannel", help="prime+probe campaign")
    p.add_argument("--trials", type=int, default=48)
    p.add_argument("--l2", default="512KB")

    sub.add_parser("config", help="print Table I (paper vs scaled)")

    p = sub.add_parser("cache", help="inspect/clear the on-disk result cache")
    p.add_argument("action", nargs="?", default="info",
                   choices=("info", "clear"))
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "figure": _cmd_figure,
        "run": _cmd_run,
        "sidechannel": _cmd_sidechannel,
        "config": _cmd_config,
        "cache": _cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
