"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                 available schemes, policies, profiles, figures
``figure <name>``        regenerate one paper figure (e.g. fig08_lru_perf)
``run``                  run one workload/scheme/policy combination
``telemetry``            run with interval sampling, chart a counter
``sidechannel``          prime+probe campaign across designs
``config``               print the scaled and paper-scale configurations
``cache``                inspect or clear the persistent result cache
``lint``                 static-analysis pass enforcing simulator invariants
``trace``                convert/inspect/verify binary trace files
``obs``                  run ledger, metrics export, perf-regression gate
``serve``                run the HTTP/JSON simulation job service
``submit``               submit one recipe to a running service
``jobs``                 list a running service's jobs
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.core.properties import PROPERTY_LADDERS
    from repro.experiments import ALL_FIGURES
    from repro.workloads import ALL_PROFILE_NAMES, MT_APP_NAMES

    print("schemes: inclusive noninclusive qbs sharp charonbase tlh eci")
    print("         " + " ".join(f"ziv:{p}" for p in sorted(PROPERTY_LADDERS)))
    print("policies: lru nru random srrip brrip drrip ship hawkeye belady")
    print("figures:", " ".join(ALL_FIGURES))
    print("profiles:", " ".join(ALL_PROFILE_NAMES))
    print("multithreaded:", " ".join(MT_APP_NAMES))
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import figure_recipes, run_figure

    if args.progress:
        from repro.sim.parallel import run_many
        from repro.sim.telemetry import ProgressPrinter

        recipes = figure_recipes(args.name, args.scale)
        if recipes:
            printer = ProgressPrinter()
            run_many(recipes, heartbeat=printer)
            printer.done()
    result = run_figure(args.name, args.scale)
    result.print_table()
    return 0


def _cmd_run(args) -> int:
    from repro.params import scaled_config
    from repro.sim.checkpoint import SimulationInterrupted
    from repro.sim.engine import run_workload
    from repro.workloads import homogeneous_mix, multithreaded_workload

    if args.config:
        from repro.config_io import load_config

        config = load_config(args.config)
    else:
        config = scaled_config(args.l2)
    if args.engine != config.engine:
        config = config.replace(engine=args.engine)
    if args.trace:
        from repro.sim.tracebin import open_trace

        wl = open_trace(args.trace)
        if wl.cores != config.cores:
            # A trace file fixes the core count; follow it.
            config = config.replace(cores=wl.cores)
    elif args.workload.startswith("mt:"):
        wl = multithreaded_workload(
            args.workload[3:], cores=config.cores, n_accesses=args.accesses
        )
    else:
        wl = homogeneous_mix(
            args.workload, cores=config.cores, n_accesses=args.accesses
        )
    from repro.sim.report import describe_result

    progress = None
    if args.progress:
        def progress(p):
            who = f"{p.label}/{p.engine}" if p.label or p.engine else "run"
            sys.stderr.write(
                f"\r{who}: chunk {p.chunk}/{p.chunks} | "
                f"{p.accesses_done}/{p.total_accesses} accesses "
                f"({100.0 * p.fraction:3.0f}%)"
                + (" | checkpointed" if p.checkpointed else "")
            )
            sys.stderr.flush()
    resume_from = None
    if args.resume:
        if not args.checkpoint:
            print("--resume requires --checkpoint", file=sys.stderr)
            return 2
        resume_from = args.checkpoint
    try:
        result = run_workload(
            config, wl, args.scheme, llc_policy=args.policy,
            audit=args.audit, telemetry=args.telemetry,
            profile=args.profile,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume_from=resume_from,
            stop_after=args.stop_after,
            progress=progress,
        )
    except SimulationInterrupted as interrupted:
        if args.progress:
            sys.stderr.write("\n")
        print(
            f"checkpointed at access {interrupted.accesses_done}/"
            f"{interrupted.total_accesses} -> "
            f"{interrupted.checkpoint_path}; resume with --resume"
        )
        return 3
    if args.progress:
        sys.stderr.write("\n")
    print(describe_result(result))
    if result.telemetry is not None and args.events_out:
        from repro.sim.telemetry import write_events_jsonl

        n = write_events_jsonl(result.telemetry.events, args.events_out)
        print(f"wrote {n} event(s) to {args.events_out}")
    if result.audit is not None:
        print(result.audit.summary())
        if not result.audit.ok:
            return 1
    return 0


def _cmd_telemetry(args) -> int:
    """Run one simulation with interval sampling on, then chart one or
    more sampled columns as ASCII time series."""
    from repro.experiments.ascii_chart import series_chart
    from repro.params import TelemetryParams, scaled_config
    from repro.sim.engine import run_workload
    from repro.workloads import homogeneous_mix, multithreaded_workload

    config = scaled_config(args.l2)
    if args.workload.startswith("mt:"):
        wl = multithreaded_workload(
            args.workload[3:], cores=config.cores, n_accesses=args.accesses
        )
    else:
        wl = homogeneous_mix(
            args.workload, cores=config.cores, n_accesses=args.accesses
        )
    params = TelemetryParams(
        enabled=True, interval=args.interval, events=args.events or ""
    )
    result = run_workload(
        config, wl, args.scheme, llc_policy=args.policy, telemetry=params
    )
    t = result.telemetry
    title_base = f"{result.scheme}/{result.policy} on {result.workload}"
    for column in args.series:
        if column not in t.series.columns:
            print(f"unknown series column {column!r}; available: "
                  f"{' '.join(t.series.columns)}")
            return 2
        print(series_chart(t.series, column, width=args.width,
                           title=f"{column} -- {title_base}"))
    if args.events_out:
        from repro.sim.telemetry import write_events_jsonl

        n = write_events_jsonl(t.events, args.events_out)
        print(f"wrote {n} event(s) to {args.events_out}")
    return 0


def _cmd_sidechannel(args) -> int:
    from repro.params import scaled_config
    from repro.security import prime_probe_experiment

    config = scaled_config(args.l2)
    for scheme in ("inclusive", "qbs", "sharp", "ziv:notinprc",
                   "noninclusive"):
        r = prime_probe_experiment(config, scheme, trials=args.trials)
        verdict = "LEAKS" if r.leaks else "blind"
        print(f"{scheme:14s} accuracy={r.accuracy:.2f}  {verdict}")
    return 0


def _cmd_config(_args) -> int:
    from repro.experiments.table1 import run

    run().print_table()
    return 0


def _cmd_cache(args) -> int:
    from repro.sim.parallel import cache_dir, cache_enabled, cache_info
    from repro.sim.parallel import clear_result_cache

    if args.action == "clear":
        removed = clear_result_cache()
        print(f"removed {removed} cached result(s) from {cache_dir()}")
        return 0
    info = cache_info()
    state = "on" if cache_enabled() else "off (REPRO_CACHE)"
    print(f"dir: {info['path']}")
    print(f"state: {state}")
    print(f"entries: {info['entries']}")
    print(f"bytes: {info['bytes']}")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_obs(args) -> int:
    from repro.obs.cli import run_obs

    return run_obs(args)


def _cmd_trace(args) -> int:
    from repro.sim.tracebin import (
        TraceBinReader,
        convert_din_trace,
        convert_text_trace,
    )
    from repro.sim.tracefile import TraceFormatError

    try:
        if args.action == "convert":
            fmt = args.format
            if fmt == "auto":
                src = args.src
                fmt = "din" if src.endswith((".din", ".din.gz")) else "text"
            if fmt == "din":
                info = convert_din_trace(
                    args.src, args.dst,
                    block_bits=args.block_bits,
                    chunk_records=args.chunk_records,
                )
            else:
                info = convert_text_trace(
                    args.src, args.dst, chunk_records=args.chunk_records
                )
            print(
                f"wrote {info['path']}: {info['records']} record(s), "
                f"{info['cores']} core(s), {info['chunks']} chunk(s), "
                f"{info['bytes']} bytes"
            )
            print(f"fingerprint: {info['fingerprint']}")
        elif args.action == "info":
            with TraceBinReader(args.src) as reader:
                info = reader.info()
            for key in ("path", "name", "cores", "records",
                        "chunk_records", "chunks", "bytes", "fingerprint"):
                print(f"{key}: {info[key]}")
            print("core_names: " + " ".join(info["core_names"]))
        else:  # verify
            with TraceBinReader(args.src) as reader:
                summary = reader.verify()
            print(
                f"{args.src}: OK -- {summary['records']} record(s) in "
                f"{summary['chunks']} chunk(s), fingerprint "
                f"{summary['fingerprint']}"
            )
    except TraceFormatError as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.service import create_server

    server = create_server(host=args.host, port=args.port,
                           workers=args.workers, mode=args.mode,
                           verbose=args.verbose)
    print(f"repro service listening on {server.url} "
          f"({server.manager.workers} {args.mode} worker(s)); "
          f"Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    if args.recipe:
        with open(args.recipe, "r", encoding="utf-8") as fh:
            body = json.load(fh)
    else:
        from repro.config_io import config_to_dict
        from repro.params import scaled_config

        config = scaled_config(args.l2)
        if args.engine != config.engine:
            config = config.replace(engine=args.engine)
        if args.workload.startswith("mt:"):
            workload = {"kind": "mt", "app": args.workload[3:],
                        "cores": config.cores,
                        "accesses": args.accesses}
        else:
            workload = {"kind": "profile", "app": args.workload,
                        "cores": config.cores,
                        "accesses": args.accesses}
        body = {
            "workload": workload,
            "scheme": args.scheme,
            "policy": args.policy,
            "scheduling": args.scheduling,
            "config": config_to_dict(config),
        }
    try:
        view = client.submit(body)
        print(f"job {view['id']} ({view['state']}): "
              f"{view['scheme']}/{view['policy']} on {view['workload']} "
              f"[{view['engine']}]")
        if args.no_wait:
            return 0
        view = client.wait(view["id"], timeout=args.timeout)
        if view["state"] == "failed":
            print(f"job {view['id']} failed: {view['error']}",
                  file=sys.stderr)
            return 1
        payload = client.result(view["id"])
        print(f"job {view['id']} done (source={view['source']}, "
              f"wall={view['wall_s']:.3f}s)")
        print(f"  cycles: {payload['cycles']}")
        print(f"  accesses: {payload['summary']['accesses']}")
        ipc = ", ".join(f"{v:.4f}" for v in payload["ipc_per_core"])
        print(f"  ipc/core: {ipc}")
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_jobs(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        views = client.jobs()
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    if not views:
        print("no jobs")
        return 0
    for view in views:
        line = (f"{view['id']:>6s}  {view['state']:8s} "
                f"{view['source'] or '-':5s} "
                f"{view['scheme']}/{view['policy']} on "
                f"{view['workload']} [{view['engine']}]")
        if view["error"]:
            line += f"  error: {view['error']}"
        if view["coalesced_into"]:
            line += f"  (coalesced into {view['coalesced_into']})"
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zero Inclusion Victim LLC reproduction (ISCA 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list schemes/policies/profiles/figures")

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("name")
    p.add_argument("--scale", default=None,
                   choices=("smoke", "quick", "standard", "full"))
    p.add_argument("--progress", action="store_true",
                   help="print a live progress line (completed/total, "
                        "cache provenance, accesses/s, ETA) to stderr "
                        "while the figure's runs resolve")

    p = sub.add_parser("run", help="run one simulation")
    p.add_argument("--workload", default="xalancbmk.2",
                   help="profile name, or mt:<app> for multi-threaded")
    p.add_argument("--scheme", default="ziv:likelydead")
    p.add_argument("--policy", default="lru")
    p.add_argument("--l2", default="512KB",
                   choices=("256KB", "512KB", "768KB", "1MB"))
    p.add_argument("--accesses", type=int, default=4000)
    p.add_argument("--engine", default="object",
                   choices=("object", "fast"),
                   help="simulation engine: the reference object engine "
                        "or the array-state fast engine (identical "
                        "statistics, several times faster)")
    p.add_argument("--config", default=None, metavar="FILE.json",
                   help="machine description (see repro.config_io)")
    p.add_argument("--audit", nargs="?", const="end", default=None,
                   metavar="SPEC",
                   help="enable the runtime invariant auditor; SPEC is a "
                        "comma list of 'end' (default), 'every', an "
                        "integer interval N, 'fail' (fail-fast) or "
                        "'collect' -- e.g. --audit=100,fail.  The "
                        "REPRO_AUDIT environment variable supplies a "
                        "default spec (see repro.sim.audit)")
    p.add_argument("--telemetry", nargs="?", const="on", default=None,
                   metavar="SPEC",
                   help="enable interval sampling/event tracing; SPEC is "
                        "a comma list of an integer interval N, 'ring=N', "
                        "'events[=cat+cat]', 'maxevents=N' or "
                        "'severity=LEVEL' -- e.g. "
                        "--telemetry=250,events=relocation.  The "
                        "REPRO_TELEMETRY environment variable supplies a "
                        "default spec (see repro.sim.telemetry)")
    p.add_argument("--profile", nargs="?", const="on", default=None,
                   metavar="SPEC",
                   help="enable the deterministic phase profiler "
                        "('on'/'off'); phase wall times and counter-derived "
                        "hot-path attribution print with the result and "
                        "land in the run ledger.  The REPRO_PROFILE "
                        "environment variable supplies a default spec "
                        "(see repro.obs.profile)")
    p.add_argument("--events-out", default=None, metavar="FILE.jsonl",
                   help="write traced telemetry events as JSONL")
    p.add_argument("--trace", default=None, metavar="FILE.tracebin",
                   help="stream a binary trace file (see 'repro trace') "
                        "instead of synthesizing --workload; the core "
                        "count follows the trace")
    p.add_argument("--checkpoint", default=None, metavar="FILE.ckpt",
                   help="save resumable simulation state here at every "
                        "chunk boundary")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N",
                   help="checkpoint cadence in accesses (default: the "
                        "trace's chunk size, else 65536)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the --checkpoint file instead of "
                        "starting fresh")
    p.add_argument("--stop-after", type=int, default=None, metavar="N",
                   help="checkpoint and exit (status 3) at the first "
                        "boundary at or beyond N total accesses")
    p.add_argument("--progress", action="store_true",
                   help="print chunk-position heartbeats to stderr")

    p = sub.add_parser(
        "telemetry",
        help="run one simulation with sampling on and chart a counter",
    )
    p.add_argument("--workload", default="xalancbmk.2",
                   help="profile name, or mt:<app> for multi-threaded")
    p.add_argument("--scheme", default="ziv:likelydead")
    p.add_argument("--policy", default="lru")
    p.add_argument("--l2", default="512KB",
                   choices=("256KB", "512KB", "768KB", "1MB"))
    p.add_argument("--accesses", type=int, default=4000)
    p.add_argument("--interval", type=int, default=1000,
                   help="sampling interval in accesses (default 1000)")
    p.add_argument("--series", nargs="+", default=["relocations"],
                   metavar="COLUMN",
                   help="sampled column(s) to chart (default: relocations)")
    p.add_argument("--events", default=None, metavar="CATS",
                   help="also trace events: 'all' or a '+'-joined subset "
                        "of relocation/coherence/directory/char")
    p.add_argument("--events-out", default=None, metavar="FILE.jsonl",
                   help="write traced events as JSONL")
    p.add_argument("--width", type=int, default=48,
                   help="chart width in characters")

    p = sub.add_parser("sidechannel", help="prime+probe campaign")
    p.add_argument("--trials", type=int, default=48)
    p.add_argument("--l2", default="512KB")

    sub.add_parser("config", help="print Table I (paper vs scaled)")

    p = sub.add_parser("cache", help="inspect/clear the on-disk result cache")
    p.add_argument("action", nargs="?", default="info",
                   choices=("info", "clear"))

    p = sub.add_parser(
        "lint",
        help="static-analysis pass enforcing simulator invariants "
             "(determinism, cache-key completeness, counter discipline, "
             "telemetry guarding, event-schema sync)",
    )
    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(p)

    p = sub.add_parser(
        "trace",
        help="convert external traces to the chunked binary format, "
             "inspect headers, verify content integrity",
    )
    p.add_argument("action", choices=("convert", "info", "verify"))
    p.add_argument("src", help="source trace file")
    p.add_argument("dst", nargs="?", default=None,
                   help="output .tracebin path (convert only)")
    p.add_argument("--format", default="auto",
                   choices=("auto", "text", "din"),
                   help="source format for convert: the repo's gzip text "
                        "format or a SimpleScalar/Dinero-style address "
                        "trace (auto: by file suffix)")
    p.add_argument("--block-bits", type=int, default=6,
                   help="din import: right-shift byte addresses by this "
                        "many bits to block addresses (default 6 = 64B)")
    p.add_argument("--chunk-records", type=int, default=65536,
                   help="records per chunk in the output (default 65536)")

    p = sub.add_parser(
        "obs",
        help="fleet observability: run-ledger inspection (ls/show/top/"
             "diff), metrics export (Prometheus/JSON), perf-regression "
             "gate (regress)",
    )
    from repro.obs.cli import add_arguments as _add_obs_arguments

    _add_obs_arguments(p)

    p = sub.add_parser(
        "serve",
        help="run the HTTP/JSON simulation job service (submit recipes "
             "with 'repro submit' or repro.service.ServiceClient)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8742,
                   help="listen port (0 binds a free ephemeral port)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker-pool width (default: CPU count)")
    p.add_argument("--mode", default="process",
                   choices=("process", "thread"),
                   help="execute jobs on a process pool (default) or "
                        "in-process threads (tiny workloads, tests)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")

    p = sub.add_parser(
        "submit",
        help="submit one recipe to a running service and print the result",
    )
    p.add_argument("--url", default="http://127.0.0.1:8742",
                   help="service base URL")
    p.add_argument("--recipe", default=None, metavar="FILE.json",
                   help="submit this serialized recipe verbatim instead "
                        "of building one from the flags below")
    p.add_argument("--workload", default="xalancbmk.2",
                   help="profile name, or mt:<app> for multi-threaded")
    p.add_argument("--scheme", default="ziv:likelydead")
    p.add_argument("--policy", default="lru")
    p.add_argument("--scheduling", default="timing",
                   choices=("timing", "lockstep"))
    p.add_argument("--l2", default="512KB",
                   choices=("256KB", "512KB", "768KB", "1MB"))
    p.add_argument("--accesses", type=int, default=4000)
    p.add_argument("--engine", default="object",
                   choices=("object", "fast"))
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for the result")
    p.add_argument("--no-wait", action="store_true",
                   help="submit and exit without waiting for the result")

    p = sub.add_parser("jobs", help="list a running service's jobs")
    p.add_argument("--url", default="http://127.0.0.1:8742",
                   help="service base URL")
    p.add_argument("--timeout", type=float, default=30.0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "figure": _cmd_figure,
        "run": _cmd_run,
        "telemetry": _cmd_telemetry,
        "sidechannel": _cmd_sidechannel,
        "config": _cmd_config,
        "cache": _cmd_cache,
        "lint": _cmd_lint,
        "trace": _cmd_trace,
        "obs": _cmd_obs,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
    }[args.command]
    if args.command == "trace" and args.action == "convert" and not args.dst:
        print("trace convert needs a destination path", file=sys.stderr)
        return 2
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
