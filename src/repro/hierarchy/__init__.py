"""The CMP cache hierarchy: private caches, banked LLC, full access flow."""

from repro.hierarchy.private import PrivateEviction, PrivateHierarchy
from repro.hierarchy.llc import LastLevelCache
from repro.hierarchy.cmp import CacheHierarchy

__all__ = [
    "PrivateEviction",
    "PrivateHierarchy",
    "LastLevelCache",
    "CacheHierarchy",
]
