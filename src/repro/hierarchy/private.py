"""Per-core private cache hierarchy (L1 + L2, non-inclusive).

The paper's cores have split 32 KB L1 caches and a unified private L2; the
private levels are non-inclusive with respect to each other (footnote 3).
We model a unified L1 (the traces carry data accesses; instruction fetch
adds nothing to the inclusion-victim story) and mirror the notice protocol
exactly: an *eviction notice* (dataless, or a writeback when dirty) is sent
to the home LLC bank only when a block leaves the **last** private location
in this core -- i.e. when it is evicted from the L2 while absent from the
L1, or evicted from the L1 while absent from the L2 (III-A, III-D6).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.set_assoc import AccessContext, SetAssociativeCache
from repro.cache.replacement.lru import LRUPolicy
from repro.params import CacheGeometry


class PrivateEviction:
    """A block leaving this core's private hierarchy entirely.

    Carries the CHAR classification attributes sampled from the departing
    block: whether it arrived through a prefetch, whether it was filled via
    an LLC hit, how many demand reuses it saw in the L2, and its dirtiness
    (paper III-D6)."""

    __slots__ = ("addr", "dirty", "fill_hit", "demand_reuses", "prefetched")

    def __init__(
        self,
        addr: int,
        dirty: bool,
        fill_hit: bool,
        demand_reuses: int,
        prefetched: bool = False,
    ) -> None:
        self.addr = addr
        self.dirty = dirty
        self.fill_hit = fill_hit
        self.demand_reuses = demand_reuses
        self.prefetched = prefetched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Evict {self.addr:#x} dirty={self.dirty} "
            f"reuses={self.demand_reuses}>"
        )


class PrivateHierarchy:
    """One core's L1 + L2 with the eviction-notice protocol."""

    __slots__ = ("core", "l1", "l2", "l1_latency", "l2_latency")

    def __init__(
        self, core: int, l1_geom: CacheGeometry, l2_geom: CacheGeometry
    ) -> None:
        self.core = core
        self.l1 = SetAssociativeCache(
            l1_geom.sets, l1_geom.ways, LRUPolicy(), name=f"L1[{core}]"
        )
        self.l2 = SetAssociativeCache(
            l2_geom.sets, l2_geom.ways, LRUPolicy(), name=f"L2[{core}]"
        )
        self.l1_latency = l1_geom.latency
        self.l2_latency = l2_geom.latency

    # -- probes ------------------------------------------------------------

    def in_l1(self, addr: int) -> bool:
        return self.l1.contains(addr)

    def in_l2(self, addr: int) -> bool:
        return self.l2.contains(addr)

    def has_block(self, addr: int) -> bool:
        return self.l1.contains(addr) or self.l2.contains(addr)

    def resident_addrs(self) -> set[int]:
        return self.l1.resident_addrs() | self.l2.resident_addrs()

    # -- hits ----------------------------------------------------------------

    def hit_l1(self, addr: int, ctx: AccessContext) -> None:
        l1 = self.l1
        set_idx = l1.set_index(addr)
        self.hit_l1_at(set_idx, l1.index[set_idx][addr], ctx)

    def hit_l1_at(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        """Fast-path L1 hit when the caller already located the block
        (the hierarchy's access loop probes before dispatching)."""
        l1 = self.l1
        l1.policy.on_hit(set_idx, way, ctx)
        if ctx.is_write:
            l1.blocks[set_idx][way].dirty = True

    def hit_l2(self, addr: int, ctx: AccessContext) -> list[PrivateEviction]:
        """L2 hit after an L1 miss: count the demand reuse and pull the
        block up into the L1.  Returns any resulting eviction notices."""
        l2 = self.l2
        set_idx = l2.set_index(addr)
        return self.hit_l2_at(addr, set_idx, l2.index[set_idx][addr], ctx)

    def hit_l2_at(
        self, addr: int, set_idx: int, way: int, ctx: AccessContext
    ) -> list[PrivateEviction]:
        """Fast-path L2 hit at a known (set, way) location."""
        l2 = self.l2
        l2.policy.on_hit(set_idx, way, ctx)
        blk = l2.blocks[set_idx][way]
        blk.demand_reuses += 1
        blk.prefetched = False  # first demand touch ends prefetch status
        if ctx.is_write:
            blk.dirty = True
        return self._fill_l1(addr, ctx, dirty=False)

    # -- fills ----------------------------------------------------------------

    def fill(
        self, addr: int, ctx: AccessContext, fill_hit: bool
    ) -> list[PrivateEviction]:
        """Fill a block fetched from the LLC/memory into L2 then L1.

        ``fill_hit`` records whether the fill came from an LLC hit (a CHAR
        classification attribute).  Returns the eviction notices produced.
        """
        notices = self._fill_l2(addr, ctx, fill_hit)
        notices.extend(self._fill_l1(addr, ctx, dirty=ctx.is_write))
        return notices

    def fill_l2_only(
        self, addr: int, ctx: AccessContext, fill_hit: bool
    ) -> list[PrivateEviction]:
        """Prefetch fill: the block lands in the L2 (not the L1), marked
        ``prefetched`` until its first demand touch."""
        notices = self._fill_l2(addr, ctx, fill_hit, prefetched=True)
        return notices

    def _fill_l2(
        self, addr: int, ctx: AccessContext, fill_hit: bool,
        prefetched: bool = False,
    ) -> list[PrivateEviction]:
        notices: list[PrivateEviction] = []
        set_idx = self.l2.set_index(addr)
        way = self.l2.find_invalid_way(set_idx)
        if way < 0:
            way = self.l2.policy.victim(set_idx, ctx)
            old = self.l2.evict_way(set_idx, way, ctx)
            notice = self._on_l2_departure(old.addr, old.dirty, old.fill_hit,
                                           old.demand_reuses,
                                           old.prefetched)
            if notice is not None:
                notices.append(notice)
        blk = self.l2.install(set_idx, way, addr, ctx)
        blk.dirty = ctx.is_write and not prefetched
        blk.fill_hit = fill_hit
        blk.demand_reuses = 0
        blk.prefetched = prefetched
        return notices

    def _fill_l1(
        self, addr: int, ctx: AccessContext, dirty: bool
    ) -> list[PrivateEviction]:
        notices: list[PrivateEviction] = []
        set_idx = self.l1.set_index(addr)
        if self.l1.contains(addr):
            way = self.l1.touch(addr, ctx)
            if dirty or ctx.is_write:
                self.l1.block_at(set_idx, way).dirty = True
            return notices
        way = self.l1.find_invalid_way(set_idx)
        if way < 0:
            way = self.l1.policy.victim(set_idx, ctx)
            old = self.l1.evict_way(set_idx, way, ctx)
            notice = self._on_l1_departure(old.addr, old.dirty)
            if notice is not None:
                notices.append(notice)
        blk = self.l1.install(set_idx, way, addr, ctx)
        blk.dirty = dirty or ctx.is_write
        return notices

    # -- departures -------------------------------------------------------------

    def _on_l2_departure(
        self, addr: int, dirty: bool, fill_hit: bool, reuses: int,
        prefetched: bool = False,
    ) -> Optional[PrivateEviction]:
        """An L2 block was evicted.  If the L1 still holds the block, the
        block stays in the core (dirtiness migrates up); otherwise it left
        the core and a notice must be sent."""
        if self.l1.contains(addr):
            if dirty:
                s = self.l1.set_index(addr)
                w = self.l1.index[s][addr]
                self.l1.block_at(s, w).dirty = True
            return None
        return PrivateEviction(addr, dirty, fill_hit, reuses, prefetched)

    def _on_l1_departure(self, addr: int, dirty: bool) -> Optional[PrivateEviction]:
        """An L1 block was evicted.  If the L2 holds it, merge dirtiness
        down; otherwise the block left the core."""
        if self.l2.contains(addr):
            if dirty:
                s = self.l2.set_index(addr)
                w = self.l2.index[s][addr]
                self.l2.block_at(s, w).dirty = True
            return None
        # The block was L1-only (non-inclusive residue): CHAR attributes
        # are no longer available, so report the neutral classification.
        return PrivateEviction(addr, dirty, fill_hit=True, demand_reuses=0)

    # -- external invalidations ---------------------------------------------------

    def invalidate(self, addr: int) -> tuple[int, bool]:
        """Forcefully invalidate every private copy (back-invalidation or
        coherence invalidation).  No eviction notice is generated -- the
        caller *is* the directory side.  Returns (copies invalidated,
        dirty data present)."""
        copies = 0
        dirty = False
        for cache in (self.l1, self.l2):
            set_idx = cache.set_index(addr)
            way = cache.index[set_idx].get(addr, -1)
            if way >= 0:
                blk = cache.evict_way(set_idx, way, AccessContext())
                copies += 1
                dirty = dirty or blk.dirty
        return copies, dirty

    def downgrade(self, addr: int) -> bool:
        """Drop write permission (M -> S) keeping the data.  Returns True
        if dirty data was written back (the caller forwards it home)."""
        dirty = False
        for cache in (self.l1, self.l2):
            set_idx = cache.set_index(addr)
            way = cache.index[set_idx].get(addr, -1)
            if way >= 0:
                blk = cache.block_at(set_idx, way)
                dirty = dirty or blk.dirty
                blk.dirty = False
        return dirty
