"""Banked shared last-level cache.

Eight address-interleaved banks (Table I), each a set-associative array
with its own replacement-policy instance.  For Hawkeye, the PC predictor is
shared across banks (one logical policy observing the whole LLC stream);
for the offline MIN study, every bank shares one next-use oracle.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.set_assoc import AccessContext, SetAssociativeCache
from repro.cache.block import CacheBlock
from repro.cache.replacement import (
    BeladyPolicy,
    HawkeyePolicy,
    LRUPolicy,
    NextUseOracle,
    make_policy,
)
from repro.cache.replacement.hawkeye import HawkeyePredictor
from repro.params import LLCGeometry


class LastLevelCache:
    """The shared LLC: bank mapping plus per-bank arrays."""

    def __init__(
        self,
        geometry: LLCGeometry,
        policy_name: str = "lru",
        oracle: Optional[NextUseOracle] = None,
        policy_kwargs: Optional[dict] = None,
    ) -> None:
        self.geometry = geometry
        self.policy_name = policy_name
        kwargs = dict(policy_kwargs or {})
        self.hawkeye_predictor: Optional[HawkeyePredictor] = None
        self.banks: list[SetAssociativeCache] = []
        for b in range(geometry.banks):
            policy = self._make_bank_policy(policy_name, oracle, kwargs)
            self.banks.append(
                SetAssociativeCache(
                    geometry.sets_per_bank,
                    geometry.ways,
                    policy,
                    name=f"LLC[{b}]",
                    index_shift=(geometry.banks - 1).bit_length(),
                )
            )

    def _make_bank_policy(self, name, oracle, kwargs):
        if name == "belady":
            if oracle is None:
                raise ValueError("belady policy requires a next-use oracle")
            return BeladyPolicy(oracle)
        if name == "hawkeye":
            if self.hawkeye_predictor is None:
                self.hawkeye_predictor = HawkeyePredictor(
                    kwargs.pop("predictor_entries", 2048)
                )
            return HawkeyePolicy(predictor=self.hawkeye_predictor, **kwargs)
        return make_policy(name, **kwargs)

    # -- addressing ---------------------------------------------------------

    def bank_of(self, addr: int) -> int:
        return self.geometry.bank_index(addr)

    def set_of(self, addr: int) -> int:
        return self.geometry.set_index(addr)

    def location(self, addr: int) -> tuple[int, int, int]:
        """(bank, set, way) of a non-relocated resident copy, else
        (bank, set, -1)."""
        bank = self.bank_of(addr)
        set_idx = self.set_of(addr)
        way = self.banks[bank].index[set_idx].get(addr, -1)
        if way >= 0 and self.banks[bank].blocks[set_idx][way].relocated:
            way = -1
        return bank, set_idx, way

    def probe(self, addr: int) -> int:
        """Way of a non-relocated resident copy in its home set (-1 if
        absent)."""
        return self.location(addr)[2]

    def block(self, bank: int, set_idx: int, way: int) -> CacheBlock:
        return self.banks[bank].blocks[set_idx][way]

    def find_anywhere(self, addr: int) -> Optional[tuple[int, int, int]]:
        """(bank, set, way) of ``addr`` wherever it is (including relocated
        copies); None if absent.  Used by invariant checks and by the
        relocated-block directory back-pointer model."""
        bank = self.bank_of(addr)
        set_idx = self.set_of(addr)
        way = self.banks[bank].index[set_idx].get(addr, -1)
        if way >= 0:
            return bank, set_idx, way
        for b, cache in enumerate(self.banks):
            for s, d in enumerate(cache.index):
                w = d.get(addr, -1)
                if w >= 0:
                    return b, s, w
        return None

    # -- content queries ------------------------------------------------------

    def resident_addrs(self) -> set[int]:
        out: set[int] = set()
        for cache in self.banks:
            out |= cache.resident_addrs()
        return out

    def occupancy(self) -> int:
        return sum(c.occupancy() for c in self.banks)

    @property
    def blocks_total(self) -> int:
        return self.geometry.blocks

    def touch(self, addr: int, ctx: AccessContext) -> None:
        bank = self.bank_of(addr)
        self.banks[bank].touch(addr, ctx)
