"""On-chip interconnect model.

Table I specifies a 2D mesh with 1 ns routing delay per hop and 0.5 ns
link latency.  The LLC banks are distributed over the mesh (paper III-A:
"the banks are distributed over the on-chip interconnect, the exact
topology of which is not important for the discussion"), so the only
performance-relevant property is the *hop count* between a core and a
block's home bank.

:class:`MeshInterconnect` places cores and banks on a near-square mesh in
row-major order (cores first, banks after, the common tiled layout) and
returns per-(core, bank) one-way latencies in cycles.  A constant-latency
model remains available for configurations that predate the mesh
(``kind="flat"``), and is also what the scaled default uses unless a mesh
is requested -- the figures in the paper never sweep the topology.
"""

from __future__ import annotations

import math

from repro.params import CoreParams


class MeshInterconnect:
    """Hop-count mesh latency between cores and LLC banks."""

    def __init__(
        self,
        cores: int,
        banks: int,
        router_delay: int = 4,  # cycles per hop at 4 GHz (1 ns)
        link_delay: int = 2,  # cycles per link (0.5 ns)
    ) -> None:
        if cores <= 0 or banks <= 0:
            raise ValueError("cores and banks must be positive")
        self.cores = cores
        self.banks = banks
        self.router_delay = router_delay
        self.link_delay = link_delay
        nodes = cores + banks
        self.width = max(1, int(math.ceil(math.sqrt(nodes))))
        self._coords = {}
        for node in range(nodes):
            self._coords[node] = (node % self.width, node // self.width)
        # one-way latency table [core][bank]
        self.latency_table = [
            [self._latency(core, cores + bank) for bank in range(banks)]
            for core in range(cores)
        ]

    def _hops(self, a: int, b: int) -> int:
        (ax, ay), (bx, by) = self._coords[a], self._coords[b]
        return abs(ax - bx) + abs(ay - by)

    def _latency(self, a: int, b: int) -> int:
        hops = self._hops(a, b)
        if hops == 0:
            return self.router_delay
        return hops * (self.router_delay + self.link_delay)

    def latency(self, core: int, bank: int) -> int:
        """One-way core -> bank latency in cycles."""
        return self.latency_table[core][bank]

    def average_latency(self) -> float:
        total = sum(sum(row) for row in self.latency_table)
        return total / (self.cores * self.banks)

    def max_latency(self) -> int:
        return max(max(row) for row in self.latency_table)


class FlatInterconnect:
    """Constant one-way latency (the pre-mesh default)."""

    def __init__(self, latency: int) -> None:
        self._latency = latency

    def latency(self, core: int, bank: int) -> int:
        return self._latency

    def average_latency(self) -> float:
        return float(self._latency)

    def max_latency(self) -> int:
        return self._latency


def make_interconnect(core_params: CoreParams, cores: int, banks: int):
    """Build the interconnect configured in ``core_params``.

    ``interconnect_kind == "mesh"`` activates the Table I mesh; anything
    else keeps the flat constant-latency model."""
    kind = getattr(core_params, "interconnect_kind", "flat")
    if kind == "mesh":
        return MeshInterconnect(cores, banks)
    return FlatInterconnect(core_params.interconnect_latency)
