"""The full CMP cache hierarchy and its access flow.

This is the substrate every experiment runs on: per-core private L1+L2
hierarchies, the banked shared LLC, the sliced sparse directory, a MESI-
style invalidation protocol, the CHAR engine (when the scheme wants dead
hints), the DRAM model and energy accounting.  The LLC fill path is
delegated to an :class:`~repro.schemes.base.InclusionScheme`, which is
where the baseline inclusive design, the non-inclusive design, QBS, SHARP,
CHARonBase and the ZIV variants differ.

The protocol is modelled with *atomic transactions*: each access runs to
completion before the next begins, so transient states and races do not
arise.  This is the standard fidelity for trace-driven studies of
replacement behaviour; all quantities the paper reports (miss counts,
inclusion victims, relocations, relative speedups) are content dynamics
that this model captures.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.set_assoc import AccessContext
from repro.coherence.sparse_directory import SparseDirectory
from repro.core.char import CharEngine
from repro.energy.model import EnergyModel
from repro.hierarchy.llc import LastLevelCache
from repro.hierarchy.private import PrivateEviction, PrivateHierarchy
from repro.mem.dram import DRAMModel
from repro.params import SystemConfig
from repro.sim.stats import SimStats


class CoherenceError(RuntimeError):
    """Raised when the hierarchy detects an internal protocol violation."""


class CacheHierarchy:
    """An assembled CMP memory hierarchy."""

    #: Which engine produced a result (ledger/profile provenance).
    engine_name = "object"

    def __init__(
        self,
        config: SystemConfig,
        scheme,
        llc_policy: str = "lru",
        oracle=None,
        policy_kwargs: Optional[dict] = None,
    ) -> None:
        self.config = config
        self.llc = LastLevelCache(
            config.llc, llc_policy, oracle=oracle, policy_kwargs=policy_kwargs
        )
        self.directory = SparseDirectory(
            config.directory, config.llc, mode=config.directory_mode
        )
        self.private = [
            PrivateHierarchy(core, config.l1, config.l2)
            for core in range(config.cores)
        ]
        self.dram = DRAMModel(config.dram)
        self.stats = SimStats.for_cores(config.cores)
        self.scheme = scheme
        self.char: Optional[CharEngine] = None
        # Bound by TelemetryCollector.bind() for the duration of a traced
        # run; None otherwise, so emission sites pay one attribute check.
        self.telemetry = None
        self.energy = EnergyModel(ziv_mode=scheme.name.startswith("ziv"))
        self._wants_hints = getattr(scheme, "wants_private_hit_hints", False)
        from repro.hierarchy.interconnect import make_interconnect

        self.interconnect = make_interconnect(
            config.core, config.cores, config.llc.banks
        )
        from repro.prefetch import make_prefetcher

        self.prefetchers = [
            make_prefetcher(config.prefetch) for _ in range(config.cores)
        ]
        self._prefetch_on = self.prefetchers[0] is not None
        scheme.bind(self)
        if scheme.needs_char:
            self.char = CharEngine(
                config.cores, config.llc.banks, config.char
            )

    # ------------------------------------------------------------------ access

    def access(
        self,
        core: int,
        addr: int,
        is_write: bool = False,
        pc: int = 0,
        cycle: int = 0,
        global_pos: int = 0,
    ) -> int:
        """Run one memory access through the hierarchy; returns its
        latency in cycles.

        This is the per-access inner loop: the L1/L2 probes are inlined
        (one set-index computation and one dict lookup per level, reused
        by the hit path) instead of the generic ``probe``/``touch`` pair.
        Private caches never hold Relocated blocks, so the relocation
        filter in :meth:`SetAssociativeCache.probe` is not needed here.
        """
        ctx = AccessContext(core, pc, is_write, global_pos, cycle)
        cs = self.stats.cores[core]
        cs.accesses += 1
        priv = self.private[core]
        energy = self.energy
        energy.l1_accesses += 1

        l1 = priv.l1
        s1 = (addr >> l1.index_shift) & l1.set_mask
        w1 = l1.index[s1].get(addr, -1)
        if w1 >= 0:
            cs.l1_hits += 1
            extra = 0
            if is_write:
                # A dirty private copy is already in M (dirty => sole owner
                # under MESI), so the upgrade lookup can be skipped.
                if not l1.blocks[s1][w1].dirty:
                    extra = self._write_upgrade(core, addr)
            priv.hit_l1_at(s1, w1, ctx)
            if self._wants_hints:
                self.scheme.on_private_hit(addr, ctx)
            return priv.l1_latency + extra

        cs.l1_misses += 1
        energy.l2_accesses += 1
        l2 = priv.l2
        s2 = (addr >> l2.index_shift) & l2.set_mask
        w2 = l2.index[s2].get(addr, -1)
        if w2 >= 0:
            cs.l2_hits += 1
            l2_blk = l2.blocks[s2][w2]
            if self._prefetch_on and l2_blk.prefetched:
                self.stats.prefetch_useful += 1
            extra = 0
            if is_write and not l2_blk.dirty:
                extra = self._write_upgrade(core, addr)
            notices = priv.hit_l2_at(addr, s2, w2, ctx)
            self._process_notices(core, notices, ctx)
            if self._wants_hints:
                self.scheme.on_private_hit(addr, ctx)
            return priv.l1_latency + priv.l2_latency + extra

        cs.l2_misses += 1
        latency = self._llc_access(core, addr, ctx)
        if self._prefetch_on:
            self._issue_prefetches(core, addr, ctx)
        return latency

    # -------------------------------------------------------------- LLC path

    def _llc_base_latency(self, priv: PrivateHierarchy, core: int,
                          bank: int) -> int:
        return (
            priv.l1_latency
            + priv.l2_latency
            + 2 * self.interconnect.latency(core, bank)
            + self.config.llc.tag_latency
        )

    def _llc_access(self, core: int, addr: int, ctx: AccessContext) -> int:
        priv = self.private[core]
        llc = self.llc
        self.energy.llc_tag_accesses += 1
        self.energy.dir_accesses += 1
        entry = self.directory.lookup(addr)
        lat = self._llc_base_latency(priv, core, llc.bank_of(addr))

        if entry is not None and entry.relocated:
            return self._relocated_hit(core, addr, entry, ctx, lat)

        bank, set_idx, way = llc.location(addr)
        if way >= 0:
            return self._llc_hit(core, addr, entry, bank, set_idx, way, ctx, lat)

        self.stats.llc_misses += 1
        if entry is not None:
            # The "fourth case": directory hit, LLC miss.  Possible only in
            # a non-inclusive hierarchy; data is forwarded from a sharer.
            if self.scheme.inclusive:
                raise CoherenceError(
                    f"inclusive LLC missed on a directory-tracked block "
                    f"{addr:#x}"
                )
            return self._forward_fill(core, addr, entry, ctx, lat)
        return self._memory_fill(core, addr, ctx, lat)

    def _relocated_hit(
        self, core: int, addr: int, entry, ctx: AccessContext, lat: int
    ) -> int:
        """Access to a block in the Relocated state (paper III-C1): the
        directory entry supplies the <bank, set, way> location."""
        llc = self.llc
        blk = llc.block(entry.reloc_bank, entry.reloc_set, entry.reloc_way)
        if not blk.relocated or blk.addr != addr:
            raise CoherenceError(
                f"directory relocation pointer for {addr:#x} is stale"
            )
        extra = self._coherence_on_miss(core, addr, entry, ctx)
        llc.banks[entry.reloc_bank].policy.on_hit(
            entry.reloc_set, entry.reloc_way, ctx
        )
        self._char_recall(core, blk)
        self.scheme.after_set_update(entry.reloc_bank, entry.reloc_set)
        self.stats.llc_hits += 1
        self.stats.relocated_hits += 1
        self.energy.llc_data_reads += 1
        entry.add_sharer(core)
        if ctx.is_write:
            entry.owner = core
        notices = self.private[core].fill(addr, ctx, fill_hit=True)
        self._process_notices(core, notices, ctx)
        return (
            lat
            + self.config.llc.data_latency
            + self.config.core.relocated_access_penalty
            + extra
        )

    def _llc_hit(
        self, core, addr, entry, bank, set_idx, way, ctx, lat
    ) -> int:
        llc = self.llc
        blk = llc.block(bank, set_idx, way)
        extra = 0
        if entry is not None:
            extra = self._coherence_on_miss(core, addr, entry, ctx)
        llc.banks[bank].touch(addr, ctx)
        self._char_recall(core, blk)
        blk.not_in_prc = False
        blk.likely_dead = False
        self.scheme.after_set_update(bank, set_idx)
        self.stats.llc_hits += 1
        self.energy.llc_data_reads += 1
        if entry is None:
            entry = self._allocate_directory_entry(addr, ctx)
        entry.add_sharer(core)
        if ctx.is_write:
            entry.owner = core
        notices = self.private[core].fill(addr, ctx, fill_hit=True)
        self._process_notices(core, notices, ctx)
        return lat + self.config.llc.data_latency + extra

    def _forward_fill(
        self, core: int, addr: int, entry, ctx: AccessContext, lat: int
    ) -> int:
        """Non-inclusive fourth case: a sharer core supplies the data; the
        block is re-filled into the LLC."""
        extra = self._coherence_on_miss(core, addr, entry, ctx)
        self.scheme.install(addr, ctx)
        self.energy.llc_data_writes += 1
        entry.add_sharer(core)
        if ctx.is_write:
            entry.owner = core
        notices = self.private[core].fill(addr, ctx, fill_hit=False)
        self._process_notices(core, notices, ctx)
        return lat + self.config.core.coherence_forward_latency + extra

    def _memory_fill(
        self, core: int, addr: int, ctx: AccessContext, lat: int
    ) -> int:
        dram_lat = self.dram.access(addr, ctx.cycle)
        self.stats.dram_reads += 1
        self.energy.dram_accesses += 1
        self.scheme.install(addr, ctx)
        self.stats.llc_fills += 1
        self.energy.llc_data_writes += 1
        entry = self._allocate_directory_entry(addr, ctx)
        entry.add_sharer(core)
        if ctx.is_write:
            entry.owner = core
        notices = self.private[core].fill(addr, ctx, fill_hit=False)
        self._process_notices(core, notices, ctx)
        return lat + dram_lat

    # ------------------------------------------------------------ prefetching

    def _issue_prefetches(self, core: int, addr: int,
                          ctx: AccessContext) -> None:
        """On a demand L2 miss, run the core's prefetch engine and fetch
        its candidates into the L2 + LLC, off the critical path."""
        engine = self.prefetchers[core]
        for candidate in engine.on_demand_miss(addr, ctx.pc):
            self.stats.prefetches_issued += 1
            self._prefetch_fill(core, candidate, ctx)

    def _prefetch_fill(self, core: int, addr: int,
                       ctx: AccessContext) -> None:
        priv = self.private[core]
        if priv.has_block(addr):
            return
        entry = self.directory.lookup(addr)
        if entry is not None and entry.owner >= 0 and entry.owner != core:
            # Never disturb a remote M copy for a speculative fetch.
            return
        pf_ctx = AccessContext(core, ctx.pc, False, ctx.global_pos, ctx.cycle)
        if entry is not None and entry.relocated:
            blk = self.llc.block(
                entry.reloc_bank, entry.reloc_set, entry.reloc_way
            )
            if blk.addr != addr:
                raise CoherenceError("stale relocation pointer in prefetch")
            self.llc.banks[entry.reloc_bank].policy.on_hit(
                entry.reloc_set, entry.reloc_way, pf_ctx
            )
            self.scheme.after_set_update(entry.reloc_bank, entry.reloc_set)
            fill_hit = True
        else:
            bank, set_idx, way = self.llc.location(addr)
            if way >= 0:
                blk = self.llc.block(bank, set_idx, way)
                self.llc.banks[bank].touch(addr, pf_ctx)
                blk.not_in_prc = False
                blk.likely_dead = False
                blk.char_tag = None
                self.scheme.after_set_update(bank, set_idx)
                fill_hit = True
            elif entry is not None:
                # Non-inclusive fourth case: skip speculative forwards.
                return
            else:
                self.dram.access(addr, pf_ctx.cycle)
                self.stats.dram_reads += 1
                self.energy.dram_accesses += 1
                self.scheme.install(addr, pf_ctx)
                self.energy.llc_data_writes += 1
                fill_hit = False
        if entry is None:
            entry = self._allocate_directory_entry(addr, pf_ctx)
        entry.add_sharer(core)
        self.stats.prefetch_fills += 1
        notices = priv.fill_l2_only(addr, pf_ctx, fill_hit=fill_hit)
        self._process_notices(core, notices, ctx)

    # ------------------------------------------------------------- coherence

    def _write_upgrade(self, core: int, addr: int) -> int:
        """S -> M upgrade on a private write hit: invalidate other sharers
        through the directory.  Returns the extra latency."""
        entry = self.directory.lookup(addr)
        if entry is None:
            raise CoherenceError(
                f"private hit on {addr:#x} with no directory entry"
            )
        if entry.owner == core:
            return 0
        extra = 0
        others = entry.sharers & ~(1 << core)
        if others:
            self._invalidate_sharers(others, addr)
            entry.sharers = 1 << core
            extra = self.config.core.coherence_forward_latency
        entry.owner = core
        return extra

    def _coherence_on_miss(
        self, core: int, addr: int, entry, ctx: AccessContext
    ) -> int:
        """Coherence actions before serving a private miss from the LLC:
        downgrade a remote M copy on a read; invalidate all remote copies
        on a write.  Returns the extra latency."""
        extra = 0
        if ctx.is_write:
            others = entry.sharers & ~(1 << core)
            if others:
                self._invalidate_sharers(others, addr)
                entry.sharers &= 1 << core
                entry.owner = -1
                extra = self.config.core.coherence_forward_latency
        elif entry.owner >= 0 and entry.owner != core:
            dirty = self.private[entry.owner].downgrade(addr)
            entry.owner = -1
            if dirty:
                self._merge_dirty_data(addr)
            extra = self.config.core.coherence_forward_latency
        return extra

    def _invalidate_sharers(self, mask: int, addr: int) -> None:
        core = 0
        while mask:
            if mask & 1:
                copies, _dirty = self.private[core].invalidate(addr)
                if copies:
                    self.stats.coherence_invalidations += 1
            mask >>= 1
            core += 1

    def _merge_dirty_data(self, addr: int) -> None:
        """Dirty data written back from a private cache: update the LLC
        copy if one exists (normal or relocated), else write to memory."""
        bank, set_idx, way = self.llc.location(addr)
        if way >= 0:
            self.llc.block(bank, set_idx, way).dirty = True
            return
        entry = self.directory.lookup(addr)
        if entry is not None and entry.relocated:
            self.llc.block(
                entry.reloc_bank, entry.reloc_set, entry.reloc_way
            ).dirty = True
            return
        self.writeback_to_memory(addr, None)

    # ---------------------------------------------------------- notices

    def _process_notices(
        self, core: int, notices: list[PrivateEviction], ctx: AccessContext
    ) -> None:
        for ev in notices:
            self._handle_eviction_notice(core, ev, ctx)

    def _handle_eviction_notice(
        self, core: int, ev: PrivateEviction, ctx: AccessContext
    ) -> None:
        """A block left ``core``'s private hierarchy: notify the home bank
        (paper III-A keeps the sparse directory exactly up to date)."""
        self.stats.eviction_notices += 1
        bank = self.llc.bank_of(ev.addr)
        group = None
        dead_hint = False
        if self.char is not None:
            group, dead_hint = self.char.on_l2_eviction(core, ev)
            self.char.on_notice(bank, core)
        entry = self.directory.lookup(ev.addr)
        if entry is None:
            raise CoherenceError(
                f"eviction notice for untracked block {ev.addr:#x}"
            )
        entry.remove_sharer(core)
        if entry.sharers:
            # Copies remain elsewhere; a dirty eviction cannot occur here
            # under MESI (an M copy is sole), so nothing more to do.
            return
        if entry.relocated:
            self._kill_relocated_block(entry, ev.dirty, ctx)
            self.directory.free(ev.addr)
            return
        self.directory.free(ev.addr)
        b, s, way = self.llc.location(ev.addr)
        if way >= 0:
            blk = self.llc.block(b, s, way)
            blk.not_in_prc = True
            if ev.dirty:
                blk.dirty = True
                self.stats.llc_writebacks_in += 1
            if dead_hint:
                blk.likely_dead = True
            if group is not None:
                blk.char_tag = (core, group)
            self.scheme.after_set_update(b, s)
        elif ev.dirty:
            # Non-inclusive LLC without a copy: the writeback goes to
            # memory.
            self.writeback_to_memory(ev.addr, ctx)

    def _kill_relocated_block(self, entry, notice_dirty: bool,
                              ctx: AccessContext) -> None:
        """Last private copy of a relocated block gone: the relocated LLC
        block is invalidated, ending its life (paper III-C2)."""
        b, s, w = entry.reloc_bank, entry.reloc_set, entry.reloc_way
        blk = self.llc.block(b, s, w)
        if not blk.relocated or blk.addr != entry.addr:
            raise CoherenceError(
                f"stale relocation pointer while killing {entry.addr:#x}"
            )
        dirty = blk.dirty or notice_dirty
        self.llc.banks[b].evict_way(s, w, ctx or AccessContext())
        if dirty:
            self.writeback_to_memory(entry.addr, ctx)
        self.scheme.after_set_update(b, s)

    # ------------------------------------------------------ directory events

    def _allocate_directory_entry(self, addr: int, ctx: AccessContext):
        entry, displaced = self.directory.allocate(addr)
        if displaced is not None:
            self._handle_displaced_entry(displaced, ctx)
        return entry

    def _handle_displaced_entry(self, displaced, ctx: AccessContext) -> None:
        """A sparse-directory entry was evicted for capacity (MESI mode):
        back-invalidate the tracked block's private copies, and invalidate
        its relocated LLC copy if it has one (paper III-F)."""
        self.stats.directory_evictions += 1
        self.stats.back_invalidations_dir += 1
        addr = displaced.addr
        dirty_any = False
        victims = 0
        mask = displaced.sharers
        core = 0
        while mask:
            if mask & 1:
                copies, dirty = self.private[core].invalidate(addr)
                if copies:
                    victims += 1
                    self.stats.inclusion_victims_dir += 1
                dirty_any = dirty_any or dirty
            mask >>= 1
            core += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "directory_eviction",
                addr=addr,
                sharers=displaced.sharers,
                victims=victims,
                relocated=displaced.relocated,
            )
        if displaced.relocated:
            b, s, w = (
                displaced.reloc_bank,
                displaced.reloc_set,
                displaced.reloc_way,
            )
            blk = self.llc.block(b, s, w)
            dirty = blk.dirty or dirty_any
            self.llc.banks[b].evict_way(s, w, ctx)
            if dirty:
                self.writeback_to_memory(addr, ctx)
            self.scheme.after_set_update(b, s)
            return
        b, s, way = self.llc.location(addr)
        if way >= 0:
            blk = self.llc.block(b, s, way)
            blk.not_in_prc = True
            if dirty_any:
                blk.dirty = True
            self.scheme.after_set_update(b, s)
        elif dirty_any:
            self.writeback_to_memory(addr, ctx)

    # ------------------------------------------------------ scheme services

    def privately_cached(self, addr: int) -> bool:
        entry = self.directory.lookup(addr)
        return entry is not None and entry.sharers != 0

    def sharer_mask(self, addr: int) -> int:
        entry = self.directory.lookup(addr)
        return entry.sharers if entry is not None else 0

    def back_invalidate(self, addr: int, reason: str = "llc") -> None:
        """Forcefully invalidate every private copy of ``addr`` and free
        its directory entry -- the inclusion-victim generator.  If a dirty
        private copy existed, the LLC copy (which the caller is about to
        evict) is marked dirty so the data reaches memory."""
        entry = self.directory.lookup(addr)
        if entry is None or entry.sharers == 0:
            return
        if reason == "llc":
            self.stats.back_invalidations_llc += 1
        else:
            self.stats.back_invalidations_dir += 1
        dirty_any = False
        victims = 0
        mask = entry.sharers
        core = 0
        while mask:
            if mask & 1:
                copies, dirty = self.private[core].invalidate(addr)
                if copies:
                    victims += 1
                    if reason == "llc":
                        self.stats.inclusion_victims_llc += 1
                    else:
                        self.stats.inclusion_victims_dir += 1
                dirty_any = dirty_any or dirty
            mask >>= 1
            core += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "back_invalidation",
                addr=addr,
                trigger=reason,
                sharers=entry.sharers,
                victims=victims,
            )
        self.directory.free(addr)
        if dirty_any:
            b, s, way = self.llc.location(addr)
            if way >= 0:
                self.llc.block(b, s, way).dirty = True
            else:
                self.writeback_to_memory(addr, None)

    def writeback_to_memory(self, addr: int, ctx) -> None:
        cycle = ctx.cycle if ctx is not None else 0
        self.dram.write_back(addr, cycle)
        self.stats.dram_writes += 1
        self.stats.llc_writebacks_out += 1
        self.energy.dram_accesses += 1

    def _char_recall(self, core: int, blk) -> None:
        """CHAR recall detection: the same core pulls back a block it had
        evicted from its L2 (paper III-D6)."""
        if blk.char_tag is not None:
            if self.char is not None and blk.char_tag[0] == core:
                self.char.on_recall(core, blk.char_tag[1])
            blk.char_tag = None

    # ------------------------------------------------------------ diagnostics

    def inclusion_holds(self) -> bool:
        """Every privately cached block is present in the LLC (normal or
        relocated).  Must hold for every inclusive scheme.  Delegates to
        the invariant auditor's first-principles check."""
        from repro.sim.audit import check_inclusion

        return not check_inclusion(self)

    def directory_consistent(self) -> bool:
        """The directory tracks exactly the privately cached blocks, and
        every relocation tuple is coherent both ways (auditor checks)."""
        from repro.sim.audit import check_conservation, check_directory

        return not (check_conservation(self) or check_directory(self))

    def audit_violations(self) -> list:
        """One full invariant-audit sweep over the current state; returns
        the structured violations (see :mod:`repro.sim.audit`)."""
        from repro.sim.audit import audit_hierarchy

        return audit_hierarchy(self)

    def finalize_stats(self) -> None:
        """Copy late-bound counters into the stats object."""
        self.stats.directory_spills = self.directory.spill_count
        scheme_stats = self.scheme.on_stats()
        pv_flips = scheme_stats.get("pv_flips")
        if pv_flips is not None:
            self.energy.pv_updates = pv_flips
