"""Directory-based coherence substrate (sparse directory, paper III-A/III-F)."""

from repro.coherence.sparse_directory import SparseDirectory

__all__ = ["SparseDirectory"]
