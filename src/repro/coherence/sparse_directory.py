"""Sliced sparse coherence directory.

The paper's baseline keeps the coherence directory decoupled from the LLC
as a *sparse directory* (III-A): a tagged set-associative structure, one
slice per LLC bank, sized to 2x the aggregate private L2 tags, with 1-bit
NRU replacement.  Private-cache evictions are always notified so the
directory is exact: an entry exists iff the block is privately cached.

The ZIV design extends each entry with a ``Relocated`` state and the
``<bank, set, way>`` of the relocated LLC copy (III-C).

Two modes:

* ``"mesi"`` -- bounded slices; allocating into a full set evicts the NRU
  victim, whose privately cached copies must be back-invalidated by the
  caller (these are the *directory-eviction* inclusion victims of Fig. 15).
* ``"zerodev"`` -- models the ZeroDEV protocol (Chaudhuri, HPCA 2021):
  instead of evicting, the victim entry spills into the LLC.  We model the
  spill as an unbounded side table; the performance-relevant effect -- no
  back-invalidations from directory evictions -- is exact.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.block import DirectoryEntry
from repro.params import DirectoryGeometry, LLCGeometry


class DirectoryProtocolError(LookupError):
    """A directory operation that the notice protocol should make
    impossible: freeing an untracked address (double free, or a missed
    allocate).  Carries enough context -- slice, set, address -- for
    auditor and debug output to be actionable."""


class DirectorySlice:
    """One set-associative directory slice with NRU replacement."""

    def __init__(self, geometry: DirectoryGeometry, name: str) -> None:
        self.geometry = geometry
        self.name = name
        self.sets = [
            [DirectoryEntry() for _ in range(geometry.ways)]
            for _ in range(geometry.sets)
        ]
        self.index = [dict() for _ in range(geometry.sets)]  # addr -> way

    def _set_of(self, addr: int, banks: int) -> int:
        return self.geometry.set_index(addr, banks)

    def lookup(self, addr: int, banks: int) -> Optional[DirectoryEntry]:
        set_idx = self._set_of(addr, banks)
        way = self.index[set_idx].get(addr, -1)
        if way < 0:
            return None
        entry = self.sets[set_idx][way]
        entry.nru = True
        return entry

    def peek(self, addr: int, banks: int) -> Optional[DirectoryEntry]:
        """Side-effect-free lookup: no NRU update.  Used by invariant
        checks, which must not perturb replacement state."""
        set_idx = self._set_of(addr, banks)
        way = self.index[set_idx].get(addr, -1)
        return self.sets[set_idx][way] if way >= 0 else None

    def free(self, addr: int, banks: int) -> None:
        set_idx = self._set_of(addr, banks)
        way = self.index[set_idx].pop(addr, -1)
        if way < 0:
            raise DirectoryProtocolError(
                f"{self.name}: free of untracked block {addr:#x} "
                f"(set {set_idx}) -- double free, or the block was never "
                f"allocated in this slice"
            )
        self.sets[set_idx][way].reset()

    def _nru_victim(self, set_idx: int) -> int:
        entries = self.sets[set_idx]
        if all(e.nru for e in entries):
            for e in entries:
                e.nru = False
        for way, e in enumerate(entries):
            if not e.nru:
                return way
        return 0

    def allocate(
        self, addr: int, banks: int
    ) -> tuple[DirectoryEntry, Optional[DirectoryEntry]]:
        """Allocate an entry for ``addr``.

        Returns (new entry, displaced entry or None).  The displaced entry
        is a *copy* whose state the caller must act on (back-invalidation
        or ZeroDEV spill); the underlying storage is reused immediately.
        """
        set_idx = self._set_of(addr, banks)
        if addr in self.index[set_idx]:
            raise LookupError(f"{self.name}: {addr:#x} already tracked")
        victim_copy: Optional[DirectoryEntry] = None
        way = next(
            (w for w, e in enumerate(self.sets[set_idx]) if not e.valid), -1
        )
        if way < 0:
            way = self._nru_victim(set_idx)
            old = self.sets[set_idx][way]
            victim_copy = DirectoryEntry()
            victim_copy.addr = old.addr
            victim_copy.valid = True
            victim_copy.sharers = old.sharers
            victim_copy.owner = old.owner
            victim_copy.relocated = old.relocated
            victim_copy.reloc_bank = old.reloc_bank
            victim_copy.reloc_set = old.reloc_set
            victim_copy.reloc_way = old.reloc_way
            del self.index[set_idx][old.addr]
            old.reset()
        entry = self.sets[set_idx][way]
        entry.reset()
        entry.addr = addr
        entry.valid = True
        entry.nru = True
        self.index[set_idx][addr] = way
        return entry, victim_copy

    def iter_valid(self) -> Iterator[DirectoryEntry]:
        for entries in self.sets:
            for e in entries:
                if e.valid:
                    yield e

    def occupancy(self) -> int:
        return sum(1 for _ in self.iter_valid())

    def tracked_count(self) -> int:
        """Valid-entry count from the address index (no entry scan).

        Equals :meth:`occupancy` -- the index holds exactly the valid
        entries -- but is cheap enough for the telemetry sampler to call
        every interval."""
        return sum(len(d) for d in self.index)


class SparseDirectory:
    """The full directory: one slice per LLC bank, plus the ZeroDEV spill."""

    def __init__(
        self,
        geometry: DirectoryGeometry,
        llc_geometry: LLCGeometry,
        mode: str = "mesi",
    ) -> None:
        if mode not in ("mesi", "zerodev"):
            raise ValueError(f"unknown directory mode {mode!r}")
        self.geometry = geometry
        self.llc_geometry = llc_geometry
        self.mode = mode
        self.slices = [
            DirectorySlice(geometry, name=f"dir[{b}]")
            for b in range(llc_geometry.banks)
        ]
        self.spill: dict[int, DirectoryEntry] = {}
        self.spill_count = 0

    def _slice_of(self, addr: int) -> DirectorySlice:
        return self.slices[self.llc_geometry.bank_index(addr)]

    def lookup(self, addr: int) -> Optional[DirectoryEntry]:
        entry = self._slice_of(addr).lookup(addr, self.llc_geometry.banks)
        if entry is None and self.mode == "zerodev":
            return self.spill.get(addr)
        return entry

    def peek(self, addr: int) -> Optional[DirectoryEntry]:
        """Side-effect-free :meth:`lookup` (no NRU touch) for audits."""
        entry = self._slice_of(addr).peek(addr, self.llc_geometry.banks)
        if entry is None and self.mode == "zerodev":
            return self.spill.get(addr)
        return entry

    def allocate(
        self, addr: int
    ) -> tuple[DirectoryEntry, Optional[DirectoryEntry]]:
        """Allocate a tracking entry for ``addr``.

        In ``zerodev`` mode the displaced entry (if any) moves into the
        spill table and ``None`` is returned as the displaced entry, since
        the caller need not back-invalidate anything."""
        if self.mode == "zerodev" and addr in self.spill:
            raise LookupError(f"{addr:#x} already tracked (spilled)")
        entry, displaced = self._slice_of(addr).allocate(
            addr, self.llc_geometry.banks
        )
        if displaced is not None and self.mode == "zerodev":
            self.spill[displaced.addr] = displaced
            self.spill_count += 1
            displaced = None
        return entry, displaced

    def free(self, addr: int) -> None:
        if self.mode == "zerodev" and addr in self.spill:
            del self.spill[addr]
            return
        self._slice_of(addr).free(addr, self.llc_geometry.banks)

    def iter_valid(self) -> Iterator[DirectoryEntry]:
        for sl in self.slices:
            yield from sl.iter_valid()
        yield from self.spill.values()

    def occupancy(self) -> int:
        return sum(sl.occupancy() for sl in self.slices) + len(self.spill)

    def tracked_count(self) -> int:
        """Index-based :meth:`occupancy` (see
        :meth:`DirectorySlice.tracked_count`); cheap enough to sample every
        telemetry interval."""
        return (
            sum(sl.tracked_count() for sl in self.slices) + len(self.spill)
        )

    @property
    def entries(self) -> int:
        return self.geometry.entries * len(self.slices)
