"""Event-cost DDR3-like main-memory model.

The paper backs its CMP with DRAMSim2 configured as two single-channel
DDR3-2133 controllers (Table I).  A full command-level DRAM simulator is
unnecessary for the paper's results (which never sweep memory parameters),
so this model captures the three first-order effects that make LLC-miss
counts translate into time:

* **row-buffer locality** -- consecutive misses to the same DRAM row are
  much cheaper (open-page policy, one open row per bank);
* **bank-level parallelism** -- requests to distinct banks overlap, while
  requests to a busy bank queue behind it;
* **channel interleaving** -- block addresses stripe across channels.

Latencies are expressed in CPU cycles (4 GHz core clock).
"""

from __future__ import annotations

from repro.params import DRAMParams


class DRAMModel:
    """Bank/row-buffer event-cost model.

    ``access(block_addr, cycle)`` returns the full service latency of a
    request arriving at ``cycle``, including any wait for the target bank.
    """

    def __init__(self, params: DRAMParams | None = None) -> None:
        self.params = params or DRAMParams()
        p = self.params
        n_banks = p.channels * p.banks_per_channel
        self._open_row = [-1] * n_banks
        self._bank_ready = [0] * n_banks
        # statistics
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.total_wait = 0

    def _map(self, block_addr: int) -> tuple[int, int]:
        """Return (global bank index, row id) for a block address."""
        p = self.params
        channel = block_addr & (p.channels - 1)
        rest = block_addr >> (p.channels - 1).bit_length()
        bank = rest & (p.banks_per_channel - 1)
        row = rest >> (p.banks_per_channel - 1).bit_length() >> p.row_bits
        return channel * p.banks_per_channel + bank, row

    def access(self, block_addr: int, cycle: int, is_write: bool = False) -> int:
        """Service a request; returns latency from ``cycle`` to data return."""
        p = self.params
        bank, row = self._map(block_addr)
        wait = max(0, self._bank_ready[bank] - cycle)
        self.total_wait += wait
        open_row = self._open_row[bank]
        if open_row == row:
            service = p.row_hit_latency
            self.row_hits += 1
        elif open_row < 0:
            service = p.row_miss_latency
            self.row_misses += 1
        else:
            service = p.row_conflict_latency
            self.row_conflicts += 1
        self._open_row[bank] = row
        start = cycle + wait
        self._bank_ready[bank] = start + p.bank_busy
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return wait + service

    def write_back(self, block_addr: int, cycle: int) -> int:
        """Post a writeback; occupies the bank but is off the critical path."""
        return self.access(block_addr, cycle, is_write=True)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0
