"""Main-memory substrate."""

from repro.mem.dram import DRAMModel

__all__ = ["DRAMModel"]
