"""Configuration dataclasses for the simulated CMP.

The paper (Table I) simulates an eight-core CMP with 32 KB L1 caches,
256/512/768 KB per-core L2 caches, and an 8 MB 16-way shared LLC split into
eight banks, backed by a 2x sparse coherence directory.  A pure-Python
cycle-level model of that machine at full scale would be far too slow, so the
default presets here are *geometrically scaled*: every capacity ratio the
paper identifies as first-order (aggregate-L2/LLC, L1/L2, directory
provisioning factor) is preserved while absolute capacities shrink by a
constant factor.  ``paper_scale_config`` builds the full-size geometry for
users with the patience (or PyPy) to run it.

All capacities are expressed in *blocks* (cache lines); the block size only
matters for address arithmetic and storage-overhead reporting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any


BLOCK_SHIFT = 6
BLOCK_BYTES = 1 << BLOCK_SHIFT


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache array.

    ``sets`` must be a power of two so that set indexing is a bit slice of
    the block address, as in the paper's "simple hash functions" assumption.
    """

    sets: int
    ways: int
    latency: int = 1

    def __post_init__(self) -> None:
        if not _is_pow2(self.sets):
            raise ConfigError(f"sets must be a power of two, got {self.sets}")
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")
        if self.latency < 0:
            raise ConfigError(f"latency must be >= 0, got {self.latency}")

    @property
    def blocks(self) -> int:
        return self.sets * self.ways

    @property
    def capacity_bytes(self) -> int:
        return self.blocks * BLOCK_BYTES

    def set_index(self, block_addr: int) -> int:
        return block_addr & (self.sets - 1)


@dataclass(frozen=True)
class LLCGeometry:
    """Geometry of the banked shared LLC.

    The home bank of a block is selected by the low bits of the block
    address; the set within the bank by the next bits, mirroring an
    address-interleaved banked LLC.
    """

    banks: int
    sets_per_bank: int
    ways: int
    tag_latency: int = 2
    data_latency: int = 5

    def __post_init__(self) -> None:
        if not _is_pow2(self.banks):
            raise ConfigError(f"banks must be a power of two, got {self.banks}")
        if not _is_pow2(self.sets_per_bank):
            raise ConfigError(
                f"sets_per_bank must be a power of two, got {self.sets_per_bank}"
            )
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")

    @property
    def blocks(self) -> int:
        return self.banks * self.sets_per_bank * self.ways

    @property
    def capacity_bytes(self) -> int:
        return self.blocks * BLOCK_BYTES

    def bank_index(self, block_addr: int) -> int:
        return block_addr & (self.banks - 1)

    def set_index(self, block_addr: int) -> int:
        return (block_addr >> (self.banks - 1).bit_length()) & (
            self.sets_per_bank - 1
        )


@dataclass(frozen=True)
class DirectoryGeometry:
    """Geometry of one sparse-directory slice (one slice per LLC bank).

    The paper provisions the directory with twice the number of entries as
    aggregate L2 tags (a "2x sparse directory"), organised 8-way with 1-bit
    NRU replacement.
    """

    sets: int
    ways: int = 8

    def __post_init__(self) -> None:
        if not _is_pow2(self.sets):
            raise ConfigError(f"sets must be a power of two, got {self.sets}")
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")

    @property
    def entries(self) -> int:
        return self.sets * self.ways

    def set_index(self, block_addr: int, banks: int) -> int:
        """Slice-set index with XOR folding.

        Sparse directories hash the index to spread conflicts: a plain
        bit-slice would alias the identically laid-out address spaces of
        different processes onto the same few sets."""
        a = block_addr >> (banks - 1).bit_length()
        bits = (self.sets - 1).bit_length()
        if bits == 0:
            return 0
        idx = 0
        while a:
            idx ^= a
            a >>= bits
        return idx & (self.sets - 1)


@dataclass(frozen=True)
class DRAMParams:
    """Latency parameters of the event-cost DDR3-like model (in CPU cycles).

    Defaults approximate a 4 GHz core in front of DDR3-2133 with
    14-14-14-35 timing, as in Table I: a row-buffer hit costs roughly the
    CAS latency plus channel transfer; a row miss adds activate; a conflict
    adds precharge.
    """

    channels: int = 2
    banks_per_channel: int = 16
    row_bits: int = 4  # log2(blocks per row buffer): 1 KB row = 16 blocks
    row_hit_latency: int = 90
    row_miss_latency: int = 150
    row_conflict_latency: int = 210
    bank_busy: int = 24  # cycles a bank stays busy per request

    def __post_init__(self) -> None:
        if not _is_pow2(self.channels):
            raise ConfigError("channels must be a power of two")
        if not _is_pow2(self.banks_per_channel):
            raise ConfigError("banks_per_channel must be a power of two")


@dataclass(frozen=True)
class CoreParams:
    """Timing parameters of the simple in-order core cost model."""

    base_cpi: float = 0.5  # CPI of non-memory instructions (4-wide-ish)
    interconnect_latency: int = 8  # one-way core <-> LLC bank (flat model)
    interconnect_kind: str = "flat"  # "flat" or "mesh" (Table I's 2D mesh)
    relocated_access_penalty: int = 2  # extra cycles for relocated blocks
    coherence_forward_latency: int = 20  # cross-core data forward

    def __post_init__(self) -> None:
        if self.interconnect_kind not in ("flat", "mesh"):
            raise ConfigError(
                f"unknown interconnect kind {self.interconnect_kind!r}"
            )


@dataclass(frozen=True)
class PrefetchParams:
    """L2 hardware prefetcher configuration.

    The paper's CMP model has no prefetcher (its CHAR adaptation notes the
    prefetch attribute is constant); the prefetcher here exists for the
    inclusion-policy x prefetching ablation in the spirit of Backes &
    Jimenez (MEMSYS 2019), which the paper cites as [1].
    """

    kind: str = "none"  # "none" | "nextline" | "stride"
    degree: int = 2
    table_entries: int = 256  # stride-table size
    min_confidence: int = 2

    def __post_init__(self) -> None:
        if self.kind not in ("none", "nextline", "stride"):
            raise ConfigError(f"unknown prefetcher kind {self.kind!r}")
        if self.degree <= 0:
            raise ConfigError("prefetch degree must be positive")


@dataclass(frozen=True)
class AuditParams:
    """Runtime invariant-auditor settings (see :mod:`repro.sim.audit`).

    ``interval`` selects the sampling cadence: ``0`` audits at end of run
    only, ``1`` after every access, ``N`` after every N-th access (an
    end-of-run sweep always runs when the auditor is enabled).  With
    ``fail_fast`` the first violating sweep raises
    :class:`~repro.sim.audit.AuditError`; otherwise violations are
    collected into ``SimResult.audit`` (capped at ``max_violations``).

    Audit settings are part of :class:`SystemConfig`, so they participate
    in the parallel runner's recipe cache key: audited and unaudited runs
    never alias in the persistent result cache.
    """

    enabled: bool = False
    interval: int = 0
    fail_fast: bool = False
    max_violations: int = 64

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ConfigError(
                f"audit interval must be >= 0, got {self.interval}"
            )
        if self.max_violations <= 0:
            raise ConfigError(
                f"audit max_violations must be positive, "
                f"got {self.max_violations}"
            )


#: Telemetry severity levels, least to most severe.
TELEMETRY_SEVERITIES = ("debug", "info", "warn")

#: Telemetry event categories (see :mod:`repro.sim.telemetry`).
TELEMETRY_CATEGORIES = ("relocation", "coherence", "directory", "char")


@dataclass(frozen=True)
class TelemetryParams:
    """Telemetry-layer settings (see :mod:`repro.sim.telemetry`).

    ``interval`` is the sampling cadence in accesses: every ``interval``-th
    access the collector snapshots the delta of every
    :class:`~repro.sim.stats.SimStats` counter plus the live gauges
    (relocation-FIFO depth, per-property ``emptyPV`` state, CHAR ``d``,
    directory occupancy) into a ring-buffered time series of at most
    ``ring_capacity`` samples (oldest dropped first).

    ``events`` selects structured event tracing: the empty string traces
    nothing, ``"all"`` traces every category, and a ``+``-joined list
    (e.g. ``"relocation+char"``) traces a subset.  Events below
    ``min_severity`` are dropped; at most ``max_events`` are retained.

    Telemetry settings are part of :class:`SystemConfig`, so they
    participate in the parallel runner's recipe cache key exactly like
    :class:`AuditParams`: a telemetry-enabled run never aliases a plain
    run in the persistent result cache.  With ``enabled=False`` the
    simulation adds no per-access work beyond one predicate check.
    """

    enabled: bool = False
    interval: int = 1000
    ring_capacity: int = 4096
    events: str = ""
    max_events: int = 65536
    min_severity: str = "info"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError(
                f"telemetry interval must be positive, got {self.interval}"
            )
        if self.ring_capacity <= 0:
            raise ConfigError(
                f"telemetry ring_capacity must be positive, "
                f"got {self.ring_capacity}"
            )
        if self.max_events <= 0:
            raise ConfigError(
                f"telemetry max_events must be positive, "
                f"got {self.max_events}"
            )
        if self.min_severity not in TELEMETRY_SEVERITIES:
            raise ConfigError(
                f"unknown telemetry severity {self.min_severity!r}; "
                f"expected one of {TELEMETRY_SEVERITIES}"
            )
        for cat in self.event_categories():
            if cat not in TELEMETRY_CATEGORIES:
                raise ConfigError(
                    f"unknown telemetry event category {cat!r}; "
                    f"expected one of {TELEMETRY_CATEGORIES} or 'all'"
                )

    def event_categories(self) -> tuple[str, ...]:
        """The traced categories as a tuple ('all' expanded)."""
        if not self.events:
            return ()
        if self.events == "all":
            return TELEMETRY_CATEGORIES
        return tuple(
            tok for tok in (t.strip() for t in self.events.split("+")) if tok
        )


@dataclass(frozen=True)
class ProfileParams:
    """Phase-profiler settings (see :mod:`repro.obs.profile`).

    When enabled, :class:`~repro.sim.engine.Simulation` brackets its
    coarse phases -- trace decode, the access loop, the audit and
    telemetry hooks, the end-of-run flush -- with wall-clock timers and
    derives a deterministic hot-path attribution from the run's own
    counters, surfaced as ``SimResult.profile``.

    Profile settings are part of :class:`SystemConfig`, so they
    participate in the parallel runner's recipe cache key exactly like
    :class:`AuditParams`/:class:`TelemetryParams`: a profiled run never
    aliases a plain run in the persistent result cache (the timings in a
    cached profiled result are those of the original execution).  With
    ``enabled=False`` the simulation adds no per-access work beyond one
    predicate check.
    """

    enabled: bool = False


@dataclass(frozen=True)
class CHARParams:
    """Parameters of the adapted CHAR dead-block inference (paper III-D6)."""

    initial_d: int = 6
    min_d: int = 1
    decrement_interval: int = 4096  # private-cache eviction notices
    reset_interval: int = 65536  # notices between periodic resets of d
    min_evictions: int = 16  # warm-up before a group may be inferred dead
    counter_halve_at: int = 4096  # halve group counters at this eviction count
    reuse_buckets: int = 4  # L2 demand-reuse count saturates at buckets-1


#: The simulation engines a configuration may name.  Shared with
#: ``config_io`` so dict-form validation (and the simulation service's
#: structured rejection errors) stays in lockstep with the constructor.
ENGINES: tuple[str, ...] = ("object", "fast")


@dataclass(frozen=True)
class SystemConfig:
    """Full description of one simulated CMP configuration."""

    cores: int
    l1: CacheGeometry
    l2: CacheGeometry
    llc: LLCGeometry
    directory: DirectoryGeometry
    dram: DRAMParams = field(default_factory=DRAMParams)
    core: CoreParams = field(default_factory=CoreParams)
    char: CHARParams = field(default_factory=CHARParams)
    prefetch: PrefetchParams = field(default_factory=PrefetchParams)
    audit: AuditParams = field(default_factory=AuditParams)
    telemetry: TelemetryParams = field(default_factory=TelemetryParams)
    profile: ProfileParams = field(default_factory=ProfileParams)
    directory_mode: str = "mesi"  # "mesi" (bounded) or "zerodev" (spilling)
    relocation_fifo_depth: int = 8
    nextrs_latency: int = 3  # cycles to recompute decoded nextRS (synthesis)
    engine: str = "object"  # "object" (reference oracle) or "fast" (arrays)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("cores must be positive")
        if self.directory_mode not in ("mesi", "zerodev"):
            raise ConfigError(f"unknown directory_mode {self.directory_mode!r}")
        if self.engine not in ENGINES:
            raise ConfigError(f"unknown engine {self.engine!r}")
        if self.aggregate_private_blocks >= self.llc.blocks:
            raise ConfigError(
                "aggregate private cache capacity (L1 + L2; the private "
                "levels are mutually non-inclusive) must be smaller than "
                "the LLC for the ZIV guarantee to hold (paper III-B)"
            )

    @property
    def aggregate_l2_blocks(self) -> int:
        return self.cores * self.l2.blocks

    @property
    def aggregate_private_blocks(self) -> int:
        """Worst-case distinct privately cached blocks: the L1 and L2 are
        non-inclusive, so a core can pin l1.blocks + l2.blocks distinct
        blocks.  The paper's premise -- at least one LLC block has no
        private copies -- needs this sum below the LLC capacity."""
        return self.cores * (self.l1.blocks + self.l2.blocks)

    @property
    def directory_provisioning(self) -> float:
        """Directory entries as a multiple of aggregate L2 tags."""
        total_entries = self.llc.banks * self.directory.entries
        return total_entries / self.aggregate_l2_blocks

    def with_directory_factor(self, factor: float) -> "SystemConfig":
        """Return a copy whose sparse directory holds ``factor`` x aggregate
        L2 tags (used by the Fig. 15 sensitivity sweep)."""
        wanted = max(1, int(self.aggregate_l2_blocks * factor))
        per_slice = max(1, wanted // self.llc.banks)
        ways = self.directory.ways
        sets = max(1, per_slice // ways)
        # round down to a power of two
        sets = 1 << (sets.bit_length() - 1)
        return dataclasses.replace(
            self, directory=DirectoryGeometry(sets=sets, ways=ways)
        )

    def replace(self, **kwargs: Any) -> "SystemConfig":
        return dataclasses.replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

#: Scaled L2 capacity points mirroring the paper's 256 KB / 512 KB / 768 KB.
#: Keys are the paper's labels; values are (sets, ways, latency).
SCALED_L2_POINTS = {
    "256KB": (8, 8, 4),
    "512KB": (16, 8, 5),
    "768KB": (16, 12, 6),
}

#: Scaled L2 point for Fig. 14 (1 MB per-core L2 with a 16 MB LLC).
SCALED_L2_1MB = (32, 8, 6)


def scaled_config(
    l2_point: str = "256KB",
    cores: int = 8,
    directory_mode: str = "mesi",
    directory_factor: float = 2.0,
    llc_scale: int = 1,
) -> SystemConfig:
    """Build the default geometrically scaled configuration.

    ``l2_point`` selects among the paper's three L2 capacity points.
    ``llc_scale`` doubles the LLC (and is used with the 1 MB L2 point to
    realise the Fig. 14 configuration).
    """

    if l2_point == "1MB":
        l2_sets, l2_ways, l2_lat = SCALED_L2_1MB
    else:
        try:
            l2_sets, l2_ways, l2_lat = SCALED_L2_POINTS[l2_point]
        except KeyError:
            raise ConfigError(
                f"unknown L2 point {l2_point!r}; expected one of "
                f"{sorted(SCALED_L2_POINTS)} or '1MB'"
            ) from None
    llc = LLCGeometry(banks=8, sets_per_bank=16 * llc_scale, ways=16)
    l2 = CacheGeometry(sets=l2_sets, ways=l2_ways, latency=l2_lat)
    l1 = CacheGeometry(sets=2, ways=8, latency=1)
    cfg = SystemConfig(
        cores=cores,
        l1=l1,
        l2=l2,
        llc=llc,
        directory=DirectoryGeometry(sets=1, ways=8),
        directory_mode=directory_mode,
    )
    return cfg.with_directory_factor(directory_factor)


def scaled_manycore_config(cores: int = 16) -> SystemConfig:
    """Scaled analogue of the paper's 128-core TPC-E system.

    The paper's server machine has a 32 MB LLC with 128 KB per-core L2
    caches; per-core L2 is half of the per-core LLC share.  We scale to 16
    cores with the same per-core ratios.
    """

    llc = LLCGeometry(banks=16, sets_per_bank=16, ways=16)
    # per-core LLC share = 16*16*16/16 = 256 blocks; L2 = half = 128 blocks
    l2 = CacheGeometry(sets=16, ways=8, latency=5)
    l1 = CacheGeometry(sets=2, ways=8, latency=1)
    cfg = SystemConfig(
        cores=cores,
        l1=l1,
        l2=l2,
        llc=llc,
        directory=DirectoryGeometry(sets=1, ways=8),
    )
    return cfg.with_directory_factor(2.0)


def paper_scale_config(l2_point: str = "256KB", cores: int = 8) -> SystemConfig:
    """Full-size geometry of the paper's Table I (slow in pure Python)."""

    points = {
        "256KB": CacheGeometry(sets=512, ways=8, latency=4),
        "512KB": CacheGeometry(sets=1024, ways=8, latency=5),
        "768KB": CacheGeometry(sets=1024, ways=12, latency=6),
    }
    try:
        l2 = points[l2_point]
    except KeyError:
        raise ConfigError(f"unknown L2 point {l2_point!r}") from None
    llc = LLCGeometry(banks=8, sets_per_bank=1024, ways=16)
    l1 = CacheGeometry(sets=64, ways=8, latency=1)
    cfg = SystemConfig(
        cores=cores,
        l1=l1,
        l2=l2,
        llc=llc,
        directory=DirectoryGeometry(sets=1, ways=8),
    )
    return cfg.with_directory_factor(2.0)
