"""Fig. 19: relocation contribution to energy per instruction.

The relocation EPI (block read + write per relocation, widened-directory
delta, PV maintenance) of ZIV-MRLikelyDead under Hawkeye at the three L2
points, plus the EPI *saved* in the hierarchy and DRAM versus the
inclusive baseline.

Expected shape (paper): relocation EPI grows with L2 capacity (more
relocations needed) but stays small, and at 512 KB the savings
(hierarchy + DRAM) exceed the relocation cost.
"""

from __future__ import annotations

from repro.energy.model import epi_saving_pj
from repro.experiments.common import (
    FigureResult,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
)

L2_POINTS = ("256KB", "512KB", "768KB")


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    return [
        recipe_for(wl, scheme, "hawkeye", l2=l2)
        for l2 in L2_POINTS
        for scheme in ("inclusive", "ziv:mrlikelydead")
        for wl in mixes
    ]


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    fig = FigureResult(
        figure="Fig.19",
        title="Relocation EPI of ZIV-MRLikelyDead (Hawkeye) and EPI savings",
        columns=[
            "l2",
            "reloc_epi_pj",
            "saved_hier_pj",
            "saved_dram_pj",
            "net_saving_pj",
        ],
    )
    for l2 in L2_POINTS:
        reloc_epi = 0.0
        saved_hier = 0.0
        saved_dram = 0.0
        for wl in mixes:
            base = cached_run(wl, "inclusive", "hawkeye", l2=l2)
            ziv = cached_run(wl, "ziv:mrlikelydead", "hawkeye", l2=l2)
            insts = ziv.stats.total_instructions
            saving = epi_saving_pj(base.energy, ziv.energy, insts)
            reloc_epi += saving["relocation_cost"]
            saved_hier += saving["hierarchy"]
            saved_dram += saving["dram"]
        n = len(mixes)
        reloc_epi /= n
        saved_hier /= n
        saved_dram /= n
        fig.add(
            l2,
            reloc_epi,
            saved_hier,
            saved_dram,
            saved_hier + saved_dram - reloc_epi,
        )
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
