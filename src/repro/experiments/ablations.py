"""Ablation studies of the ZIV design choices (DESIGN.md §7).

Not figures from the paper -- these probe the design decisions the paper
argues for:

* **Property ladder**: all five ZIV variants under one configuration; the
  relocation-set property is "the primary performance determinant"
  (paper III-G).
* **Round-robin nextRS** vs a fixed lowest-set-bit choice: the paper
  claims round-robin matters for spreading relocation load uniformly.
* **CHAR dynamic d** vs fixed thresholds: the adaptation the paper adds to
  CHAR (III-D6).
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_recipes_for,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
    speedups_vs_baseline,
)
from repro.params import CHARParams, scaled_config


def recipes(scale=None) -> list:
    """Every cacheable run ``main()`` will request (for up-front
    submission).  The oracle-gap study's OracleZIVScheme runs are excluded:
    they take a live oracle object and bypass the recipe layer."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    out = baseline_recipes_for(mixes)
    # Property ladder.
    for policy, scheme in (
        ("lru", "ziv:notinprc"),
        ("lru", "ziv:lrunotinprc"),
        ("lru", "ziv:likelydead"),
        ("hawkeye", "ziv:maxrrpvnotinprc"),
        ("hawkeye", "ziv:mrlikelydead"),
    ):
        out += [recipe_for(wl, scheme, policy, l2="512KB") for wl in mixes]
    # Round-robin nextRS vs lowest-set-bit.
    for rr in (True, False):
        out += [
            recipe_for(
                wl,
                "ziv:mrlikelydead",
                "hawkeye",
                l2="512KB",
                scheme_kwargs={"round_robin": rr},
            )
            for wl in mixes
        ]
    # CHAR threshold variants.
    for char_params in (
        None,
        CHARParams(initial_d=6, min_d=6),
        CHARParams(initial_d=3, min_d=3),
        CHARParams(initial_d=1, min_d=1),
    ):
        cfg = scaled_config("512KB")
        if char_params is not None:
            cfg = cfg.replace(char=char_params)
        out += [
            recipe_for(wl, "ziv:likelydead", "lru", config=cfg)
            for wl in mixes
        ]
    # Oracle-gap study: the realisable designs' lock-step runs.
    for scheme in ("ziv:notinprc", "ziv:likelydead"):
        out += [
            recipe_for(wl, scheme, "lru", l2="512KB", scheduling="lockstep")
            for wl in mixes
        ]
    return out


def run_property_ladder(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Ablation-A",
        title="ZIV property ladder @512KB (norm. I-LRU 256KB)",
        columns=["policy", "property", "speedup", "relocations", "same_set"],
    )
    matrix = (
        ("lru", "ziv:notinprc"),
        ("lru", "ziv:lrunotinprc"),
        ("lru", "ziv:likelydead"),
        ("hawkeye", "ziv:maxrrpvnotinprc"),
        ("hawkeye", "ziv:mrlikelydead"),
    )
    for policy, scheme in matrix:
        runs = [cached_run(wl, scheme, policy, l2="512KB") for wl in mixes]
        s = speedups_vs_baseline(mixes, baseline, runs)
        fig.add(
            policy,
            scheme.split(":")[1],
            s["mean"],
            sum(r.stats.relocations for r in runs),
            sum(r.stats.relocation_same_set for r in runs),
        )
    return fig


def run_round_robin(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Ablation-B",
        title="Round-robin nextRS vs lowest-set-bit @512KB, Hawkeye",
        columns=["nextRS", "speedup", "relocations"],
    )
    for rr, label in ((True, "round-robin"), (False, "lowest-bit")):
        runs = [
            cached_run(
                wl,
                "ziv:mrlikelydead",
                "hawkeye",
                l2="512KB",
                scheme_kwargs={"round_robin": rr},
            )
            for wl in mixes
        ]
        s = speedups_vs_baseline(mixes, baseline, runs)
        fig.add(label, s["mean"], sum(r.stats.relocations for r in runs))
    return fig


def run_char_threshold(scale=None) -> FigureResult:
    """Fixed-d CHAR variants vs the paper's dynamic d (init 6, min 1)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Ablation-C",
        title="CHAR threshold dynamics @512KB, LRU + ZIV-LikelyDead",
        columns=["d_policy", "speedup", "dead_hints_relocations"],
    )
    variants = (
        ("dynamic(6->1)", None),
        ("fixed d=6", CHARParams(initial_d=6, min_d=6)),
        ("fixed d=3", CHARParams(initial_d=3, min_d=3)),
        ("fixed d=1", CHARParams(initial_d=1, min_d=1)),
    )
    for label, char_params in variants:
        runs = []
        for wl in mixes:
            cfg = scaled_config("512KB")
            if char_params is not None:
                cfg = cfg.replace(char=char_params)
            runs.append(
                cached_run(wl, "ziv:likelydead", "lru", config=cfg)
            )
        s = speedups_vs_baseline(mixes, baseline, runs)
        fig.add(label, s["mean"], sum(r.stats.relocations for r in runs))
    return fig


def run_oracle_gap(scale=None) -> FigureResult:
    """How close do the realisable relocation properties come to the
    oracle-optimal relocation victim (paper Section VI future work)?

    All runs use lock-step scheduling so the Belady oracle is well
    defined; speedups are therefore reported as LLC-miss ratios (lock-step
    carries no timing), normalised to the oracle design."""
    from repro.cache.replacement import NextUseOracle
    from repro.core.oracle_ziv import OracleZIVScheme
    from repro.hierarchy.cmp import CacheHierarchy
    from repro.params import scaled_config
    from repro.sim.engine import Simulation
    from repro.sim.trace import lockstep_stream

    scale = get_scale(scale)
    mixes = mix_population(scale)
    fig = FigureResult(
        figure="Ablation-D",
        title="Gap to the oracle relocation victim @512KB, LRU (lockstep)",
        columns=["design", "llc_misses", "vs_oracle"],
    )
    totals = {}
    for wl in mixes:
        oracle = NextUseOracle(lockstep_stream(wl))
        cfg = scaled_config("512KB")
        h = CacheHierarchy(cfg, OracleZIVScheme(oracle), llc_policy="lru")
        r = Simulation(h, wl, scheduling="lockstep").run()
        totals["ziv:oracle"] = totals.get("ziv:oracle", 0) + r.stats.llc_misses
        for scheme in ("ziv:notinprc", "ziv:likelydead"):
            rr = cached_run(wl, scheme, "lru", l2="512KB",
                            scheduling="lockstep")
            totals[scheme] = totals.get(scheme, 0) + rr.stats.llc_misses
    base = totals["ziv:oracle"]
    for name, misses in totals.items():
        fig.add(name, misses, misses / base if base else 0.0)
    return fig


def main() -> None:
    run_property_ladder().print_table()
    run_round_robin().print_table()
    run_char_threshold().print_table()
    run_oracle_gap().print_table()


if __name__ == "__main__":
    main()
