"""Fig. 4: normalised L2 miss counts for the motivation configurations.

Expected shape (paper): NI's L2 misses are independent of the LLC policy;
I's L2 misses exceed NI's by the inclusion-victim volume, so I-Hawkeye
shows the largest counts.
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    normalized_total,
)
from repro.experiments.fig01_motivation import CONFIGS, L2_POINTS
from repro.experiments.fig01_motivation import recipes  # noqa: F401  (same grid)


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.4",
        title="Normalised L2 miss count (norm. to I-LRU 256KB)",
        columns=["l2", "config", "norm_l2_misses"],
    )
    for l2 in L2_POINTS:
        for scheme, policy, label in CONFIGS:
            runs = [cached_run(wl, scheme, policy, l2=l2) for wl in mixes]
            fig.add(l2, label, normalized_total(baseline, runs, "l2_misses"))
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
