"""Terminal bar charts for figure results.

The paper's figures are bar charts; ``run_all_experiments.py`` and the
CLI can render a :class:`FigureResult` as ASCII bars so the shape of each
result is visible without plotting libraries.
"""

from __future__ import annotations

from repro.experiments.common import FigureResult


def bar_chart(
    fig: FigureResult,
    value_col: int,
    label_cols: tuple[int, ...] = (0, 1),
    width: int = 48,
    baseline: float | None = None,
) -> str:
    """Render one numeric column of a figure as horizontal bars.

    ``baseline`` draws a marker at that value (e.g. 1.0 for normalised
    speedups)."""
    rows = [r for r in fig.rows if isinstance(r[value_col], (int, float))]
    if not rows:
        return f"== {fig.figure}: (no numeric rows) =="
    values = [float(r[value_col]) for r in rows]
    vmax = max(max(values), baseline or 0.0)
    if vmax <= 0:
        vmax = 1.0
    labels = [
        " ".join(str(r[c]) for c in label_cols if c < len(r)) for r in rows
    ]
    label_w = max(len(s) for s in labels)
    lines = [f"== {fig.figure}: {fig.title} =="]
    marker = (
        int(round((baseline / vmax) * width)) if baseline is not None else -1
    )
    for label, value in zip(labels, values):
        filled = int(round((value / vmax) * width))
        bar = list("#" * filled + " " * (width - filled))
        if 0 <= marker < width and bar[marker] == " ":
            bar[marker] = "|"
        lines.append(f"{label.ljust(label_w)}  {''.join(bar)} {value:.3f}")
    return "\n".join(lines)
