"""Terminal charts: figure bar charts and telemetry time-series charts.

The paper's figures are bar charts; ``run_all_experiments.py`` and the
CLI can render a :class:`FigureResult` as ASCII bars so the shape of each
result is visible without plotting libraries.  :func:`series_chart` does
the same for a telemetry :class:`~repro.sim.telemetry.TimeSeries`
(``python -m repro telemetry``), so counter dynamics over a run are
inspectable in the terminal too.
"""

from __future__ import annotations

from repro.experiments.common import FigureResult


def bar_chart(
    fig: FigureResult,
    value_col: int,
    label_cols: tuple[int, ...] = (0, 1),
    width: int = 48,
    baseline: float | None = None,
) -> str:
    """Render one numeric column of a figure as horizontal bars.

    ``baseline`` draws a marker at that value (e.g. 1.0 for normalised
    speedups)."""
    rows = [r for r in fig.rows if isinstance(r[value_col], (int, float))]
    if not rows:
        return f"== {fig.figure}: (no numeric rows) =="
    values = [float(r[value_col]) for r in rows]
    vmax = max(max(values), baseline or 0.0)
    if vmax <= 0:
        vmax = 1.0
    labels = [
        " ".join(str(r[c]) for c in label_cols if c < len(r)) for r in rows
    ]
    label_w = max(len(s) for s in labels)
    lines = [f"== {fig.figure}: {fig.title} =="]
    marker = (
        int(round((baseline / vmax) * width)) if baseline is not None else -1
    )
    for label, value in zip(labels, values):
        filled = int(round((value / vmax) * width))
        bar = list("#" * filled + " " * (width - filled))
        if 0 <= marker < width and bar[marker] == " ":
            bar[marker] = "|"
        lines.append(f"{label.ljust(label_w)}  {''.join(bar)} {value:.3f}")
    return "\n".join(lines)


def series_chart(
    series,
    column: str,
    width: int = 48,
    max_rows: int = 24,
    title: str | None = None,
) -> str:
    """Render one column of a telemetry time series as horizontal bars.

    Each output row covers a window of consecutive samples (the series is
    downsampled to at most ``max_rows`` rows by summing each window --
    right for the delta columns, which dominate; gauge columns read as
    window totals).  Row labels give the access index at the window
    end."""
    samples = series.samples
    if not samples:
        return f"== {title or column}: (no samples) =="
    values = series.column(column)
    indices = series.column("access_index")
    stride = max(1, -(-len(values) // max_rows))  # ceil division
    rows = []
    for start in range(0, len(values), stride):
        window = values[start:start + stride]
        rows.append((indices[min(start + stride, len(values)) - 1],
                     sum(window)))
    vmax = max((v for _, v in rows), default=0)
    if vmax <= 0:
        vmax = 1
    label_w = max(len(str(idx)) for idx, _ in rows)
    head = title or column
    lines = [f"== {head} ==",
             f"(access index vs. {column}, {len(samples)} samples"
             + (f", {series.dropped} dropped" if series.dropped else "")
             + ")"]
    for idx, value in rows:
        filled = int(round((value / vmax) * width))
        lines.append(
            f"{str(idx).rjust(label_w)}  {'#' * filled}"
            f"{' ' * (width - filled)} {value:g}"
        )
    return "\n".join(lines)
