"""Fig. 11: multi-programmed performance, Hawkeye baseline LLC policy.

Schemes: inclusive, non-inclusive, QBS, SHARP and the two ZIV designs for
RRPV-graded policies (MRNotInPrC, MRLikelyDead).  Normalised to I-LRU @
256 KB (the same universal baseline as every other figure).

Expected shape (paper): ZIV-MRLikelyDead best among inclusive designs and
close to (but not above) NI at 256/512 KB, roughly a percent above
MRNotInPrC; QBS/SHARP clearly behind.
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_recipes_for,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
    speedups_vs_baseline,
)

L2_POINTS = ("256KB", "512KB", "768KB")
SCHEMES = (
    ("inclusive", "I"),
    ("noninclusive", "NI"),
    ("qbs", "QBS"),
    ("sharp", "SHARP"),
    ("ziv:maxrrpvnotinprc", "ZIV-MRNotInPrC"),
    ("ziv:mrlikelydead", "ZIV-MRLikelyDead"),
)


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    out = baseline_recipes_for(mixes)
    for l2 in L2_POINTS:
        for scheme, _label in SCHEMES:
            out += [recipe_for(wl, scheme, "hawkeye", l2=l2) for wl in mixes]
    return out


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.11",
        title="Multi-programmed speedup, Hawkeye baseline (norm. I-LRU 256KB)",
        columns=["l2", "scheme", "speedup", "min", "max", "incl_victims"],
    )
    for l2 in L2_POINTS:
        for scheme, label in SCHEMES:
            runs = [cached_run(wl, scheme, "hawkeye", l2=l2) for wl in mixes]
            s = speedups_vs_baseline(mixes, baseline, runs)
            victims = sum(r.stats.inclusion_victims_llc for r in runs)
            fig.add(l2, label, s["mean"], s["min"], s["max"], victims)
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
