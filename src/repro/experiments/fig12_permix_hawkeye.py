"""Fig. 12: per-mix speedup of ZIV-MRLikelyDead @ 512 KB (Hawkeye)."""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_recipes_for,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
)
from repro.sim.metrics import geomean, mix_speedup


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    return baseline_recipes_for(mixes) + [
        recipe_for(wl, "ziv:mrlikelydead", "hawkeye", l2="512KB")
        for wl in mixes
    ]


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.12",
        title="Per-mix speedup of ZIV-MRLikelyDead @512KB (norm. I-LRU 256KB)",
        columns=["mix", "kind", "speedup"],
    )
    homo_sp, hetero_sp = [], []
    for wl, base in zip(mixes, baseline):
        run_ = cached_run(wl, "ziv:mrlikelydead", "hawkeye", l2="512KB")
        sp = mix_speedup(base, run_)
        kind = "hetero" if wl.name.startswith("hetero") else "homo"
        (hetero_sp if kind == "hetero" else homo_sp).append(sp)
        fig.add(wl.name, kind, sp)
    if homo_sp:
        fig.add("AVG-homo", "homo", geomean(homo_sp))
    if hetero_sp:
        fig.add("AVG-hetero", "hetero", geomean(hetero_sp))
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
