"""Fig. 3: normalised LLC miss counts for the motivation configurations.

Expected shape (paper): NI misses drop slightly with larger L2; I misses
exceed NI, more so under Hawkeye (inclusion victims turn private-cache
hits into LLC misses).
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    normalized_total,
)
from repro.experiments.fig01_motivation import CONFIGS, L2_POINTS
from repro.experiments.fig01_motivation import recipes  # noqa: F401  (same grid)


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.3",
        title="Normalised LLC miss count (norm. to I-LRU 256KB)",
        columns=["l2", "config", "norm_llc_misses"],
    )
    for l2 in L2_POINTS:
        for scheme, policy, label in CONFIGS:
            runs = [cached_run(wl, scheme, policy, l2=l2) for wl in mixes]
            fig.add(l2, label, normalized_total(baseline, runs, "llc_misses"))
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
