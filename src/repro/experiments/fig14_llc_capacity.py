"""Fig. 14: sensitivity to LLC capacity -- 16 MB LLC with 1 MB per-core L2
(scaled: LLC doubled, per-core L2 = half the per-core LLC share).

Normalised to the *8 MB* I-LRU 256 KB baseline, as in the paper.

Expected shape (paper): under LRU, ZIV-LikelyDead still surpasses NI;
under Hawkeye, MRNotInPrC and MRLikelyDead come close to NI.
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_recipes_for,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
    speedups_vs_baseline,
)

LRU_SCHEMES = (
    ("inclusive", "I"),
    ("noninclusive", "NI"),
    ("ziv:notinprc", "ZIV-NotInPrC"),
    ("ziv:lrunotinprc", "ZIV-LRUNotInPrC"),
    ("ziv:likelydead", "ZIV-LikelyDead"),
)
HAWKEYE_SCHEMES = (
    ("inclusive", "I"),
    ("noninclusive", "NI"),
    ("ziv:maxrrpvnotinprc", "ZIV-MRNotInPrC"),
    ("ziv:mrlikelydead", "ZIV-MRLikelyDead"),
)


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    out = baseline_recipes_for(mixes)
    for policy, schemes in (("lru", LRU_SCHEMES), ("hawkeye", HAWKEYE_SCHEMES)):
        for scheme, _label in schemes:
            out += [
                recipe_for(wl, scheme, policy, l2="1MB", llc_scale=2)
                for wl in mixes
            ]
    return out


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)  # 8MB-scale I-LRU 256KB
    fig = FigureResult(
        figure="Fig.14",
        title="16MB LLC + 1MB L2 sensitivity (norm. to 8MB I-LRU 256KB)",
        columns=["policy", "scheme", "speedup", "min", "max"],
    )
    for policy, schemes in (("lru", LRU_SCHEMES), ("hawkeye", HAWKEYE_SCHEMES)):
        for scheme, label in schemes:
            runs = [
                cached_run(wl, scheme, policy, l2="1MB", llc_scale=2)
                for wl in mixes
            ]
            s = speedups_vs_baseline(mixes, baseline, runs)
            fig.add(policy, label, s["mean"], s["min"], s["max"])
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
