"""Fig. 13: normalised LLC and L2 misses for the Hawkeye-baseline schemes
of Fig. 11 (miss-count companion, same expected trends as performance)."""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    normalized_total,
)
from repro.experiments.fig11_hawkeye_perf import L2_POINTS, SCHEMES
from repro.experiments.fig11_hawkeye_perf import recipes  # noqa: F401  (same grid)


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.13",
        title="Normalised LLC and L2 misses, Hawkeye baseline",
        columns=["l2", "scheme", "norm_llc_misses", "norm_l2_misses"],
    )
    for l2 in L2_POINTS:
        for scheme, label in SCHEMES:
            runs = [cached_run(wl, scheme, "hawkeye", l2=l2) for wl in mixes]
            fig.add(
                l2,
                label,
                normalized_total(baseline, runs, "llc_misses"),
                normalized_total(baseline, runs, "l2_misses"),
            )
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
