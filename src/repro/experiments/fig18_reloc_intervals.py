"""Fig. 18: cumulative distribution of inter-relocation intervals.

Per-bank intervals between consecutive relocations (in cycles, log2
buckets) over the whole workload population at the 512 KB L2 point, for
the three headline ZIV designs.

Expected shape (paper): almost no interval falls below the 3-cycle nextRS
recomputation latency, and the Hawkeye-based designs (MRNotInPrC,
MRLikelyDead) have their distribution knee far to the left of the
LRU-based LikelyDead design (more frequent relocations).
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    cached_run,
    get_scale,
    mix_population,
    mt_workload,
    recipe_for,
)
from repro.workloads.multithreaded import MT_APP_NAMES

DESIGNS = (
    ("ziv:likelydead", "lru", "LikelyDead(LRU)"),
    ("ziv:maxrrpvnotinprc", "hawkeye", "MRNotInPrC(HK)"),
    ("ziv:mrlikelydead", "hawkeye", "MRLikelyDead(HK)"),
)


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    workloads = list(mix_population(scale))
    workloads += [
        mt_workload(app, scale, cores=8)
        for app in MT_APP_NAMES
        if app != "tpce"
    ]
    return [
        recipe_for(wl, scheme, policy, l2="512KB")
        for scheme, policy, _label in DESIGNS
        for wl in workloads
    ]


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    workloads = list(mix_population(scale))
    workloads += [
        mt_workload(app, scale, cores=8)
        for app in MT_APP_NAMES
        if app != "tpce"
    ]
    fig = FigureResult(
        figure="Fig.18",
        title="CDF of relocation intervals (log2 cycles), 512KB L2",
        columns=["design", "log2_interval", "cumulative_fraction"],
    )
    for scheme, policy, label in DESIGNS:
        hist: dict[int, int] = {}
        short = 0
        total = 0
        for wl in workloads:
            r = cached_run(wl, scheme, policy, l2="512KB")
            for bucket, n in r.scheme_stats["interval_histogram"].items():
                hist[bucket] = hist.get(bucket, 0) + n
            short += r.scheme_stats["short_intervals"]
            total += r.scheme_stats["reloc_intervals"]
        acc = 0
        for bucket in sorted(hist):
            acc += hist[bucket]
            fig.add(label, bucket, acc / total if total else 0.0)
        if total:
            fig.notes += (
                f"{label}: {short / total:.4%} of intervals below the "
                f"3-cycle nextRS latency; "
            )
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
