"""Table I: the simulated CMP configurations.

Prints the paper's full-scale parameters next to the geometrically scaled
configuration the reproduction runs, demonstrating that every capacity
ratio the paper identifies as first-order is preserved.
"""

from __future__ import annotations

from repro.experiments.common import FigureResult
from repro.params import paper_scale_config, scaled_config


def run(scale=None) -> FigureResult:
    fig = FigureResult(
        figure="Table I",
        title="Simulated CMP configuration: paper scale vs scaled model",
        columns=["parameter", "paper", "scaled", "ratio_preserved"],
    )
    for l2_point in ("256KB", "512KB", "768KB"):
        paper = paper_scale_config(l2_point)
        model = scaled_config(l2_point)
        fig.add(
            f"L2 blocks/core ({l2_point})",
            paper.l2.blocks,
            model.l2.blocks,
            "aggL2/LLC = "
            f"{model.aggregate_l2_blocks / model.llc.blocks:.3f} "
            f"(paper {paper.aggregate_l2_blocks / paper.llc.blocks:.3f})",
        )
    paper = paper_scale_config("256KB")
    model = scaled_config("256KB")
    fig.add("cores", paper.cores, model.cores, "same")
    fig.add("LLC blocks", paper.llc.blocks, model.llc.blocks, "16-way, 8 banks")
    fig.add("L1 blocks/core", paper.l1.blocks, model.l1.blocks, "8-way")
    fig.add(
        "sparse directory",
        f"{paper.directory_provisioning:.1f}x",
        f"{model.directory_provisioning:.1f}x",
        "2x aggregate L2 tags, 8-way, NRU",
    )
    fig.add("LLC policy", "LRU / Hawkeye", "LRU / Hawkeye", "same")
    fig.add("DRAM", "DDR3-2133 x2ch", "event-cost model", "row-buffer+banks")
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
