"""Fig. 9: per-mix speedup of ZIV-LikelyDead @ 512 KB L2 (LRU baseline).

The paper's per-mix breakdown: heterogeneous mixes benefit more (memory-
intensive applications inflict inclusion victims on cache-resident ones),
and on average 12% of LLC misses require a relocation (max 33%).
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_recipes_for,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
)
from repro.sim.metrics import geomean, mix_speedup


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    return baseline_recipes_for(mixes) + [
        recipe_for(wl, "ziv:likelydead", "lru", l2="512KB") for wl in mixes
    ]


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.9",
        title="Per-mix speedup of ZIV-LikelyDead @512KB (norm. I-LRU 256KB)",
        columns=["mix", "kind", "speedup", "reloc_per_llc_miss"],
    )
    homo_sp, hetero_sp, reloc_fracs = [], [], []
    for wl, base in zip(mixes, baseline):
        run_ = cached_run(wl, "ziv:likelydead", "lru", l2="512KB")
        sp = mix_speedup(base, run_)
        frac = (
            run_.stats.relocations / run_.stats.llc_misses
            if run_.stats.llc_misses
            else 0.0
        )
        kind = "hetero" if wl.name.startswith("hetero") else "homo"
        (hetero_sp if kind == "hetero" else homo_sp).append(sp)
        reloc_fracs.append(frac)
        fig.add(wl.name, kind, sp, frac)
    if homo_sp:
        fig.add("AVG-homo", "homo", geomean(homo_sp), 0.0)
    if hetero_sp:
        fig.add("AVG-hetero", "hetero", geomean(hetero_sp), 0.0)
    fig.notes = (
        f"avg relocations per LLC miss = "
        f"{sum(reloc_fracs) / len(reloc_fracs):.3f}, "
        f"max = {max(reloc_fracs):.3f} (paper: avg 0.12, max 0.33)"
    )
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
