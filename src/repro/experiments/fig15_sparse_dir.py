"""Fig. 15: sensitivity to sparse-directory size (Hawkeye, 256 KB L2).

Directory provisioning swept from 2x down to 1/4x the aggregate L2 tags,
under the traditional MESI protocol (left half) and the ZeroDEV protocol
(right half), for the baseline inclusive LLC, the non-inclusive LLC and
ZIV-MRLikelyDead.

Expected shape (paper): under MESI all three degrade as the directory
shrinks (back-invalidations from directory evictions), with NI losing its
edge over I while ZIV keeps tracking NI; under ZeroDEV performance is
nearly invariant to directory size.
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_recipes_for,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
    speedups_vs_baseline,
)

FACTORS = (2.0, 1.0, 0.5, 0.25)
SCHEMES = (
    ("inclusive", "I"),
    ("noninclusive", "NI"),
    ("ziv:mrlikelydead", "ZIV-MRLikelyDead"),
)


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    out = baseline_recipes_for(mixes)
    for mode in ("mesi", "zerodev"):
        for factor in FACTORS:
            for scheme, _label in SCHEMES:
                out += [
                    recipe_for(
                        wl,
                        scheme,
                        "hawkeye",
                        l2="256KB",
                        directory_mode=mode,
                        directory_factor=factor,
                    )
                    for wl in mixes
                ]
    return out


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.15",
        title="Sparse-directory size sensitivity, Hawkeye + 256KB L2",
        columns=["protocol", "dir_factor", "scheme", "speedup",
                 "dir_evictions"],
    )
    for mode in ("mesi", "zerodev"):
        for factor in FACTORS:
            for scheme, label in SCHEMES:
                runs = [
                    cached_run(
                        wl,
                        scheme,
                        "hawkeye",
                        l2="256KB",
                        directory_mode=mode,
                        directory_factor=factor,
                    )
                    for wl in mixes
                ]
                s = speedups_vs_baseline(mixes, baseline, runs)
                dev = sum(
                    r.stats.directory_evictions + r.stats.directory_spills
                    for r in runs
                )
                fig.add(mode, factor, label, s["mean"], dev)
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
