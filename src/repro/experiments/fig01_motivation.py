"""Fig. 1: inclusive vs non-inclusive LLC performance across L2 sizes.

The paper's motivation study: speedup of {I, NI} x {LRU, Hawkeye} at
256/512/768 KB per-core L2, normalised to I-LRU @ 256 KB, with the min/max
range over the mix population annotated on every bar.

Expected shape (paper): NI >= I everywhere; the I/NI gap is much larger
under Hawkeye; growing the L2 helps NI but slowly *hurts* I.
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_recipes_for,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
    speedups_vs_baseline,
)

L2_POINTS = ("256KB", "512KB", "768KB")
CONFIGS = (
    ("inclusive", "lru", "I-LRU"),
    ("noninclusive", "lru", "NI-LRU"),
    ("inclusive", "hawkeye", "I-Hawkeye"),
    ("noninclusive", "hawkeye", "NI-Hawkeye"),
)


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    out = baseline_recipes_for(mixes)
    for l2 in L2_POINTS:
        for scheme, policy, _label in CONFIGS:
            out += [recipe_for(wl, scheme, policy, l2=l2) for wl in mixes]
    return out


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.1",
        title="Inclusive vs non-inclusive LLC speedup (norm. to I-LRU 256KB)",
        columns=["l2", "config", "speedup", "min", "max"],
    )
    for l2 in L2_POINTS:
        for scheme, policy, label in CONFIGS:
            runs = [
                cached_run(wl, scheme, policy, l2=l2) for wl in mixes
            ]
            s = speedups_vs_baseline(mixes, baseline, runs)
            fig.add(l2, label, s["mean"], s["min"], s["max"])
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
