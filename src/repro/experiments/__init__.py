"""One module per paper figure/table (see DESIGN.md section 5).

Each module exposes ``run(scale) -> FigureResult``; the ``benchmarks/``
directory wraps these in pytest-benchmark targets, and running a module as
a script prints the figure's rows.
"""

from repro.experiments.common import (
    SCALES,
    FigureResult,
    Scale,
    cached_run,
    clear_caches,
    get_scale,
    mix_population,
    mt_workload,
)

ALL_FIGURES = (
    "table1",
    "fig01_motivation",
    "fig02_inclusion_victims",
    "fig03_llc_misses",
    "fig04_l2_misses",
    "fig08_lru_perf",
    "fig09_permix_lru",
    "fig10_lru_misses",
    "fig11_hawkeye_perf",
    "fig12_permix_hawkeye",
    "fig13_hawkeye_misses",
    "fig14_llc_capacity",
    "fig15_sparse_dir",
    "fig16_mt_lru",
    "fig17_mt_hawkeye",
    "fig18_reloc_intervals",
    "fig19_energy",
)

__all__ = [
    "SCALES",
    "Scale",
    "FigureResult",
    "cached_run",
    "clear_caches",
    "get_scale",
    "mix_population",
    "mt_workload",
    "ALL_FIGURES",
    "run_figure",
]


def run_figure(name: str, scale=None) -> FigureResult:
    """Run one figure module by name and return its result."""
    import importlib

    if name not in ALL_FIGURES:
        raise ValueError(f"unknown figure {name!r}; known: {ALL_FIGURES}")
    mod = importlib.import_module(f"repro.experiments.{name}")
    return mod.run(scale)


def figure_recipes(name: str, scale=None) -> list:
    """The recipes ``run_figure(name, scale)`` will request, when the
    figure module enumerates them (``recipes(scale)``); empty otherwise.
    Lets callers pre-resolve the runs through
    :func:`repro.sim.parallel.run_many` -- with progress heartbeats or a
    worker pool -- before the (then memo-served) figure assembly."""
    import importlib

    if name not in ALL_FIGURES:
        raise ValueError(f"unknown figure {name!r}; known: {ALL_FIGURES}")
    mod = importlib.import_module(f"repro.experiments.{name}")
    recipes = getattr(mod, "recipes", None)
    return list(recipes(scale)) if recipes is not None else []
