"""Fig. 17: multi-threaded workloads, Hawkeye baseline.

Expected shape (paper): both ZIV designs close to NI; QBS and SHARP fall
*below* the inclusive baseline on facesim/vips -- those apps have heavy
LLC reuse and QBS/SHARP sacrifice LLC hits to protect privately cached
blocks.
"""

from __future__ import annotations

from repro.experiments.common import FigureResult, get_scale
from repro.experiments import fig16_mt_lru

SCHEMES = (
    ("inclusive", "I"),
    ("noninclusive", "NI"),
    ("qbs", "QBS"),
    ("sharp", "SHARP"),
    ("ziv:maxrrpvnotinprc", "ZIV-MRNotInPrC"),
    ("ziv:mrlikelydead", "ZIV-MRLikelyDead"),
)


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    return fig16_mt_lru.recipes(
        scale=get_scale(scale), policy="hawkeye", schemes=SCHEMES
    )


def run(scale=None) -> FigureResult:
    return fig16_mt_lru.run(
        scale=get_scale(scale),
        policy="hawkeye",
        schemes=SCHEMES,
        figure="Fig.17",
    )


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
