"""Fig. 16: multi-threaded workloads, LRU baseline.

canneal/facesim/vips/applu run on the 8-core machine with the 512 KB-class
L2; the TPC-E-like server profile runs on the scaled many-core machine
whose per-core L2 is half its per-core LLC share.  Each app is normalised
to its own I-LRU baseline.

Expected shape (paper): canneal/facesim/vips barely sensitive; applu and
TPC-E favour ZIV-LikelyDead, which beats even NI on them.
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    cached_run,
    get_scale,
    mt_workload,
    recipe_for,
)
from repro.params import scaled_manycore_config
from repro.sim.metrics import mix_speedup

APPS = ("canneal", "facesim", "vips", "applu")
SCHEMES = (
    ("inclusive", "I"),
    ("noninclusive", "NI"),
    ("qbs", "QBS"),
    ("sharp", "SHARP"),
    ("ziv:notinprc", "ZIV-NotInPrC"),
    ("ziv:likelydead", "ZIV-LikelyDead"),
)


def recipes(scale=None, policy: str = "lru", schemes=SCHEMES) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    out = []
    for app in APPS:
        wl = mt_workload(app, scale, cores=8)
        out.append(recipe_for(wl, "inclusive", policy, l2="512KB"))
        out += [
            recipe_for(wl, scheme, policy, l2="512KB")
            for scheme, _label in schemes
        ]
    mc_cfg = scaled_manycore_config()
    wl = mt_workload("tpce", scale, cores=mc_cfg.cores)
    out.append(
        recipe_for(wl, "inclusive", policy, cores=mc_cfg.cores, config=mc_cfg)
    )
    out += [
        recipe_for(wl, scheme, policy, cores=mc_cfg.cores, config=mc_cfg)
        for scheme, _label in schemes
    ]
    return out


def run(scale=None, policy: str = "lru",
        schemes=SCHEMES, figure: str = "Fig.16") -> FigureResult:
    scale = get_scale(scale)
    fig = FigureResult(
        figure=figure,
        title=f"Multi-threaded speedup, {policy} baseline (norm. I-{policy})",
        columns=["app", "scheme", "speedup", "incl_victims", "relocations"],
    )
    for app in APPS:
        wl = mt_workload(app, scale, cores=8)
        base = cached_run(wl, "inclusive", policy, l2="512KB")
        for scheme, label in schemes:
            r = cached_run(wl, scheme, policy, l2="512KB")
            fig.add(
                app,
                label,
                mix_speedup(base, r),
                r.stats.inclusion_victims_llc,
                r.stats.relocations,
            )
    # TPC-E on the scaled many-core configuration.
    mc_cfg = scaled_manycore_config()
    wl = mt_workload("tpce", scale, cores=mc_cfg.cores)
    base = cached_run(wl, "inclusive", policy, cores=mc_cfg.cores,
                      config=mc_cfg)
    for scheme, label in schemes:
        cfg = scaled_manycore_config()
        r = cached_run(wl, scheme, policy, cores=cfg.cores, config=cfg)
        fig.add(
            "tpce",
            label,
            mix_speedup(base, r),
            r.stats.inclusion_victims_llc,
            r.stats.relocations,
        )
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
