"""Shared infrastructure for the per-figure experiment modules.

Every figure module exposes ``run(scale) -> FigureResult``.  A *scale*
selects how many mixes and how many accesses per core the experiment uses:
``"quick"`` keeps a full-figure regeneration in benchmark-suite territory,
``"standard"`` tightens the statistics, and ``"full"`` mirrors the paper's
72-mix population (slow in pure Python).

Simulation results are resolved through the layered cache of
:mod:`repro.sim.parallel`: an in-process memo (the figures overlap
heavily -- the I-LRU-256KB baseline appears in every normalisation) that
reads through to the persistent on-disk result cache, so a recipe that
completed in *any* session is never simulated again.  Figure modules also
expose ``recipes(scale)`` enumerating the runs their ``run(scale)`` will
request, which lets ``scripts/run_all_experiments.py`` submit everything
up front to :func:`repro.sim.parallel.run_many` and fan out over cores.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.params import SystemConfig
from repro.sim.engine import SimResult
from repro.sim.metrics import geomean, mix_speedup
from repro.sim.parallel import RunRecipe, fetch_or_run, make_recipe
from repro.sim.trace import Workload
from repro.workloads.mixes import heterogeneous_mixes, homogeneous_mixes
from repro.workloads.multithreaded import multithreaded_workload


@dataclass(frozen=True)
class Scale:
    """Workload sizing for one experiment fidelity level."""

    homo_mixes: int
    hetero_mixes: int
    accesses: int
    mt_accesses: int


SCALES = {
    "smoke": Scale(2, 2, 600, 1200),
    "quick": Scale(4, 4, 1500, 4000),
    "standard": Scale(12, 12, 3000, 8000),
    "full": Scale(36, 36, 8000, 20000),
}


def get_scale(scale: str | Scale | None = None) -> Scale:
    """Resolve a scale; the REPRO_SCALE environment variable overrides the
    default ("quick")."""
    if isinstance(scale, Scale):
        return scale
    name = scale or os.environ.get("REPRO_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; known: {sorted(SCALES)}"
        ) from None


@dataclass
class FigureResult:
    """The rows a figure/table prints: a direct analogue of the paper's
    plotted series."""

    figure: str
    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""

    def add(self, *row) -> None:
        self.rows.append(tuple(row))

    def format_table(self) -> str:
        widths = [len(c) for c in self.columns]
        str_rows = []
        for row in self.rows:
            cells = [
                f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
            ]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            str_rows.append(cells)
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for cells in str_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def print_table(self) -> None:
        print(self.format_table())

    def row_map(self, key_cols: int = 2) -> dict:
        """Dict keyed by the first ``key_cols`` columns of each row."""
        return {row[:key_cols]: row[key_cols:] for row in self.rows}


# ---------------------------------------------------------------------------
# Workload and simulation caches
# ---------------------------------------------------------------------------

_MIX_CACHE: dict = {}


def clear_caches() -> None:
    """Drop the in-process workload and result memos (the persistent disk
    cache is untouched; use ``python -m repro cache clear`` for that)."""
    from repro.sim.parallel import clear_memo

    _MIX_CACHE.clear()
    clear_memo()


def mix_population(scale: Scale, cores: int = 8, seed: int = 7) -> list[Workload]:
    """The multi-programmed mix population at this scale: a spread of
    homogeneous mixes plus balanced heterogeneous mixes."""
    key = ("mp", scale, cores, seed)
    if key not in _MIX_CACHE:
        homo_all = homogeneous_mixes(
            cores=cores, n_accesses=scale.accesses, seed=seed
        )
        step = max(1, len(homo_all) // scale.homo_mixes)
        homo = homo_all[::step][: scale.homo_mixes]
        hetero = heterogeneous_mixes(
            n_mixes=scale.hetero_mixes,
            cores=cores,
            n_accesses=scale.accesses,
            seed=seed,
        )
        _MIX_CACHE[key] = homo + hetero
    return _MIX_CACHE[key]


def mt_workload(app: str, scale: Scale, cores: int = 8, seed: int = 7) -> Workload:
    key = ("mt", app, scale, cores, seed)
    if key not in _MIX_CACHE:
        _MIX_CACHE[key] = multithreaded_workload(
            app, cores=cores, n_accesses=scale.mt_accesses, seed=seed
        )
    return _MIX_CACHE[key]


def recipe_for(
    workload: Workload,
    scheme: str,
    policy: str = "lru",
    l2: str = "256KB",
    llc_scale: int = 1,
    cores: int = 8,
    directory_mode: str = "mesi",
    directory_factor: float = 2.0,
    scheduling: str = "timing",
    config: SystemConfig | None = None,
    scheme_kwargs: dict | None = None,
) -> RunRecipe:
    """The :class:`RunRecipe` that :func:`cached_run` would execute for
    these arguments -- used by the figure modules' ``recipes(scale)``
    enumerations to submit work up front."""
    return make_recipe(
        workload,
        scheme,
        policy=policy,
        scheduling=scheduling,
        config=config,
        l2=l2,
        llc_scale=llc_scale,
        cores=cores,
        directory_mode=directory_mode,
        directory_factor=directory_factor,
        scheme_kwargs=scheme_kwargs,
    )


def cached_run(
    workload: Workload,
    scheme: str,
    policy: str = "lru",
    l2: str = "256KB",
    llc_scale: int = 1,
    cores: int = 8,
    directory_mode: str = "mesi",
    directory_factor: float = 2.0,
    scheduling: str = "timing",
    config: SystemConfig | None = None,
    scheme_kwargs: dict | None = None,
) -> SimResult:
    """Run (or fetch) one simulation.

    Resolution order: in-process memo, persistent disk cache, fresh run
    (see :mod:`repro.sim.parallel`).  ``policy="belady"`` automatically
    builds the lock-step MIN oracle and forces lock-step scheduling, per
    the paper's footnote 2."""
    return fetch_or_run(
        recipe_for(
            workload,
            scheme,
            policy=policy,
            l2=l2,
            llc_scale=llc_scale,
            cores=cores,
            directory_mode=directory_mode,
            directory_factor=directory_factor,
            scheduling=scheduling,
            config=config,
            scheme_kwargs=scheme_kwargs,
        )
    )


# ---------------------------------------------------------------------------
# Aggregation helpers
# ---------------------------------------------------------------------------

def speedups_vs_baseline(
    mixes: list[Workload],
    baseline_runs: list[SimResult],
    candidate_runs: list[SimResult],
) -> dict[str, float]:
    sp = [mix_speedup(b, c) for b, c in zip(baseline_runs, candidate_runs)]
    return {"mean": geomean(sp), "min": min(sp), "max": max(sp)}


def normalized_total(
    baseline_runs: list[SimResult],
    candidate_runs: list[SimResult],
    counter: str,
) -> float:
    def total(runs):
        if counter == "l2_misses":
            return sum(r.stats.l2_misses for r in runs)
        return sum(getattr(r.stats, counter) for r in runs)

    base = total(baseline_runs)
    return total(candidate_runs) / base if base else 0.0


def baseline_runs_for(
    mixes: list[Workload], cores: int = 8
) -> list[SimResult]:
    """The universal normalisation baseline: I-LRU with the 256KB L2."""
    return [
        cached_run(wl, "inclusive", "lru", l2="256KB", cores=cores)
        for wl in mixes
    ]


def baseline_recipes_for(
    mixes: list[Workload], cores: int = 8
) -> list[RunRecipe]:
    """Recipe form of :func:`baseline_runs_for`."""
    return [
        recipe_for(wl, "inclusive", "lru", l2="256KB", cores=cores)
        for wl in mixes
    ]
