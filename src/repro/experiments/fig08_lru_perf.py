"""Fig. 8: multi-programmed performance, LRU baseline LLC policy.

Schemes: baseline inclusive, non-inclusive, QBS, SHARP, and the three ZIV
designs for LRU (NotInPrC, LRUNotInPrC, LikelyDead), plus the paper's
CHARonBase comparison point, at the three L2 capacities.  Normalised to
I-LRU @ 256 KB.

Expected shape (paper): QBS/SHARP near NI at 256 KB but failing to scale;
ZIV-NotInPrC/LRUNotInPrC close to QBS/SHARP but with a zero-inclusion-
victim guarantee; ZIV-LikelyDead best across the board, meeting or beating
NI at 256/512 KB; CHARonBase between the two groups.
"""

from __future__ import annotations

from repro.experiments.common import (
    FigureResult,
    baseline_recipes_for,
    baseline_runs_for,
    cached_run,
    get_scale,
    mix_population,
    recipe_for,
    speedups_vs_baseline,
)

L2_POINTS = ("256KB", "512KB", "768KB")
SCHEMES = (
    ("inclusive", "I"),
    ("noninclusive", "NI"),
    ("qbs", "QBS"),
    ("sharp", "SHARP"),
    ("charonbase", "CHARonBase"),
    ("ziv:notinprc", "ZIV-NotInPrC"),
    ("ziv:lrunotinprc", "ZIV-LRUNotInPrC"),
    ("ziv:likelydead", "ZIV-LikelyDead"),
)


def recipes(scale=None) -> list:
    """Every run ``run(scale)`` will request (for up-front submission)."""
    scale = get_scale(scale)
    mixes = mix_population(scale)
    out = baseline_recipes_for(mixes)
    for l2 in L2_POINTS:
        for scheme, _label in SCHEMES:
            out += [recipe_for(wl, scheme, "lru", l2=l2) for wl in mixes]
    return out


def run(scale=None) -> FigureResult:
    scale = get_scale(scale)
    mixes = mix_population(scale)
    baseline = baseline_runs_for(mixes)
    fig = FigureResult(
        figure="Fig.8",
        title="Multi-programmed speedup, LRU baseline (norm. to I-LRU 256KB)",
        columns=["l2", "scheme", "speedup", "min", "max", "incl_victims"],
    )
    for l2 in L2_POINTS:
        for scheme, label in SCHEMES:
            runs = [cached_run(wl, scheme, "lru", l2=l2) for wl in mixes]
            s = speedups_vs_baseline(mixes, baseline, runs)
            victims = sum(r.stats.inclusion_victims_llc for r in runs)
            fig.add(l2, label, s["mean"], s["min"], s["max"], victims)
    return fig


def main() -> None:
    run().print_table()


if __name__ == "__main__":
    main()
