"""A generic set-associative cache array with pluggable replacement.

The array stores :class:`~repro.cache.block.CacheBlock` objects and keeps a
per-set ``dict`` from block address to way for O(1) lookup.  Replacement is
delegated to a :class:`~repro.cache.replacement.base.ReplacementPolicy`
strategy object; the array itself only handles the *Invalid-first* rule
(an invalid way is always filled before any valid block is victimised),
which every design in the paper shares.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.block import CacheBlock


class AccessContext:
    """Per-access context threaded through replacement policies.

    ``global_pos`` is the position of the access in the canonical global
    access stream; it drives the Belady MIN oracle and Hawkeye's OPTgen.
    """

    __slots__ = ("core", "pc", "is_write", "global_pos", "cycle")

    def __init__(
        self,
        core: int = 0,
        pc: int = 0,
        is_write: bool = False,
        global_pos: int = 0,
        cycle: int = 0,
    ) -> None:
        self.core = core
        self.pc = pc
        self.is_write = is_write
        self.global_pos = global_pos
        self.cycle = cycle


class SetAssociativeCache:
    """Set-associative block array.

    Parameters
    ----------
    sets, ways:
        Geometry.  ``sets`` must be a power of two.
    policy:
        Replacement policy strategy (attached via ``policy.attach(self)``).
    name:
        Used in error messages and repr.
    """

    __slots__ = (
        "sets", "ways", "name", "index_shift", "set_mask", "blocks",
        "index", "policy",
    )

    def __init__(
        self,
        sets: int,
        ways: int,
        policy,
        name: str = "cache",
        index_shift: int = 0,
    ) -> None:
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"sets must be a power of two, got {sets}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.sets = sets
        self.ways = ways
        self.name = name
        self.index_shift = index_shift
        self.set_mask = sets - 1  # precomputed: probed on every access
        self.blocks = [[CacheBlock() for _ in range(ways)] for _ in range(sets)]
        self.index = [dict() for _ in range(sets)]  # addr -> way
        self.policy = policy
        policy.attach(self)

    # -- geometry -----------------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (addr >> self.index_shift) & self.set_mask

    def ways_of(self, set_idx: int) -> list[CacheBlock]:
        return self.blocks[set_idx]

    # -- lookup -------------------------------------------------------------

    def probe(self, addr: int) -> int:
        """Way holding ``addr`` in its home set, or -1 (no state change).

        Relocated blocks are *not* visible to a probe: the paper's LLC
        lookup "considers only the blocks with the Relocated state off"
        (III-C1); relocated blocks are reached via the directory pointer.
        """
        set_idx = (addr >> self.index_shift) & self.set_mask
        way = self.index[set_idx].get(addr, -1)
        if way >= 0 and self.blocks[set_idx][way].relocated:
            return -1
        return way

    def contains(self, addr: int) -> bool:
        return self.probe(addr) >= 0

    def block_at(self, set_idx: int, way: int) -> CacheBlock:
        return self.blocks[set_idx][way]

    # -- state changes ------------------------------------------------------

    def touch(self, addr: int, ctx: AccessContext) -> int:
        """Record a hit on ``addr``; returns the way (must be present)."""
        set_idx = self.set_index(addr)
        way = self.index[set_idx][addr]
        self.policy.on_hit(set_idx, way, ctx)
        return way

    def find_invalid_way(self, set_idx: int) -> int:
        for way, blk in enumerate(self.blocks[set_idx]):
            if not blk.valid:
                return way
        return -1

    def choose_victim_way(self, set_idx: int, ctx: AccessContext) -> int:
        """Invalid way if any, else the policy's victim."""
        way = self.find_invalid_way(set_idx)
        if way >= 0:
            return way
        return self.policy.victim(set_idx, ctx)

    def ranked_victims(self, set_idx: int, ctx: AccessContext) -> Iterator[int]:
        """Valid ways in the policy's victimisation order (best first).

        Used by QBS/SHARP, which walk the candidate list."""
        return self.policy.ranked_victims(set_idx, ctx)

    def evict_way(self, set_idx: int, way: int, ctx: AccessContext) -> CacheBlock:
        """Remove the block at (set, way); returns it (caller reads state
        *before* the next fill reuses the object)."""
        blk = self.blocks[set_idx][way]
        if not blk.valid:
            raise LookupError(f"{self.name}: evicting invalid way {way}")
        self.policy.on_evict(set_idx, way, ctx)
        del self.index[set_idx][blk.addr]
        blk.valid = False
        return blk

    def install(
        self, set_idx: int, way: int, addr: int, ctx: AccessContext
    ) -> CacheBlock:
        """Fill ``addr`` into (set, way); the way must be invalid."""
        blk = self.blocks[set_idx][way]
        if blk.valid:
            raise LookupError(
                f"{self.name}: install into valid way {way} of set {set_idx}"
            )
        blk.reset()
        blk.addr = addr
        blk.valid = True
        self.index[set_idx][addr] = way
        self.policy.on_fill(set_idx, way, ctx)
        return blk

    def install_relocated(
        self, set_idx: int, way: int, source: CacheBlock, ctx: AccessContext
    ) -> CacheBlock:
        """Place a relocated block (copied from ``source``) at (set, way).

        The relocated block keeps its address, dirtiness and CHAR tag, and
        enters the set with the ``Relocated`` state on.  The replacement
        state is initialised as a normal fill so the baseline policy can
        later victimise it (triggering re-relocation, paper III-C3).
        """
        blk = self.blocks[set_idx][way]
        if blk.valid:
            raise LookupError(
                f"{self.name}: relocating into valid way {way} of set {set_idx}"
            )
        blk.reset()
        blk.addr = source.addr
        blk.valid = True
        blk.dirty = source.dirty
        blk.relocated = True
        blk.not_in_prc = False  # a live relocated block is privately cached
        blk.likely_dead = False
        blk.char_tag = source.char_tag
        blk.last_pc = source.last_pc
        self.index[set_idx][blk.addr] = way
        self.policy.on_relocation_fill(set_idx, way, ctx)
        return blk

    def extract_way(self, set_idx: int, way: int) -> CacheBlock:
        """Pull a block out of the array for relocation.

        Unlike :meth:`evict_way`, the policy's eviction hook is *not*
        called: the block is not leaving the LLC, so e.g. Hawkeye must not
        detrain its load PC."""
        blk = self.blocks[set_idx][way]
        if not blk.valid:
            raise LookupError(f"{self.name}: extracting invalid way {way}")
        del self.index[set_idx][blk.addr]
        blk.valid = False
        return blk

    def promote(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        """Make a block maximally hard to evict (QBS's move-to-MRU)."""
        self.policy.promote(set_idx, way, ctx)

    # -- iteration / introspection -------------------------------------------

    def iter_valid(self) -> Iterator[tuple[int, int, CacheBlock]]:
        for set_idx, ways in enumerate(self.blocks):
            for way, blk in enumerate(ways):
                if blk.valid:
                    yield set_idx, way, blk

    def resident_addrs(self) -> set[int]:
        return {blk.addr for _, _, blk in self.iter_valid()}

    def occupancy(self) -> int:
        return sum(1 for _ in self.iter_valid())

    def lru_way(self, set_idx: int) -> Optional[int]:
        """The policy's most-preferred victim way, or None if empty."""
        ways = [w for w, b in enumerate(self.blocks[set_idx]) if b.valid]
        if not ways:
            return None
        for way in self.policy.ranked_victims(set_idx, AccessContext()):
            return way
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} {self.sets}x{self.ways} "
            f"occ={self.occupancy()}>"
        )
