"""Generic set-associative cache substrate."""

from repro.cache.block import CacheBlock, DirectoryEntry
from repro.cache.set_assoc import AccessContext, SetAssociativeCache

__all__ = [
    "AccessContext",
    "CacheBlock",
    "DirectoryEntry",
    "SetAssociativeCache",
]
