"""Replacement-policy strategies for :class:`SetAssociativeCache`.

The paper evaluates two baseline LLC policies -- LRU and Hawkeye -- plus an
offline Belady MIN oracle for the motivation study, and uses 1-bit NRU in
the sparse directory.  SRRIP/BRRIP/DRRIP are included because Hawkeye is
built on the RRPV substrate and because they make useful ablation baselines.
"""

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.nru import NRUPolicy
from repro.cache.replacement.random_policy import RandomPolicy
from repro.cache.replacement.srrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.cache.replacement.classic import (
    BIPPolicy,
    FIFOPolicy,
    LIPPolicy,
    TreePLRUPolicy,
)
from repro.cache.replacement.ship import SHiPPolicy
from repro.cache.replacement.hawkeye import HawkeyePolicy
from repro.cache.replacement.belady import BeladyPolicy, NextUseOracle

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "NRUPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "FIFOPolicy",
    "TreePLRUPolicy",
    "LIPPolicy",
    "BIPPolicy",
    "SHiPPolicy",
    "HawkeyePolicy",
    "BeladyPolicy",
    "NextUseOracle",
    "make_policy",
]

_FACTORY = {
    "lru": LRUPolicy,
    "nru": NRUPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "fifo": FIFOPolicy,
    "plru": TreePLRUPolicy,
    "lip": LIPPolicy,
    "bip": BIPPolicy,
    "ship": SHiPPolicy,
    "hawkeye": HawkeyePolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Build a replacement policy by name ("lru", "hawkeye", ...)."""
    try:
        cls = _FACTORY[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; known: {sorted(_FACTORY)}"
        ) from None
    return cls(**kwargs)
