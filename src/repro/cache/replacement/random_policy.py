"""Seeded pseudo-random replacement (SHARP's step-3 fallback)."""

from __future__ import annotations

import random
from typing import Iterator

from repro.cache.replacement.base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection with a deterministic seed."""

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def on_fill(self, set_idx: int, way: int, ctx) -> None:  # noqa: D401
        pass

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        pass

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        ways = [way for way, _blk in self._valid_ways(set_idx)]
        self._rng.shuffle(ways)
        yield from ways
