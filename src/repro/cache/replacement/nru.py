"""1-bit not-recently-used replacement (used by the sparse directory)."""

from __future__ import annotations

from typing import Iterator

from repro.cache.replacement.base import ReplacementPolicy


class NRUPolicy(ReplacementPolicy):
    """Classic 1-bit NRU.

    The reference bit is set on fill and hit.  A victim is the lowest way
    whose bit is clear; when every valid block has its bit set, all bits
    (except, implicitly, the imminent victim's) are cleared first.
    """

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].nru = True

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].nru = True

    def _maybe_reset(self, set_idx: int) -> None:
        valid = self._valid_ways(set_idx)
        if valid and all(blk.nru for _w, blk in valid):
            for _w, blk in valid:
                blk.nru = False

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        self._maybe_reset(set_idx)
        not_recent = []
        recent = []
        for way, blk in self._valid_ways(set_idx):
            (recent if blk.nru else not_recent).append(way)
        yield from not_recent
        yield from recent
