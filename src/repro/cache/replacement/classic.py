"""Classic replacement policies: FIFO, Tree-PLRU, LIP and BIP.

None of these appear in the paper's evaluation, but they round out the
substrate a cache-architecture library is expected to ship (and they make
cheap sanity baselines: e.g. ZIV's guarantee must hold under *any*
baseline policy, which the test suite exercises through this family).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: the stamp is set at fill and never refreshed."""

    def __init__(self) -> None:
        super().__init__()
        self._clock = 0

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._clock += 1
        self.cache.blocks[set_idx][way].stamp = self._clock

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        pass  # hits do not refresh residence order

    def promote(self, set_idx: int, way: int, ctx) -> None:
        # QBS-style protection still needs to move the block back.
        self._clock += 1
        self.cache.blocks[set_idx][way].stamp = self._clock

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        ranked = sorted(self._valid_ways(set_idx), key=lambda wb: wb[1].stamp)
        for way, _blk in ranked:
            yield way


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over power-of-two associativities.

    One bit per internal node of a binary tree; a hit flips the path bits
    away from the accessed way, the victim walk follows the bits."""

    def __init__(self) -> None:
        super().__init__()
        self._trees: dict[int, list[int]] = {}

    def attach(self, cache) -> None:
        super().attach(cache)
        ways = cache.ways
        if ways & (ways - 1):
            raise ValueError("tree PLRU needs a power-of-two associativity")

    def _tree(self, set_idx: int) -> list[int]:
        tree = self._trees.get(set_idx)
        if tree is None:
            tree = [0] * max(1, self.cache.ways - 1)
            self._trees[set_idx] = tree
        return tree

    def _touch(self, set_idx: int, way: int) -> None:
        tree = self._tree(set_idx)
        ways = self.cache.ways
        node = 0
        span = ways
        while span > 1:
            span //= 2
            go_right = way % (span * 2) >= span
            tree[node] = 0 if go_right else 1  # point away from the way
            node = 2 * node + (2 if go_right else 1)

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self._touch(set_idx, way)

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self._touch(set_idx, way)

    def victim(self, set_idx: int, ctx) -> int:
        tree = self._tree(set_idx)
        ways = self.cache.ways
        node = 0
        way = 0
        span = ways
        while span > 1:
            span //= 2
            if tree[node]:
                way += span
                node = 2 * node + 2
            else:
                node = 2 * node + 1
        blk = self.cache.blocks[set_idx][way]
        if blk.valid:
            return way
        # The PLRU walk can land on an invalid way (the cache fills those
        # first anyway); fall back to any valid way.
        for w, b in enumerate(self.cache.blocks[set_idx]):
            if b.valid:
                return w
        raise LookupError(f"set {set_idx} has no valid block to victimise")

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        first = self.victim(set_idx, ctx)
        yield first
        for way, _blk in self._valid_ways(set_idx):
            if way != first:
                yield way


class LIPPolicy(LRUPolicy):
    """LRU insertion policy: fills enter at the LRU position, hits promote
    to MRU (Qureshi et al.)."""

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        # Insert *below* every current stamp: the block is the next victim
        # unless it earns a hit first.
        valid = self._valid_ways(set_idx)
        floor = min(
            (blk.stamp for w, blk in valid if w != way), default=0
        )
        self.cache.blocks[set_idx][way].stamp = floor - 1


class BIPPolicy(LIPPolicy):
    """Bimodal insertion: mostly LIP, occasionally MRU."""

    def __init__(self, mru_prob: float = 1 / 32, seed: int = 0xB1B) -> None:
        super().__init__()
        self.mru_prob = mru_prob
        self._rng = random.Random(seed)

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        if self._rng.random() < self.mru_prob:
            LRUPolicy.on_fill(self, set_idx, way, ctx)
        else:
            LIPPolicy.on_fill(self, set_idx, way, ctx)
