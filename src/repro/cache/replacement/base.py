"""Replacement-policy strategy interface."""

from __future__ import annotations

from typing import Iterator

from repro.cache.block import CacheBlock


class ReplacementPolicy:
    """Strategy object deciding victims within a cache set.

    A policy instance is bound to exactly one cache via :meth:`attach`.
    The cache guarantees that :meth:`victim` / :meth:`ranked_victims` are
    only consulted when the set has no invalid way (the Invalid-first rule
    lives in the cache).
    """

    #: The maximum RRPV value used by RRPV-based policies (3-bit, paper
    #: III-D: Hawkeye distinguishes cache-averse blocks by RRPV == 7).
    max_rrpv = 7

    def __init__(self) -> None:
        self.cache = None

    def attach(self, cache) -> None:
        if self.cache is not None:
            raise RuntimeError("policy already attached to a cache")
        self.cache = cache

    # -- event hooks ---------------------------------------------------------

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        raise NotImplementedError

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        raise NotImplementedError

    def on_evict(self, set_idx: int, way: int, ctx) -> None:
        """Called just before a block leaves the cache (default: no-op)."""

    # -- victim selection -----------------------------------------------------

    def victim(self, set_idx: int, ctx) -> int:
        for way in self.ranked_victims(set_idx, ctx):
            return way
        raise LookupError(f"set {set_idx} has no valid block to victimise")

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        """Valid ways ordered from most- to least-preferred victim.

        QBS and SHARP walk this order when skipping privately cached
        candidates; the ZIV relocation-set policies use it to honour the
        baseline policy's ordering."""
        raise NotImplementedError

    def promote(self, set_idx: int, way: int, ctx) -> None:
        """Make the block the least-preferred victim (QBS move-to-MRU)."""
        self.on_hit(set_idx, way, ctx)

    def on_relocation_fill(self, set_idx: int, way: int, ctx) -> None:
        """A relocated block entered (set, way).  Defaults to a normal
        fill; policies with learning side effects override this to update
        replacement state without training (see Hawkeye)."""
        self.on_fill(set_idx, way, ctx)

    # -- helpers --------------------------------------------------------------

    def _valid_ways(self, set_idx: int) -> list[tuple[int, CacheBlock]]:
        return [
            (way, blk)
            for way, blk in enumerate(self.cache.blocks[set_idx])
            if blk.valid
        ]
