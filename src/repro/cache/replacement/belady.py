"""Offline Belady MIN replacement.

The paper's Fig. 2 motivation study runs the LLC under an offline MIN
policy whose oracle is the *global* L1 access stream (footnote 2): the LLC
victim is the resident block whose next access in that stream lies furthest
in the future.  We build the oracle from the canonical lock-step
interleaving of the per-core traces (see :mod:`repro.sim.engine`), so the
oracle is well defined and independent of timing.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.cache.replacement.base import ReplacementPolicy

INFINITE = 1 << 62


class NextUseOracle:
    """Answers "when is ``addr`` next accessed after stream position ``pos``?"."""

    def __init__(self, stream: Iterable[int]) -> None:
        positions: dict[int, list[int]] = {}
        n = 0
        for pos, addr in enumerate(stream):
            positions.setdefault(addr, []).append(pos)
            n = pos + 1
        self._positions = positions
        self.length = n

    def next_use(self, addr: int, pos: int) -> int:
        """Position of the first access to ``addr`` strictly after ``pos``
        (``INFINITE`` if never accessed again)."""
        plist = self._positions.get(addr)
        if not plist:
            return INFINITE
        i = bisect.bisect_right(plist, pos)
        if i == len(plist):
            return INFINITE
        return plist[i]


class BeladyPolicy(ReplacementPolicy):
    """MIN: victimise the block with the furthest next use.

    Requires the access context's ``global_pos`` to be the current position
    in the oracle's stream (the engine's lock-step scheduling mode provides
    this)."""

    def __init__(self, oracle: NextUseOracle) -> None:
        super().__init__()
        self.oracle = oracle

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].stamp = ctx.global_pos

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].stamp = ctx.global_pos

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        pos = ctx.global_pos
        ranked = sorted(
            self._valid_ways(set_idx),
            key=lambda wb: -self.oracle.next_use(wb[1].addr, pos),
        )
        for way, _blk in ranked:
            yield way

    def victim(self, set_idx: int, ctx) -> int:
        pos = ctx.global_pos
        best_way, best_next = -1, -1
        for way, blk in self._valid_ways(set_idx):
            nxt = self.oracle.next_use(blk.addr, pos)
            if nxt > best_next:
                best_way, best_next = way, nxt
        if best_way < 0:
            raise LookupError(f"set {set_idx} has no valid block to victimise")
        return best_way
