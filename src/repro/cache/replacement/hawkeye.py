"""Hawkeye replacement (Jain & Lin, ISCA 2016).

Hawkeye learns from Belady's MIN at run time: a set sampler replays the
access stream of sampled sets through OPTgen (an occupancy-vector model of
MIN) and trains a PC-indexed predictor that classifies blocks as
*cache-friendly* (inserted with RRPV 0) or *cache-averse* (RRPV 7).  The
paper's ``MaxRRPVNotInPrC`` relocation property keys off the RRPV == 7
blocks this policy produces.

The predictor (and optionally the sampler) can be shared across the per-bank
policy instances of a banked LLC via :class:`HawkeyePredictor`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.replacement.base import ReplacementPolicy


def _hash_pc(pc: int, mask: int) -> int:
    return ((pc * 0x9E3779B1) >> 13) & mask


class HawkeyePredictor:
    """PC-indexed table of 3-bit saturating counters."""

    def __init__(self, entries: int = 2048, counter_bits: int = 3) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.mask = entries - 1
        self.max_value = (1 << counter_bits) - 1
        self.threshold = (self.max_value + 1) // 2
        self.table = [self.threshold] * entries

    def train(self, pc: int, opt_hit: bool) -> None:
        idx = _hash_pc(pc, self.mask)
        if opt_hit:
            if self.table[idx] < self.max_value:
                self.table[idx] += 1
        elif self.table[idx] > 0:
            self.table[idx] -= 1

    def detrain(self, pc: int) -> None:
        idx = _hash_pc(pc, self.mask)
        if self.table[idx] > 0:
            self.table[idx] -= 1

    def is_friendly(self, pc: int) -> bool:
        return self.table[_hash_pc(pc, self.mask)] >= self.threshold


class _SampledSet:
    """OPTgen state for one sampled set.

    Time advances by one per access to the set.  ``occ[t]`` counts how many
    OPT-cached liveness intervals cover quantum ``t``; an interval
    ``[prev, now)`` is an OPT hit iff every quantum it covers has occupancy
    below the cache capacity (the set associativity).
    """

    __slots__ = ("last", "occ", "base", "clock", "window")

    def __init__(self, window: int) -> None:
        self.last = {}  # addr -> (time, pc)
        self.occ = []
        self.base = 0
        self.clock = 0
        self.window = window

    def _compact(self) -> None:
        cutoff = self.clock - self.window
        if cutoff <= self.base:
            return
        drop = cutoff - self.base
        del self.occ[:drop]
        self.base = cutoff
        stale = [a for a, (t, _pc) in self.last.items() if t < cutoff]
        for a in stale:
            del self.last[a]

    def access(self, addr: int, pc: int, capacity: int) -> Optional[tuple[int, bool]]:
        """Record an access; returns (training_pc, opt_hit) or None.

        ``None`` means the address has no previous access in the window, so
        OPTgen has nothing to decide (a compulsory miss)."""
        now = self.clock
        result = None
        prev = self.last.get(addr)
        if prev is not None:
            prev_t, prev_pc = prev
            lo = prev_t - self.base
            hi = now - self.base
            interval = self.occ[lo:hi]
            if interval and all(o < capacity for o in interval):
                for i in range(lo, hi):
                    self.occ[i] += 1
                result = (prev_pc, True)
            elif not interval:
                # Same-quantum re-access: trivially an OPT hit.
                result = (prev_pc, True)
            else:
                result = (prev_pc, False)
        self.last[addr] = (now, pc)
        self.occ.append(0)
        self.clock += 1
        if len(self.occ) > 2 * self.window:
            self._compact()
        return result


class HawkeyePolicy(ReplacementPolicy):
    """Hawkeye: OPT-trained insertion with RRIP-style victim selection."""

    def __init__(
        self,
        rrpv_bits: int = 3,
        sample_every: int = 4,
        window_factor: int = 8,
        predictor: Optional[HawkeyePredictor] = None,
        predictor_entries: int = 2048,
    ) -> None:
        super().__init__()
        self.max_rrpv = (1 << rrpv_bits) - 1
        self.sample_every = max(1, sample_every)
        self.window_factor = window_factor
        self.predictor = predictor or HawkeyePredictor(predictor_entries)
        self._samples = {}  # set_idx -> _SampledSet

    # -- sampler ---------------------------------------------------------------

    def _sampled(self, set_idx: int) -> Optional[_SampledSet]:
        if set_idx % self.sample_every:
            return None
        state = self._samples.get(set_idx)
        if state is None:
            state = _SampledSet(window=self.window_factor * self.cache.ways)
            self._samples[set_idx] = state
        return state

    def _observe(self, set_idx: int, addr: int, pc: int) -> None:
        state = self._sampled(set_idx)
        if state is None:
            return
        outcome = state.access(addr, pc, self.cache.ways)
        if outcome is not None:
            train_pc, opt_hit = outcome
            self.predictor.train(train_pc, opt_hit)

    # -- policy hooks ------------------------------------------------------------

    def _apply_prediction(self, set_idx: int, way: int, pc: int,
                          is_fill: bool) -> None:
        blk = self.cache.blocks[set_idx][way]
        friendly = self.predictor.is_friendly(pc)
        blk.friendly = friendly
        blk.last_pc = pc
        if friendly:
            blk.rrpv = 0
            if is_fill:
                # Age the other non-averse lines so older friendly blocks
                # become better victims than fresh ones.
                for other_way, other in enumerate(self.cache.blocks[set_idx]):
                    if (other_way != way and other.valid
                            and other.rrpv < self.max_rrpv - 1):
                        other.rrpv += 1
        else:
            blk.rrpv = self.max_rrpv

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        blk = self.cache.blocks[set_idx][way]
        self._observe(set_idx, blk.addr, ctx.pc)
        self._apply_prediction(set_idx, way, ctx.pc, is_fill=True)

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        blk = self.cache.blocks[set_idx][way]
        self._observe(set_idx, blk.addr, ctx.pc)
        self._apply_prediction(set_idx, way, ctx.pc, is_fill=False)

    def on_evict(self, set_idx: int, way: int, ctx) -> None:
        blk = self.cache.blocks[set_idx][way]
        if blk.friendly:
            # A friendly block evicted before reuse: the load that inserted
            # it was over-trusted.
            self.predictor.detrain(blk.last_pc)

    def promote(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].rrpv = 0

    def on_relocation_fill(self, set_idx: int, way: int, ctx) -> None:
        """Relocated blocks enter with the predictor's opinion of their
        last load PC, but without a sampler observation (the relocation is
        not a program access) and without aging the set."""
        blk = self.cache.blocks[set_idx][way]
        friendly = self.predictor.is_friendly(blk.last_pc)
        blk.friendly = friendly
        blk.rrpv = 0 if friendly else self.max_rrpv

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        ranked = sorted(
            self._valid_ways(set_idx), key=lambda wb: (-wb[1].rrpv, wb[0])
        )
        for way, _blk in ranked:
            yield way
