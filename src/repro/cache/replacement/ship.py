"""SHiP: Signature-based Hit Predictor replacement (Wu et al., MICRO 2011).

Referenced by the paper ([59]) as another RRPV-graded policy the
``MaxRRPVNotInPrC`` relocation property composes with.  Each fill is
signed by a hash of its PC; a table of saturating counters learns whether
fills from that signature get re-referenced.  Predicted-dead fills insert
at the maximum RRPV (immediately evictable), others at max-1.
"""

from __future__ import annotations

from typing import Iterator

from repro.cache.replacement.srrip import SRRIPPolicy


def _sign(pc: int, mask: int) -> int:
    return ((pc * 0x85EBCA6B) >> 11) & mask


class SHiPPolicy(SRRIPPolicy):
    """SHiP-PC on a 3-bit RRPV substrate.

    Per-block state reuses ``last_pc`` (the signature source) and
    ``friendly`` (the "was re-referenced" outcome bit)."""

    def __init__(
        self,
        rrpv_bits: int = 3,
        shct_entries: int = 2048,
        counter_bits: int = 2,
    ) -> None:
        super().__init__(rrpv_bits)
        if shct_entries <= 0 or shct_entries & (shct_entries - 1):
            raise ValueError("shct_entries must be a power of two")
        self.mask = shct_entries - 1
        self.counter_max = (1 << counter_bits) - 1
        self.shct = [self.counter_max // 2 + 1] * shct_entries

    # -- SHCT -----------------------------------------------------------------

    def _predicts_reuse(self, pc: int) -> bool:
        return self.shct[_sign(pc, self.mask)] > 0

    def _train_reused(self, pc: int) -> None:
        idx = _sign(pc, self.mask)
        if self.shct[idx] < self.counter_max:
            self.shct[idx] += 1

    def _train_dead(self, pc: int) -> None:
        idx = _sign(pc, self.mask)
        if self.shct[idx] > 0:
            self.shct[idx] -= 1

    # -- policy hooks -----------------------------------------------------------

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        blk = self.cache.blocks[set_idx][way]
        blk.last_pc = ctx.pc
        blk.friendly = False  # "re-referenced" outcome bit, not yet earned
        if self._predicts_reuse(ctx.pc):
            blk.rrpv = self.max_rrpv - 1
        else:
            blk.rrpv = self.max_rrpv

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        blk = self.cache.blocks[set_idx][way]
        if not blk.friendly:
            blk.friendly = True
            self._train_reused(blk.last_pc)
        blk.rrpv = 0

    def on_evict(self, set_idx: int, way: int, ctx) -> None:
        blk = self.cache.blocks[set_idx][way]
        if not blk.friendly:
            self._train_dead(blk.last_pc)

    def on_relocation_fill(self, set_idx: int, way: int, ctx) -> None:
        blk = self.cache.blocks[set_idx][way]
        blk.rrpv = (
            self.max_rrpv - 1
            if self._predicts_reuse(blk.last_pc)
            else self.max_rrpv
        )

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        return super().ranked_victims(set_idx, ctx)
