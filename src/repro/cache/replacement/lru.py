"""True LRU via monotone timestamps."""

from __future__ import annotations

from typing import Iterator

from repro.cache.replacement.base import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement.

    Each block carries a ``stamp``; the policy keeps a single monotone
    counter, so the LRU block of a set is the valid block with the minimum
    stamp.  This representation makes the paper's ``LRUNotInPrC`` property
    ("the block in the LRU position is not privately cached") a one-scan
    query (see :mod:`repro.core.properties`).
    """

    def __init__(self) -> None:
        super().__init__()
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].stamp = self._tick()

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].stamp = self._tick()

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        ranked = sorted(self._valid_ways(set_idx), key=lambda wb: wb[1].stamp)
        for way, _blk in ranked:
            yield way

    def victim(self, set_idx: int, ctx) -> int:
        best_way, best_stamp = -1, None
        for way, blk in self._valid_ways(set_idx):
            if best_stamp is None or blk.stamp < best_stamp:
                best_way, best_stamp = way, blk.stamp
        if best_way < 0:
            raise LookupError(f"set {set_idx} has no valid block to victimise")
        return best_way

    def lru_block_way(self, set_idx: int) -> int:
        """Way of the block currently in the LRU position (-1 if empty)."""
        best_way, best_stamp = -1, None
        for way, blk in self._valid_ways(set_idx):
            if best_stamp is None or blk.stamp < best_stamp:
                best_way, best_stamp = way, blk.stamp
        return best_way
