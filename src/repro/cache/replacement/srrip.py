"""RRIP-family policies: SRRIP, BRRIP, and set-dueling DRRIP.

These use the same 3-bit RRPV substrate as Hawkeye (Jaleel et al., ISCA
2010).  They are not headline configurations in the paper but serve as
ablation baselines and exercise the ``MaxRRPVNotInPrC`` property with a
non-Hawkeye policy (the paper notes the property "can also be used with
other LLC replacement policies that employ RRPVs", III-D).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.cache.replacement.base import ReplacementPolicy


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP: insert at max_rrpv - 1, promote to 0 on hit."""

    def __init__(self, rrpv_bits: int = 3) -> None:
        super().__init__()
        self.max_rrpv = (1 << rrpv_bits) - 1

    def insertion_rrpv(self, set_idx: int, ctx) -> int:
        return self.max_rrpv - 1

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].rrpv = self.insertion_rrpv(set_idx, ctx)

    def on_hit(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].rrpv = 0

    def promote(self, set_idx: int, way: int, ctx) -> None:
        self.cache.blocks[set_idx][way].rrpv = 0

    def _age_until_max(self, set_idx: int) -> None:
        valid = self._valid_ways(set_idx)
        current_max = max(blk.rrpv for _w, blk in valid)
        delta = self.max_rrpv - current_max
        if delta > 0:
            for _w, blk in valid:
                blk.rrpv += delta

    def victim(self, set_idx: int, ctx) -> int:
        valid = self._valid_ways(set_idx)
        if not valid:
            raise LookupError(f"set {set_idx} has no valid block to victimise")
        self._age_until_max(set_idx)
        for way, blk in self._valid_ways(set_idx):
            if blk.rrpv >= self.max_rrpv:
                return way
        raise AssertionError("aging must expose a max-RRPV block")

    def ranked_victims(self, set_idx: int, ctx) -> Iterator[int]:
        ranked = sorted(
            self._valid_ways(set_idx), key=lambda wb: (-wb[1].rrpv, wb[0])
        )
        for way, _blk in ranked:
            yield way


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: insert at max_rrpv most of the time."""

    def __init__(self, rrpv_bits: int = 3, long_prob: float = 1 / 32,
                 seed: int = 0xBEEF) -> None:
        super().__init__(rrpv_bits)
        self.long_prob = long_prob
        self._rng = random.Random(seed)

    def insertion_rrpv(self, set_idx: int, ctx) -> int:
        if self._rng.random() < self.long_prob:
            return self.max_rrpv - 1
        return self.max_rrpv


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP with set dueling between SRRIP and BRRIP insertion."""

    def __init__(self, rrpv_bits: int = 3, dueling_sets: int = 4,
                 psel_bits: int = 10, seed: int = 0xBEEF) -> None:
        super().__init__(rrpv_bits)
        self.dueling_sets = dueling_sets
        self._psel_max = (1 << psel_bits) - 1
        self._psel = self._psel_max // 2
        self._rng = random.Random(seed)
        self.long_prob = 1 / 32

    def _leader(self, set_idx: int) -> str:
        """'srrip' leader, 'brrip' leader, or 'follower'."""
        period = max(2, self.cache.sets // self.dueling_sets)
        phase = set_idx % period
        if phase == 0:
            return "srrip"
        if phase == period // 2:
            return "brrip"
        return "follower"

    def on_fill(self, set_idx: int, way: int, ctx) -> None:
        kind = self._leader(set_idx)
        if kind == "srrip":
            rrpv = self.max_rrpv - 1
            self._psel = min(self._psel_max, self._psel + 1)
        elif kind == "brrip":
            rrpv = (self.max_rrpv - 1
                    if self._rng.random() < self.long_prob else self.max_rrpv)
            self._psel = max(0, self._psel - 1)
        else:
            use_srrip = self._psel >= self._psel_max // 2
            if use_srrip:
                rrpv = self.max_rrpv - 1
            else:
                rrpv = (self.max_rrpv - 1
                        if self._rng.random() < self.long_prob
                        else self.max_rrpv)
        self.cache.blocks[set_idx][way].rrpv = rrpv
