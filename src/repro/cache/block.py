"""Cache block and sparse-directory entry state.

A single block class serves every array in the hierarchy (L1, L2, LLC);
the LLC-only fields (``relocated``, ``not_in_prc``, ``likely_dead``,
``char_tag``) stay at their defaults in private caches, and the private-only
CHAR bookkeeping fields (``fill_hit``, ``demand_reuses``) stay at their
defaults in the LLC.  This costs a few bytes per block and buys a much
simpler substrate.
"""

from __future__ import annotations


class CacheBlock:
    """One cache line's worth of state (tag + status bits + policy state)."""

    __slots__ = (
        "addr",
        "valid",
        "dirty",
        # --- ZIV / inclusive-LLC state (paper III-C, III-D) ---
        "relocated",
        "not_in_prc",
        "likely_dead",
        "char_tag",
        # --- replacement-policy state ---
        "stamp",  # LRU timestamp
        "rrpv",  # RRIP/Hawkeye re-reference prediction value
        "nru",  # NRU reference bit
        "last_pc",  # Hawkeye: PC of the last access (for detraining)
        "friendly",  # Hawkeye: cache-friendly prediction at last touch
        # --- private-cache CHAR bookkeeping (paper III-D6) ---
        "fill_hit",  # filled into the private cache via an LLC hit?
        "demand_reuses",  # demand reuse count while in the L2
        "prefetched",  # brought in by the prefetcher, not yet demanded
    )

    def __init__(self) -> None:
        self.addr = -1
        self.valid = False
        self.dirty = False
        self.relocated = False
        self.not_in_prc = False
        self.likely_dead = False
        self.char_tag = None  # (core, group) set at L2-eviction time
        self.stamp = 0
        self.rrpv = 0
        self.nru = False
        self.last_pc = 0
        self.friendly = True
        self.fill_hit = False
        self.demand_reuses = 0
        self.prefetched = False

    def reset(self) -> None:
        """Return the block to the invalid state, clearing every bit."""
        self.addr = -1
        self.valid = False
        self.dirty = False
        self.relocated = False
        self.not_in_prc = False
        self.likely_dead = False
        self.char_tag = None
        self.stamp = 0
        self.rrpv = 0
        self.nru = False
        self.last_pc = 0
        self.friendly = True
        self.fill_hit = False
        self.demand_reuses = 0
        self.prefetched = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            ch
            for ch, on in (
                ("V", self.valid),
                ("D", self.dirty),
                ("R", self.relocated),
                ("N", self.not_in_prc),
                ("L", self.likely_dead),
            )
            if on
        )
        return f"<Block {self.addr:#x} {flags or '-'} rrpv={self.rrpv}>"


class DirectoryEntry:
    """One sparse-directory entry (paper III-A, III-C).

    Tracks one privately cached block: a sharer bitvector, the owning core
    when the block is in the M state, the NRU replacement bit, and -- the
    ZIV extension -- the ``Relocated`` state plus the ``<bank, set, way>``
    location of the relocated LLC copy.
    """

    __slots__ = (
        "addr",
        "valid",
        "sharers",
        "owner",
        "nru",
        "relocated",
        "reloc_bank",
        "reloc_set",
        "reloc_way",
    )

    def __init__(self) -> None:
        self.addr = -1
        self.valid = False
        self.sharers = 0  # bitmask over cores
        self.owner = -1  # core holding the M copy, -1 if none
        self.nru = False
        self.relocated = False
        self.reloc_bank = -1
        self.reloc_set = -1
        self.reloc_way = -1

    def reset(self) -> None:
        self.addr = -1
        self.valid = False
        self.sharers = 0
        self.owner = -1
        self.nru = False
        self.relocated = False
        self.reloc_bank = -1
        self.reloc_set = -1
        self.reloc_way = -1

    @property
    def sharer_count(self) -> int:
        return self.sharers.bit_count()

    def has_sharer(self, core: int) -> bool:
        return bool(self.sharers >> core & 1)

    def add_sharer(self, core: int) -> None:
        self.sharers |= 1 << core

    def remove_sharer(self, core: int) -> None:
        self.sharers &= ~(1 << core)
        if self.owner == core:
            self.owner = -1

    def set_relocation(self, bank: int, set_idx: int, way: int) -> None:
        self.relocated = True
        self.reloc_bank = bank
        self.reloc_set = set_idx
        self.reloc_way = way

    def clear_relocation(self) -> None:
        self.relocated = False
        self.reloc_bank = -1
        self.reloc_set = -1
        self.reloc_way = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        r = (
            f" reloc=({self.reloc_bank},{self.reloc_set},{self.reloc_way})"
            if self.relocated
            else ""
        )
        return f"<DirEntry {self.addr:#x} sharers={self.sharers:b}{r}>"
