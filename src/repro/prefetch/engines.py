"""Prefetch engines: next-line and PC-indexed stride.

Each core's L2 owns one engine.  On a demand L2 miss the engine proposes
candidate block addresses; the hierarchy fetches them into the L2 (and the
LLC, preserving inclusion) off the critical path.  Prefetched blocks carry
a ``prefetched`` bit, which feeds the CHAR block classification (paper
III-D6 lists "brought through a prefetch or a demand request" as the first
grouping attribute).
"""

from __future__ import annotations

from typing import Optional

from repro.params import PrefetchParams


class Prefetcher:
    """Interface: propose prefetch candidates on a demand miss."""

    def on_demand_miss(self, addr: int, pc: int) -> list[int]:
        raise NotImplementedError


class NextLinePrefetcher(Prefetcher):
    """Fetch the next ``degree`` sequential blocks."""

    def __init__(self, degree: int = 2) -> None:
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree

    def on_demand_miss(self, addr: int, pc: int) -> list[int]:
        return [addr + d for d in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Classic PC-indexed stride detector with confidence counters."""

    def __init__(self, degree: int = 2, table_entries: int = 256,
                 min_confidence: int = 2) -> None:
        if degree <= 0:
            raise ValueError("degree must be positive")
        if table_entries <= 0 or table_entries & (table_entries - 1):
            raise ValueError("table_entries must be a power of two")
        self.degree = degree
        self.mask = table_entries - 1
        self.min_confidence = min_confidence
        # pc-hash -> [last_addr, stride, confidence]
        self.table: dict[int, list[int]] = {}

    def _index(self, pc: int) -> int:
        return ((pc * 0x9E3779B1) >> 7) & self.mask

    def on_demand_miss(self, addr: int, pc: int) -> list[int]:
        idx = self._index(pc)
        entry = self.table.get(idx)
        out: list[int] = []
        if entry is None:
            self.table[idx] = [addr, 0, 0]
            return out
        last, stride, confidence = entry
        new_stride = addr - last
        if new_stride == stride and stride != 0:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
            stride = new_stride
        entry[0] = addr
        entry[1] = stride
        entry[2] = confidence
        if confidence >= self.min_confidence and stride != 0:
            out = [addr + stride * d for d in range(1, self.degree + 1)]
        return [a for a in out if a >= 0]


def make_prefetcher(params: PrefetchParams) -> Optional[Prefetcher]:
    """Build the configured engine; None when prefetching is off."""
    if params.kind == "none":
        return None
    if params.kind == "nextline":
        return NextLinePrefetcher(degree=params.degree)
    return StridePrefetcher(
        degree=params.degree,
        table_entries=params.table_entries,
        min_confidence=params.min_confidence,
    )
