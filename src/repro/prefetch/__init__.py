"""L2 hardware prefetchers."""

from repro.prefetch.engines import (
    NextLinePrefetcher,
    Prefetcher,
    StridePrefetcher,
    make_prefetcher,
)

__all__ = [
    "Prefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "make_prefetcher",
]
