"""The run ledger: an append-only JSONL provenance record of every run.

Every completed simulation -- a fresh execution, a memo hit, a disk-
cache hit, a direct :func:`~repro.sim.engine.run_workload` call --
appends one :class:`LedgerRecord` line to ``<cache_dir>/ledger.jsonl``.
The ledger is the fleet's flight recorder: what ran, under which recipe
key and configuration digest, on which engine, how fast, whether the
invariant auditor complained, and where the result came from.  The
``repro obs`` CLI, the metrics registry and the perf-regression checker
all consume it.

Properties:

* **Atomic appends.**  Each record is one ``os.write`` on an
  ``O_APPEND`` descriptor, so concurrent writers (``run_many`` worker
  merges racing a second process) interleave whole lines, never
  fragments.
* **Never breaks a run.**  Append failures (read-only cache dir, full
  disk) are swallowed; the ledger is observability, not a dependency.
* **Byte-stable round-trip.**  ``to_json_line`` serialises with sorted
  keys; ``from_json_line(line).to_json_line() == line`` for any line
  the writer produced, and :meth:`LedgerRecord.from_dict` validates
  keys both ways in the ``config_io`` style.
* **Opt-out.**  ``REPRO_LEDGER=off`` disables appends; reads are
  unaffected.  The path rides ``REPRO_CACHE_DIR``, so test isolation
  of the result cache isolates the ledger for free.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.params import ConfigError

#: Schema version embedded in every record; bump on field changes so
#: readers can skip (or upgrade) foreign-era lines explicitly.
LEDGER_VERSION = 1

_LEDGER_NAME = "ledger.jsonl"


def ledger_enabled() -> bool:
    """Appends are on unless REPRO_LEDGER is off/0/false/no."""
    return os.environ.get("REPRO_LEDGER", "on").strip().lower() not in (
        "off", "0", "false", "no",
    )


def ledger_path() -> Path:
    """The ledger lives next to the result cache it describes."""
    from repro.sim.parallel import cache_dir

    return cache_dir() / _LEDGER_NAME


def config_digest(config: Any) -> str:
    """Stable content hash of a :class:`~repro.params.SystemConfig`
    (sha256 over the sorted ``config_io`` dict form)."""
    from repro.config_io import config_to_dict

    preimage = json.dumps(config_to_dict(config), sort_keys=True)
    return hashlib.sha256(preimage.encode()).hexdigest()


@dataclass(frozen=True)
class LedgerRecord:
    """One completed run, as recorded in the ledger.

    ``source`` is the resolution provenance (``"run"`` fresh under
    ``run_many``/``fetch_or_run``, ``"memo"``/``"disk"`` cache hits,
    ``"direct"`` for a plain ``run_workload`` call); ``cache_hit``
    folds that to a boolean.  ``wall_s``/``accesses_per_s`` are zero
    for cache hits (the stored result carries no new timing).  The
    field set is pinned three ways by the ``ledger-schema-sync`` lint
    rule: this dataclass, the keyword-complete constructor call in
    :func:`record_from_result`, and the field table in
    ``docs/OBSERVABILITY.md``.
    """

    version: int
    ts: float
    recipe_key: str
    workload: str
    workload_fingerprint: str
    scheme: str
    policy: str
    scheduling: str
    engine: str
    config_digest: str
    source: str
    cache_hit: bool
    trace_path: str
    resumed_from: str
    wall_s: float
    accesses: int
    accesses_per_s: float
    cycles: int
    audit_violations: int
    telemetry_samples: int
    telemetry_events: int
    profile_phases: dict
    host_cpus: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LedgerRecord":
        if not isinstance(data, dict):
            raise ConfigError("ledger record must be a JSON object")
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ConfigError(
                f"unknown ledger-record keys: {sorted(unknown)}"
            )
        missing = names - set(data)
        if missing:
            raise ConfigError(
                f"ledger record needs keys: {sorted(missing)}"
            )
        return cls(**data)

    def to_json_line(self) -> str:
        """Canonical single-line JSON form (sorted keys, no newline)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json_line(cls, line: str) -> "LedgerRecord":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad ledger line: {exc}") from exc
        return cls.from_dict(data)

    @property
    def short_key(self) -> str:
        return self.recipe_key[:8] if self.recipe_key else "--------"


def record_from_result(
    *,
    recipe_key: str,
    result: Any,
    source: str,
    wall_s: float,
    config: Any,
    workload_fingerprint: str = "",
    scheduling: str = "timing",
    trace_path: str = "",
    resumed_from: str = "",
) -> LedgerRecord:
    """Build the ledger record for one completed run.

    Every :class:`LedgerRecord` field is passed as an explicit keyword
    below -- the ``ledger-schema-sync`` lint rule checks that this
    construction site covers the full schema, so a new field cannot be
    added to the dataclass without deciding what writers record for it.
    """
    audit = result.audit
    telemetry = result.telemetry
    profile = result.profile
    accesses = result.stats.total_accesses
    fresh = source in ("run", "direct")
    rate = (
        accesses / wall_s if fresh and wall_s > 0 and accesses else 0.0
    )
    return LedgerRecord(
        version=LEDGER_VERSION,
        # Provenance timestamp: when this resolution happened, by
        # design run-dependent; records are ledger-only, never cached.
        ts=time.time(),  # repro-lint: ignore[determinism]
        recipe_key=recipe_key,
        workload=result.workload,
        workload_fingerprint=workload_fingerprint,
        scheme=result.scheme,
        policy=result.policy,
        scheduling=scheduling,
        engine=getattr(config, "engine", "object"),
        config_digest=config_digest(config),
        source=source,
        cache_hit=not fresh,
        trace_path=trace_path,
        resumed_from=resumed_from,
        wall_s=wall_s if fresh else 0.0,
        accesses=accesses,
        accesses_per_s=rate,
        cycles=result.cycles,
        audit_violations=(
            len(audit.violations) if audit is not None else 0
        ),
        telemetry_samples=(
            len(telemetry.series) if telemetry is not None else 0
        ),
        telemetry_events=(
            len(telemetry.events) if telemetry is not None else 0
        ),
        profile_phases=(
            dict(profile.phase_s) if profile is not None else {}
        ),
        host_cpus=os.cpu_count() or 1,
    )


def append_record(
    record: LedgerRecord, path: Optional[Path] = None
) -> bool:
    """Atomically append one record; returns whether a line was written.

    A single ``write(2)`` on an ``O_APPEND`` descriptor appends the
    whole line atomically with respect to concurrent appenders.  Any
    OS-level failure is swallowed: the ledger must never fail a run.
    """
    if not ledger_enabled():
        return False
    target = Path(path) if path is not None else ledger_path()
    line = record.to_json_line() + "\n"
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            target, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
    except OSError:
        return False
    return True


def iter_ledger(
    path: Optional[Path] = None, strict: bool = False
) -> Iterator[LedgerRecord]:
    """Yield records oldest-first; unparsable lines are skipped unless
    ``strict`` (a torn final line from a crashed writer must not brick
    the whole ledger)."""
    target = Path(path) if path is not None else ledger_path()
    try:
        text = target.read_text()
    except OSError:
        return
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            yield LedgerRecord.from_json_line(line)
        except ConfigError:
            if strict:
                raise


def read_ledger(
    path: Optional[Path] = None, strict: bool = False
) -> list:
    """All ledger records, oldest-first."""
    return list(iter_ledger(path, strict=strict))
