"""Metrics registry + Prometheus/JSON exporters over the run ledger.

Aggregates :class:`~repro.obs.ledger.LedgerRecord` history (and,
optionally, live :class:`~repro.sim.telemetry.RunProgress` heartbeats)
into named, labelled metrics, then exports them in Prometheus
text-exposition format or JSON.  A future simulation service scrapes
these unchanged; today the ``repro obs export`` CLI serves them to
files/stdout.

Export round-trip is exact: integer samples are written as integers,
float samples via ``repr`` (Python's shortest-round-trip formatting),
so ``parse_prometheus(registry.to_prometheus())`` reproduces every
value bit-identically -- asserted by the test suite and the obs-smoke
CI job.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

_VALID_KINDS = ("counter", "gauge")

Labels = "tuple[tuple[str, str], ...]"


def _labels(items: Optional[dict] = None) -> tuple:
    return tuple(sorted((items or {}).items()))


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class Metric:
    """One named metric: kind, help text, and labelled samples."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: dict = {}  # labels tuple -> numeric value

    def inc(self, labels: tuple, amount: Any) -> None:
        self.samples[labels] = self.samples.get(labels, 0) + amount

    def set(self, labels: tuple, value: Any) -> None:
        self.samples[labels] = value


class MetricsRegistry:
    """A small, dependency-free registry in the Prometheus data model."""

    def __init__(self) -> None:
        self._metrics: dict = {}

    def counter(self, name: str, help_text: str) -> Metric:
        return self._declare(name, "counter", help_text)

    def gauge(self, name: str, help_text: str) -> Metric:
        return self._declare(name, "gauge", help_text)

    def _declare(self, name: str, kind: str, help_text: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Metric(name, kind, help_text)
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already declared as {metric.kind}"
            )
        return metric

    def inc(self, name: str, labels: Optional[dict] = None,
            amount: Any = 1) -> None:
        self._metrics[name].inc(_labels(labels), amount)

    def set(self, name: str, labels: Optional[dict] = None,
            value: Any = 0) -> None:
        self._metrics[name].set(_labels(labels), value)

    def value(self, name: str, labels: Optional[dict] = None) -> Any:
        """One sample's current value (None when never observed)."""
        metric = self._metrics.get(name)
        if metric is None:
            return None
        return metric.samples.get(_labels(labels))

    # -- live fleet progress ----------------------------------------------

    def observe_progress(self, p: Any) -> None:
        """Fold one :class:`~repro.sim.telemetry.RunProgress` heartbeat
        into the live fleet gauges (idempotent per heartbeat: gauges are
        set, not incremented)."""
        fleet = {}  # single unlabelled series
        self.gauge("repro_fleet_completed",
                   "recipes resolved so far in the current run_many")
        self.gauge("repro_fleet_total",
                   "recipes submitted to the current run_many")
        self.gauge("repro_fleet_simulated",
                   "fresh simulations among the resolved recipes")
        self.gauge("repro_fleet_accesses_per_s",
                   "aggregate simulated accesses/second (fresh runs)")
        self.set("repro_fleet_completed", fleet, p.completed)
        self.set("repro_fleet_total", fleet, p.total)
        self.set("repro_fleet_simulated", fleet, p.simulated)
        self.set("repro_fleet_accesses_per_s", fleet, p.accesses_per_s)

    # -- exporters ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for labels in sorted(metric.samples):
                value = metric.samples[labels]
                if labels:
                    rendered = ",".join(
                        f'{k}="{v}"' for k, v in labels
                    )
                    series = f"{name}{{{rendered}}}"
                else:
                    series = name
                lines.append(f"{series} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """JSON export mirroring the Prometheus series set exactly."""
        out = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "samples": [
                    {"labels": dict(labels), "value": value}
                    for labels, value in sorted(metric.samples.items())
                ],
            }
        return json.dumps(out, sort_keys=True, indent=2)


def parse_prometheus(text: str) -> dict:
    """Parse text exposition back to ``{(name, labels): value}``.

    The inverse of :meth:`MetricsRegistry.to_prometheus` for the subset
    that exporter emits; used by the round-trip tests and the smoke
    job."""
    out: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        if "{" in series:
            name, _, rest = series.partition("{")
            body = rest.rstrip("}")
            labels = []
            for pair in body.split(","):
                if not pair:
                    continue
                key, _, quoted = pair.partition("=")
                labels.append((key, quoted.strip('"')))
            key_t = (name, tuple(sorted(labels)))
        else:
            key_t = (series, ())
        value = float(raw)
        out[key_t] = int(value) if value.is_integer() else value
    return out


def registry_from_ledger(
    records: Iterable, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Aggregate ledger records into the standard fleet metrics.

    ``registry`` (optional) aggregates into an existing registry
    instead of a fresh one -- the simulation service's ``/metrics``
    endpoint folds its own job counters and the ledger aggregation into
    a single exposition this way."""
    reg = registry if registry is not None else MetricsRegistry()
    reg.counter("repro_runs_total",
                "completed runs by resolution source and engine")
    reg.counter("repro_simulated_accesses_total",
                "accesses simulated by fresh runs, by engine")
    reg.counter("repro_wall_seconds_total",
                "wall time spent in fresh simulations, by engine")
    reg.counter("repro_audit_violations_total",
                "invariant-audit violations recorded, by engine")
    reg.counter("repro_telemetry_events_total",
                "telemetry events traced, by engine")
    reg.counter("repro_profile_phase_seconds_total",
                "profiled wall seconds by phase and engine")
    reg.gauge("repro_last_accesses_per_s",
              "throughput of the most recent fresh run, by engine")
    reg.gauge("repro_best_accesses_per_s",
              "best fresh-run throughput on record, by engine")
    reg.gauge("repro_ledger_records",
              "ledger records aggregated into this export")
    count = 0
    for rec in records:
        count += 1
        engine = {"engine": rec.engine}
        reg.inc("repro_runs_total",
                {"engine": rec.engine, "source": rec.source})
        if rec.audit_violations:
            reg.inc("repro_audit_violations_total", engine,
                    rec.audit_violations)
        if rec.telemetry_events:
            reg.inc("repro_telemetry_events_total", engine,
                    rec.telemetry_events)
        for phase, seconds in sorted(rec.profile_phases.items()):
            reg.inc("repro_profile_phase_seconds_total",
                    {"engine": rec.engine, "phase": phase}, seconds)
        if rec.cache_hit:
            continue
        reg.inc("repro_simulated_accesses_total", engine, rec.accesses)
        reg.inc("repro_wall_seconds_total", engine, rec.wall_s)
        if rec.accesses_per_s:
            reg.set("repro_last_accesses_per_s", engine,
                    rec.accesses_per_s)
            best = reg.value("repro_best_accesses_per_s", engine)
            if best is None or rec.accesses_per_s > best:
                reg.set("repro_best_accesses_per_s", engine,
                        rec.accesses_per_s)
    reg.set("repro_ledger_records", None, count)
    return reg
