"""``repro obs`` -- fleet observability from the command line.

Subactions::

    obs ls       recent ledger records, one line each
    obs show     full dump of one record (by recipe-key prefix)
    obs top      aggregate dashboard: throughput by engine, time sinks
    obs diff     field-by-field comparison of two records
    obs export   metrics registry as Prometheus text or JSON
    obs regress  compare throughput against BENCH history + the ledger

``obs regress`` exits 1 on any regression past the threshold;
``--check`` (the CI gate) additionally fails when *nothing* was
comparable, so the gate can never pass vacuously.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
from typing import Optional


def add_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="obs_action", required=True)

    p = sub.add_parser("ls", help="list ledger records, newest last")
    p.add_argument("--limit", type=int, default=20,
                   help="show at most the newest N records (default 20)")
    p.add_argument("--ledger", default=None, metavar="FILE.jsonl",
                   help="ledger path (default: <cache_dir>/ledger.jsonl)")

    p = sub.add_parser("show", help="dump one ledger record as JSON")
    p.add_argument("key", help="recipe-key prefix (>= 4 hex chars)")
    p.add_argument("--ledger", default=None, metavar="FILE.jsonl")

    p = sub.add_parser("top", help="aggregate throughput dashboard")
    p.add_argument("--limit", type=int, default=10,
                   help="rows per section (default 10)")
    p.add_argument("--ledger", default=None, metavar="FILE.jsonl")

    p = sub.add_parser("diff", help="compare two ledger records")
    p.add_argument("key_a", help="recipe-key prefix of the first record")
    p.add_argument("key_b", help="recipe-key prefix of the second")
    p.add_argument("--ledger", default=None, metavar="FILE.jsonl")

    p = sub.add_parser("export", help="export the metrics registry")
    p.add_argument("--format", default="prometheus",
                   choices=("prometheus", "json"))
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write here instead of stdout")
    p.add_argument("--ledger", default=None, metavar="FILE.jsonl")

    p = sub.add_parser(
        "regress",
        help="compare current throughput against BENCH_*.json history "
             "and prior ledger entries",
    )
    p.add_argument("--bench", nargs="*", default=None, metavar="GLOB",
                   help="bench-history files/globs "
                        "(default: BENCH_*.json)")
    p.add_argument("--current", default=None, metavar="FILE.json",
                   help="freshly produced bench report to gate against "
                        "the history (default: gate the history's own "
                        "newest report per family)")
    p.add_argument("--threshold", type=float, default=None,
                   help="regression threshold as a fraction "
                        "(default 0.2 = 20%%)")
    p.add_argument("--cpus", type=int, default=None,
                   help="override the host cpu count used to match "
                        "ledger entries (testing)")
    p.add_argument("--min-accesses", type=int, default=None,
                   help="ignore ledger runs smaller than this "
                        "(default 20000)")
    p.add_argument("--check", action="store_true",
                   help="CI gate: also exit 1 when no comparison was "
                        "possible (a vacuous gate must not pass)")
    p.add_argument("--ledger", default=None, metavar="FILE.jsonl")


def _records(args) -> list:
    from repro.obs.ledger import read_ledger

    return read_ledger(args.ledger)


def _match_key(records: list, prefix: str) -> Optional[object]:
    if len(prefix) < 4:
        print(f"key prefix {prefix!r} too short (>= 4 chars)",
              file=sys.stderr)
        return None
    hits = [r for r in records if r.recipe_key.startswith(prefix)]
    if not hits:
        print(f"no ledger record matches key prefix {prefix!r}",
              file=sys.stderr)
        return None
    # Newest record wins when one recipe ran repeatedly.
    return hits[-1]


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return ""
    filled = int(round(width * value / peak))
    return "#" * max(0, min(width, filled))


def _ls_line(rec) -> str:
    rate = (
        f"{rec.accesses_per_s / 1000.0:8.0f}k/s" if rec.accesses_per_s
        else f"{'cached':>10s}"
    )
    return (
        f"{rec.short_key} {rec.engine:6s} {rec.source:6s} "
        f"{rec.scheme}/{rec.policy:8s} {rec.workload:20.20s} "
        f"{rec.accesses:>9d} acc {rate} wall {rec.wall_s:7.3f}s"
    )


def _cmd_ls(args) -> int:
    records = _records(args)
    if not records:
        print("ledger is empty")
        return 0
    for rec in records[-max(0, args.limit):]:
        print(_ls_line(rec))
    print(f"{len(records)} record(s) total")
    return 0


def _cmd_show(args) -> int:
    rec = _match_key(_records(args), args.key)
    if rec is None:
        return 1
    print(json.dumps(rec.to_dict(), sort_keys=True, indent=2))
    return 0


def _cmd_top(args) -> int:
    records = _records(args)
    if not records:
        print("ledger is empty")
        return 0
    fresh = [r for r in records if not r.cache_hit and r.accesses_per_s]
    print(f"ledger: {len(records)} record(s), {len(fresh)} fresh "
          f"timed run(s)")
    best: dict = {}
    for rec in fresh:
        if (rec.engine not in best
                or rec.accesses_per_s > best[rec.engine].accesses_per_s):
            best[rec.engine] = rec
    if best:
        peak = max(r.accesses_per_s for r in best.values())
        print("\nbest throughput by engine:")
        for engine in sorted(best):
            rec = best[engine]
            print(f"  {engine:6s} {rec.accesses_per_s / 1000.0:8.0f}k/s "
                  f"{_bar(rec.accesses_per_s, peak)}  ({rec.short_key} "
                  f"{rec.scheme}/{rec.policy})")
    sinks = sorted(fresh, key=lambda r: -r.wall_s)[:max(0, args.limit)]
    if sinks:
        peak_wall = sinks[0].wall_s
        print("\nbiggest time sinks (fresh runs):")
        for rec in sinks:
            print(f"  {rec.wall_s:8.3f}s {_bar(rec.wall_s, peak_wall)}  "
                  f"{rec.short_key} {rec.engine} "
                  f"{rec.scheme}/{rec.policy} {rec.workload}")
    phases: dict = {}
    for rec in fresh:
        for phase, seconds in rec.profile_phases.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
    if phases:
        peak_phase = max(phases.values())
        print("\nprofiled phase time (all fresh runs):")
        for phase in sorted(phases, key=lambda p: -phases[p]):
            print(f"  {phase:12s} {phases[phase]:8.3f}s "
                  f"{_bar(phases[phase], peak_phase)}")
    return 0


def _cmd_diff(args) -> int:
    records = _records(args)
    rec_a = _match_key(records, args.key_a)
    rec_b = _match_key(records, args.key_b)
    if rec_a is None or rec_b is None:
        return 1
    dict_a = rec_a.to_dict()
    dict_b = rec_b.to_dict()
    same = True
    for field in sorted(dict_a):
        va, vb = dict_a[field], dict_b[field]
        if va != vb:
            same = False
            print(f"{field:22s} {va!r:>24} | {vb!r}")
    if same:
        print("records are identical")
    return 0


def _cmd_export(args) -> int:
    from repro.obs.registry import registry_from_ledger

    registry = registry_from_ledger(_records(args))
    text = (
        registry.to_prometheus() if args.format == "prometheus"
        else registry.to_json()
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.format} metrics to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_regress(args) -> int:
    from repro.obs.regress import (
        DEFAULT_THRESHOLD,
        MIN_LEDGER_ACCESSES,
        load_bench_file,
        run_regress,
    )

    patterns = args.bench if args.bench is not None else ["BENCH_*.json"]
    bench_paths: list = []
    for pattern in patterns:
        matches = sorted(glob.glob(pattern))
        bench_paths.extend(matches if matches else [pattern])
    current = None
    if args.current:
        try:
            current = load_bench_file(args.current)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot read --current: {exc}", file=sys.stderr)
            return 2
    report = run_regress(
        ledger_records=_records(args),
        bench_paths=bench_paths,
        current_bench=current,
        threshold=(
            args.threshold if args.threshold is not None
            else DEFAULT_THRESHOLD
        ),
        host_cpus=args.cpus,
        min_accesses=(
            args.min_accesses if args.min_accesses is not None
            else MIN_LEDGER_ACCESSES
        ),
    )
    print(report.describe())
    return report.exit_code(check=args.check)


def run_obs(args) -> int:
    handler = {
        "ls": _cmd_ls,
        "show": _cmd_show,
        "top": _cmd_top,
        "diff": _cmd_diff,
        "export": _cmd_export,
        "regress": _cmd_regress,
    }[args.obs_action]
    return handler(args)
