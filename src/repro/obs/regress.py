"""Perf-regression tracking against BENCH history and the run ledger.

Two comparison legs, both throughput-shaped and both direction-aware:

* **Bench vs history** -- a freshly produced benchmark report (same
  JSON shape ``scripts/check_bench.py`` validates) against every
  committed ``BENCH_*.json`` with the same ``bench`` name.  Absolute
  rates only transfer between identical hosts, so a comparison is
  *skipped with a reason* whenever the ``cpus`` fields differ -- CI
  boxes never falsely fail against the author's bench machine, while a
  same-host rerun gets a real gate.

* **Ledger vs ledger** -- the most recent fresh run per engine against
  the best fresh throughput on record for that engine on this host.
  This is the leg that catches "the code got slower" without anyone
  re-running a benchmark script: the ledger accumulates rates as a
  side effect of normal work.

Metric direction is inferred from the key: ``*_per_s`` and
``*speedup*`` are higher-better, ``*overhead*`` lower-better; keys
with no recognised direction are ignored.  A regression is a change
worse than ``threshold`` (default 20%) in the bad direction.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

#: Default regression threshold: fractional change in the bad direction.
DEFAULT_THRESHOLD = 0.2

#: Ledger comparisons ignore runs smaller than this many accesses --
#: tiny smoke runs measure pool/startup noise, not engine throughput.
MIN_LEDGER_ACCESSES = 20000


def metric_direction(key: str) -> Optional[str]:
    """``"higher"``/``"lower"``-is-better, or None (not comparable)."""
    lowered = key.lower()
    if "overhead" in lowered:
        return "lower"
    if lowered.endswith("_per_s") or "speedup" in lowered:
        return "higher"
    return None


@dataclass(frozen=True)
class Comparison:
    """One baseline-vs-current check (or a skip, with its reason)."""

    name: str
    baseline: float = 0.0
    current: float = 0.0
    direction: str = "higher"
    change: float = 0.0  # signed fraction; positive = improvement
    regressed: bool = False
    skipped: bool = False
    reason: str = ""

    def describe(self) -> str:
        if self.skipped:
            return f"SKIP  {self.name}: {self.reason}"
        arrow = "+" if self.change >= 0 else ""
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{verdict:9s} {self.name}: {self.baseline:g} -> "
            f"{self.current:g} ({arrow}{100.0 * self.change:.1f}%, "
            f"{self.direction} is better)"
        )


def compare_value(
    name: str,
    baseline: float,
    current: float,
    direction: str,
    threshold: float,
) -> Comparison:
    if baseline <= 0:
        return Comparison(
            name=name, skipped=True,
            reason=f"non-positive baseline {baseline!r}",
        )
    if direction == "higher":
        change = (current - baseline) / baseline
    else:
        change = (baseline - current) / baseline
    return Comparison(
        name=name,
        baseline=baseline,
        current=current,
        direction=direction,
        change=change,
        regressed=change < -threshold,
    )


def load_bench_file(path: Any) -> dict:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: bench report must be a JSON object")
    return data


def compare_bench(
    current: dict,
    history: "Iterable[tuple[str, dict]]",
    threshold: float = DEFAULT_THRESHOLD,
) -> list:
    """Compare a current bench report against named historical reports.

    Only reports with the same ``bench`` family are compared; within a
    family, a ``cpus`` mismatch skips the whole report (absolute rates
    do not transfer across hosts), otherwise every shared key with a
    recognised direction is checked."""
    out = []
    bench = current.get("bench")
    for name, baseline in history:
        if baseline.get("bench") != bench:
            continue
        base_cpus = baseline.get("cpus")
        cur_cpus = current.get("cpus")
        if base_cpus != cur_cpus:
            out.append(Comparison(
                name=f"{name}", skipped=True,
                reason=(
                    f"host cpus differ (baseline {base_cpus}, "
                    f"current {cur_cpus}); absolute rates not "
                    f"comparable"
                ),
            ))
            continue
        for key in sorted(set(baseline) & set(current)):
            direction = metric_direction(key)
            if direction is None:
                continue
            base_v = baseline[key]
            cur_v = current[key]
            if not isinstance(base_v, (int, float)) or isinstance(
                base_v, bool
            ):
                continue
            if not isinstance(cur_v, (int, float)) or isinstance(
                cur_v, bool
            ):
                continue
            out.append(compare_value(
                f"{name}:{key}", float(base_v), float(cur_v),
                direction, threshold,
            ))
    return out


def compare_history(
    history: "Iterable[tuple[str, dict]]",
    threshold: float = DEFAULT_THRESHOLD,
) -> list:
    """Internal consistency of the committed bench history: within each
    bench family (same ``bench`` value, same ``cpus``), the newest
    report must not regress against the best earlier one.  Catches a
    slower re-benchmark being committed on top of a faster history."""
    families: dict = {}
    for name, report in history:
        families.setdefault(report.get("bench"), []).append(
            (name, report)
        )
    out = []
    for bench in sorted(k for k in families if k is not None):
        reports = sorted(families[bench])
        if len(reports) < 2:
            continue
        newest_name, newest = reports[-1]
        out.extend(compare_bench(
            newest,
            [r for r in reports[:-1]],
            threshold,
        ))
    return out


def compare_ledger(
    records: Iterable,
    threshold: float = DEFAULT_THRESHOLD,
    host_cpus: Optional[int] = None,
    min_accesses: int = MIN_LEDGER_ACCESSES,
) -> list:
    """Latest fresh run per engine vs the best prior rate on this host."""
    if host_cpus is None:
        host_cpus = os.cpu_count() or 1
    by_engine: dict = {}
    for rec in records:
        if rec.cache_hit or not rec.accesses_per_s:
            continue
        if rec.host_cpus != host_cpus:
            continue
        if rec.accesses < min_accesses:
            continue
        by_engine.setdefault(rec.engine, []).append(rec)
    out = []
    for engine in sorted(by_engine):
        runs = by_engine[engine]
        if len(runs) < 2:
            out.append(Comparison(
                name=f"ledger:{engine}:accesses_per_s", skipped=True,
                reason=(
                    f"need >= 2 comparable fresh runs on this host "
                    f"(have {len(runs)})"
                ),
            ))
            continue
        current = runs[-1]
        baseline = max(r.accesses_per_s for r in runs[:-1])
        out.append(compare_value(
            f"ledger:{engine}:accesses_per_s",
            baseline, current.accesses_per_s, "higher", threshold,
        ))
    return out


@dataclass
class RegressReport:
    """Everything one ``obs regress`` invocation decided."""

    comparisons: list = field(default_factory=list)
    errors: list = field(default_factory=list)

    @property
    def regressions(self) -> list:
        return [c for c in self.comparisons if c.regressed]

    @property
    def checked(self) -> list:
        return [c for c in self.comparisons if not c.skipped]

    def exit_code(self, check: bool = False) -> int:
        """0 clean, 1 regression (or a vacuous ``--check`` gate with
        nothing comparable), 2 unreadable inputs."""
        if self.errors:
            return 2
        if self.regressions:
            return 1
        if check and not self.checked:
            return 1
        return 0

    def describe(self) -> str:
        lines = [c.describe() for c in self.comparisons]
        for err in self.errors:
            lines.append(f"ERROR {err}")
        checked = len(self.checked)
        skipped = len(self.comparisons) - checked
        lines.append(
            f"regress: {checked} comparison(s), "
            f"{len(self.regressions)} regression(s), "
            f"{skipped} skipped"
        )
        return "\n".join(lines)


def run_regress(
    ledger_records: Iterable = (),
    bench_paths: Iterable = (),
    current_bench: Optional[dict] = None,
    threshold: float = DEFAULT_THRESHOLD,
    host_cpus: Optional[int] = None,
    min_accesses: int = MIN_LEDGER_ACCESSES,
) -> RegressReport:
    """Run both comparison legs; never raises for bad inputs (they land
    in ``report.errors`` and exit code 2)."""
    report = RegressReport()
    history = []
    for path in bench_paths:
        try:
            history.append((Path(path).name, load_bench_file(path)))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            report.errors.append(f"{path}: {exc}")
    if current_bench is not None:
        report.comparisons.extend(
            compare_bench(current_bench, history, threshold)
        )
    elif history:
        report.comparisons.extend(compare_history(history, threshold))
    report.comparisons.extend(compare_ledger(
        ledger_records, threshold, host_cpus, min_accesses
    ))
    return report
