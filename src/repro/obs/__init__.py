"""Fleet-level observability: run ledger, phase profiler, metrics.

``repro.obs`` is the observability backbone the simulation-service
direction needs before any HTTP layer exists (ROADMAP): a provenance
**ledger** of every completed run (:mod:`repro.obs.ledger`), an opt-in
deterministic **phase profiler** surfaced as ``SimResult.profile``
(:mod:`repro.obs.profile`), a **metrics registry** with Prometheus
text-exposition and JSON exporters (:mod:`repro.obs.registry`), and a
**perf-regression checker** comparing current throughput against the
committed ``BENCH_*.json`` history and prior ledger entries
(:mod:`repro.obs.regress`).  The ``repro obs`` CLI
(:mod:`repro.obs.cli`) fronts all four.

Import discipline: nothing in this package imports ``repro.sim`` at
module level (the simulation engine imports :mod:`repro.obs.profile`,
so a module-level back-import would cycle).  Wall-clock reads live
here, *outside* the simulator scope, which is why the determinism lint
rule needs no suppressions in this package: timings feed the ledger and
``SimResult.profile`` only, never a simulated counter.
"""

from repro.obs.ledger import (
    LEDGER_VERSION,
    LedgerRecord,
    append_record,
    config_digest,
    iter_ledger,
    ledger_enabled,
    ledger_path,
    read_ledger,
    record_from_result,
)
from repro.obs.profile import (
    PROFILE_PHASES,
    PhaseProfiler,
    ProfileResult,
    parse_profile_spec,
    resolve_profile,
)
from repro.obs.registry import (
    MetricsRegistry,
    parse_prometheus,
    registry_from_ledger,
)
from repro.obs.regress import Comparison, RegressReport, run_regress

__all__ = [
    "LEDGER_VERSION",
    "LedgerRecord",
    "append_record",
    "config_digest",
    "iter_ledger",
    "ledger_enabled",
    "ledger_path",
    "read_ledger",
    "record_from_result",
    "PROFILE_PHASES",
    "PhaseProfiler",
    "ProfileResult",
    "parse_profile_spec",
    "resolve_profile",
    "MetricsRegistry",
    "parse_prometheus",
    "registry_from_ledger",
    "Comparison",
    "RegressReport",
    "run_regress",
]
