"""Deterministic phase profiler (``SimResult.profile``).

Answers "where did this run spend its time" without touching the hot
path when disabled.  Two complementary views:

* **Phase timers** -- the engine brackets its coarse phases (trace
  ``decode``, the ``access_loop``, the ``audit`` and ``telemetry``
  hooks, the end-of-run ``flush``) with :meth:`PhaseProfiler.enter` /
  :meth:`PhaseProfiler.exit`.  Wall-clock reads happen *here*, outside
  the simulator scope, so the determinism lint rule stays clean; the
  engine only ever calls methods on the profiler handle, and every call
  site sits behind an ``if profiler is not None`` guard (the same
  discipline -- and the same lint rule -- as telemetry emission), so
  the disabled path costs one predicate check.

* **Counter attribution** -- a deterministic hot-path breakdown derived
  purely from the run's own counters (which level each access
  terminated at, weighted by configured latency).  Identical for
  cached and fresh executions of the same recipe, on both engines.

``ProfileParams`` lives in :class:`~repro.params.SystemConfig` and is
serialised by ``config_io``, so profiling participates in the recipe
cache key exactly like audit/telemetry settings: a profiled run never
aliases a plain run.  Resolution precedence mirrors
:func:`~repro.sim.audit.resolve_audit`: explicit argument >
``REPRO_PROFILE`` environment variable > ``config.profile``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.params import ConfigError, ProfileParams

#: Phases the engines bracket, in execution order.  ``access_loop`` is
#: inclusive of the per-access ``audit``/``telemetry`` hook time (the
#: hooks run inside the loop); the hook phases break that share out.
PROFILE_PHASES = ("decode", "access_loop", "audit", "telemetry", "flush")

_OFF_TOKENS = ("off", "0", "false", "no")


def parse_profile_spec(spec: Optional[str]) -> ProfileParams:
    """Parse a profile spec string (``"on"``/``"off"``) into
    :class:`ProfileParams`."""
    if spec is None:
        return ProfileParams()
    token = spec.strip().lower()
    if not token or token == "on" or token == "1" or token == "true":
        return ProfileParams(enabled=True)
    if token in _OFF_TOKENS:
        return ProfileParams(enabled=False)
    raise ConfigError(
        f"bad profile spec {spec!r}; expected 'on' or 'off'"
    )


def profile_params_from_env() -> Optional[ProfileParams]:
    spec = os.environ.get("REPRO_PROFILE")
    if spec is None or not spec.strip():
        return None
    return parse_profile_spec(spec)


def resolve_profile(
    explicit: Any, config_profile: Optional[ProfileParams] = None
) -> ProfileParams:
    """Resolve the profiler settings for one run.

    Precedence mirrors :func:`repro.sim.audit.resolve_audit`: an
    explicit argument (:class:`ProfileParams` or a spec string) wins;
    else ``REPRO_PROFILE``; else the configuration's own ``profile``
    field (default: disabled)."""
    if explicit is not None:
        if isinstance(explicit, ProfileParams):
            return explicit
        if isinstance(explicit, str):
            return parse_profile_spec(explicit)
        raise TypeError(
            f"profile must be ProfileParams or a spec string, "
            f"got {type(explicit).__name__}"
        )
    env = profile_params_from_env()
    if env is not None:
        return env
    return (
        config_profile if config_profile is not None else ProfileParams()
    )


@dataclass(frozen=True)
class ProfileResult:
    """One run's phase profile (picklable, cached with the SimResult).

    ``phase_s`` maps phase name to accumulated wall seconds;
    ``phase_calls`` counts enter/exit (or wrapped-hook) invocations per
    phase; ``attribution`` is the deterministic counter-derived
    breakdown (level-termination shares weighted by configured
    latency, summing to 1.0 when the run had any access)."""

    engine: str
    phase_s: dict = field(default_factory=dict)
    phase_calls: dict = field(default_factory=dict)
    attribution: dict = field(default_factory=dict)
    total_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "phase_s": dict(self.phase_s),
            "phase_calls": dict(self.phase_calls),
            "attribution": dict(self.attribution),
            "total_s": self.total_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileResult":
        if not isinstance(data, dict):
            raise ConfigError("profile result must be a JSON object")
        known = {"engine", "phase_s", "phase_calls", "attribution",
                 "total_s"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown profile-result keys: {sorted(unknown)}"
            )
        missing = known - set(data)
        if missing:
            raise ConfigError(
                f"profile result needs keys: {sorted(missing)}"
            )
        return cls(
            engine=data["engine"],
            phase_s=dict(data["phase_s"]),
            phase_calls=dict(data["phase_calls"]),
            attribution=dict(data["attribution"]),
            total_s=data["total_s"],
        )

    def summary(self) -> str:
        """One line for :func:`repro.sim.report.describe_result`."""
        phases = sorted(
            self.phase_s.items(), key=lambda kv: (-kv[1], kv[0])
        )
        parts = [
            f"{name} {seconds:.3f}s" for name, seconds in phases
        ]
        hot = sorted(
            self.attribution.items(), key=lambda kv: (-kv[1], kv[0])
        )
        if hot:
            parts.append(
                "hot: " + " ".join(
                    f"{name} {share:.0%}" for name, share in hot[:3]
                )
            )
        return f"profile ({self.engine}): " + " | ".join(parts)


class PhaseProfiler:
    """Accumulates wall time per named phase for one run.

    Tolerates nesting (the hook phases run inside ``access_loop``) and
    unbalanced ``exit`` calls (ignored) so an engine bail-out -- e.g. a
    :class:`~repro.sim.checkpoint.SimulationInterrupted` -- never turns
    into a profiler error."""

    __slots__ = ("phase_s", "phase_calls", "_open", "_t0")

    def __init__(self) -> None:
        self.phase_s: dict = {}
        self.phase_calls: dict = {}
        self._open: dict = {}
        # The profiler MEASURES wall time; that is its job.  Profile
        # attachments ride beside results and never enter a cache key.
        self._t0 = time.perf_counter()  # repro-lint: ignore[determinism]

    def enter(self, phase: str) -> None:
        # Phase timing measurement (see __init__ rationale).
        self._open[phase] = time.perf_counter()  # repro-lint: ignore[determinism]

    def exit(self, phase: str) -> None:
        t0 = self._open.pop(phase, None)
        if t0 is None:
            return
        self.phase_s[phase] = (
            # Phase timing measurement (see __init__ rationale).
            self.phase_s.get(phase, 0.0)
            + time.perf_counter()  # repro-lint: ignore[determinism]
            - t0
        )
        self.phase_calls[phase] = self.phase_calls.get(phase, 0) + 1

    def timed(self, phase: str, fn: Callable) -> Callable:
        """Wrap a per-access hook so its calls accumulate under
        ``phase``.  Only installed when profiling is enabled -- the
        unprofiled hook path is untouched."""
        phase_s = self.phase_s
        phase_calls = self.phase_calls
        perf_counter = time.perf_counter

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                phase_s[phase] = (
                    phase_s.get(phase, 0.0) + perf_counter() - t0
                )
                phase_calls[phase] = phase_calls.get(phase, 0) + 1

        return wrapper

    def finalize(self, engine: str, stats: Any = None,
                 config: Any = None) -> ProfileResult:
        """Close out the run: total wall time plus the counter-derived
        attribution (see :func:`counter_attribution`)."""
        attribution: dict = {}
        if stats is not None:
            attribution = counter_attribution(stats, config)
        return ProfileResult(
            engine=engine,
            phase_s=dict(self.phase_s),
            phase_calls=dict(self.phase_calls),
            attribution=attribution,
            # Total wall time of the run being profiled (measurement).
            total_s=time.perf_counter() - self._t0,  # repro-lint: ignore[determinism]
        )


def counter_attribution(stats: Any, config: Any = None) -> dict:
    """Deterministic hot-path shares from a run's own counters.

    Each access terminates at exactly one level (L1 hit, L2 hit, LLC
    hit, or a memory fill); weighting each terminal population by its
    configured access latency estimates where the access loop's work
    went, using nothing but the counters both engines already maintain
    -- so the attribution is bit-identical across engines and across
    cached/fresh executions of the same recipe."""
    l1_hits = sum(c.l1_hits for c in stats.cores)
    l2_hits = sum(c.l2_hits for c in stats.cores)
    llc_hits = stats.llc_hits
    fills = stats.llc_misses
    if config is not None:
        w1 = config.l1.latency
        w2 = config.l1.latency + config.l2.latency
        w3 = w2 + config.llc.tag_latency + config.llc.data_latency
        w4 = w3 + config.dram.row_miss_latency
    else:
        w1, w2, w3, w4 = 1, 2, 3, 4
    weighted = {
        "l1_hit": l1_hits * w1,
        "l2_hit": l2_hits * w2,
        "llc_hit": llc_hits * w3,
        "dram_fill": fills * w4,
    }
    total = sum(weighted.values())
    if total <= 0:
        return {}
    return {name: value / total for name, value in weighted.items()}
