"""Evict+Reload across the shared LLC.

The shared-memory sibling of prime+probe: attacker and victim share a
block (a shared library line).  The attacker *evicts* the shared block
from the LLC with an eviction set, waits for the victim's secret-dependent
access, then *reloads* the shared block and times it: a fast reload means
the victim re-fetched the block into the LLC.

Inclusive LLC: the eviction back-invalidates the victim's private copy,
so a secret access must come through the LLC -- noise-free signal.

ZIV LLC: while the victim holds the block privately the attacker cannot
evict it at all (the fill *relocates* it), and the attacker's own reload
then hits through the relocation pointer whether or not the victim
touched the block -- the reload is always fast and carries no information.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hierarchy.cmp import CacheHierarchy
from repro.params import SystemConfig
from repro.schemes import make_scheme
from repro.security.primeprobe import _eviction_set


@dataclass
class EvictReloadResult:
    scheme: str
    trials: int
    correct: int
    fast_reloads_signal: int  # fast reloads in secret=1 trials
    fast_reloads_noise: int  # fast reloads in secret=0 trials

    @property
    def accuracy(self) -> float:
        return self.correct / self.trials if self.trials else 0.0

    @property
    def leaks(self) -> bool:
        return self.accuracy >= 0.75


def evict_reload_experiment(
    config: SystemConfig,
    scheme_name: str,
    llc_policy: str = "lru",
    trials: int = 32,
    seed: int = 2,
) -> EvictReloadResult:
    """Run an Evict+Reload campaign (attacker core 0, victim core 1)."""
    rng = random.Random(seed)
    h = CacheHierarchy(config, make_scheme(scheme_name),
                       llc_policy=llc_policy)
    hit_threshold = (
        config.dram.row_hit_latency // 2
        + h.private[0].l1_latency
        + h.private[0].l2_latency
    )
    target_bank, target_set = 0, 0
    assoc = config.llc.ways
    shared_line = _eviction_set(config, target_bank, target_set, 1,
                                base_tag=7000)[0]
    eviction_lines = _eviction_set(config, target_bank, target_set, assoc,
                                   base_tag=100)
    decoy = _eviction_set(config, (target_bank + 1) % config.llc.banks, 1,
                          1, base_tag=8000)[0]
    cycle = 0
    correct = 0
    fast_signal = 0
    fast_noise = 0
    for _trial in range(trials):
        secret = rng.randrange(2)
        # Victim holds the shared line privately.
        for _ in range(2):
            cycle += 1 + h.access(1, shared_line, cycle=cycle)
        # Attacker evicts the shared line (or ZIV relocates it).
        for line in eviction_lines:
            cycle += 1 + h.access(0, line, cycle=cycle)
        # Victim's secret-dependent access.
        if secret:
            cycle += 1 + h.access(1, shared_line, cycle=cycle)
        else:
            cycle += 1 + h.access(1, decoy, cycle=cycle)
        # Attacker reloads the shared line and times it.  Its private
        # copies were evicted naturally while touching the eviction set
        # (every line maps to the same attacker L1/L2 sets and the set is
        # larger than the private associativity), so the reload measures
        # the LLC -- no explicit flush is needed, and the directory stays
        # exact.
        reload_lat = h.access(0, shared_line, cycle=cycle)
        cycle += 1 + reload_lat
        fast = reload_lat < hit_threshold
        if fast == bool(secret):
            correct += 1
        if secret:
            fast_signal += int(fast)
        else:
            fast_noise += int(fast)
    return EvictReloadResult(
        scheme=scheme_name,
        trials=trials,
        correct=correct,
        fast_reloads_signal=fast_signal,
        fast_reloads_noise=fast_noise,
    )
