"""Side-channel analysis harnesses.

The paper motivates ZIV with eviction-based cross-core attacks (I-A) and
defers a full security analysis to future work (VI); this package provides
the experiments such an analysis starts from:

* prime+probe (:mod:`repro.security.primeprobe`)
* evict+reload (:mod:`repro.security.evictreload`)
* the relocated-access latency channel of III-C1
  (:mod:`repro.security.latency_probe`)
"""

from repro.security.primeprobe import PrimeProbeResult, prime_probe_experiment
from repro.security.evictreload import (
    EvictReloadResult,
    evict_reload_experiment,
)
from repro.security.latency_probe import (
    LatencyProbeResult,
    relocation_latency_probe,
)

__all__ = [
    "PrimeProbeResult",
    "prime_probe_experiment",
    "EvictReloadResult",
    "evict_reload_experiment",
    "LatencyProbeResult",
    "relocation_latency_probe",
]
