"""Prime+probe over the shared LLC, with and without inclusion victims.

The paper motivates ZIV partly by security: inclusion victims let an
attacker control a *victim core's private cache* contents through LLC
evictions, which makes eviction-based cross-core channels (prime+probe et
al.) essentially noise-free.  Without inclusion victims, the victim keeps
hitting in its private caches and the channel collapses.

The harness mounts the canonical attack:

1. the victim touches its secret-indexed block (it lands in the victim's
   L1/L2 and the LLC);
2. the attacker *primes* the target LLC set with an eviction set;
3. the victim performs its secret-dependent access;
4. the attacker *probes* its eviction set, timing each access; an LLC miss
   above the memory-latency threshold reveals that the victim re-fetched
   its block into the set.

Under an inclusive LLC the prime back-invalidates the victim's private
copy, so step 3 must re-fetch through the LLC and the probe observes it.
Under the ZIV LLC the prime merely *relocates* the victim's block, the
private copy survives, step 3 hits in the victim's L1, and the probe learns
nothing.  A non-inclusive LLC also defeats this particular channel (the
private copy survives), which is why the paper positions ZIV as matching
non-inclusive isolation while keeping inclusivity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hierarchy.cmp import CacheHierarchy
from repro.params import SystemConfig
from repro.schemes import make_scheme


@dataclass
class PrimeProbeResult:
    """Outcome of a prime+probe campaign."""

    scheme: str
    trials: int
    correct: int
    signal_probe_misses: int  # probe misses observed in secret=1 trials
    noise_probe_misses: int  # probe misses observed in secret=0 trials

    @property
    def accuracy(self) -> float:
        return self.correct / self.trials if self.trials else 0.0

    @property
    def leaks(self) -> bool:
        """True when the attacker does substantially better than guessing."""
        return self.accuracy >= 0.75


def _eviction_set(config: SystemConfig, bank: int, set_idx: int,
                  count: int, base_tag: int) -> list[int]:
    """``count`` distinct block addresses mapping to (bank, set)."""
    banks = config.llc.banks
    sets = config.llc.sets_per_bank
    stride = banks * sets
    bank_bits = (banks - 1).bit_length()
    base = (set_idx << bank_bits) | bank
    return [base + (base_tag + k) * stride for k in range(count)]


def prime_probe_experiment(
    config: SystemConfig,
    scheme_name: str,
    llc_policy: str = "lru",
    trials: int = 32,
    seed: int = 1,
    miss_threshold: int | None = None,
) -> PrimeProbeResult:
    """Run a prime+probe campaign; returns accuracy and probe statistics.

    Attacker runs on core 0, victim on core 1.  The secret is one bit per
    trial: whether the victim accesses the monitored block."""
    rng = random.Random(seed)
    scheme = make_scheme(scheme_name)
    h = CacheHierarchy(config, scheme, llc_policy=llc_policy)
    if miss_threshold is None:
        # Anything at or above a DRAM round trip is a miss.
        miss_threshold = (
            config.dram.row_hit_latency // 2
            + h.private[0].l1_latency
            + h.private[0].l2_latency
        )

    target_bank, target_set = 0, config.llc.sets_per_bank - 1
    assoc = config.llc.ways
    # Exactly one line per way: with an LRU-managed set, priming
    # associativity-many lines evicts everything else (including the
    # victim's line) without self-evicting.
    attacker_lines = _eviction_set(
        config, target_bank, target_set, assoc, base_tag=1000
    )
    victim_line = _eviction_set(
        config, target_bank, target_set, 1, base_tag=5000
    )[0]
    decoy_line = _eviction_set(
        config, (target_bank + 1) % config.llc.banks, 0, 1, base_tag=6000
    )[0]

    cycle = 0
    correct = 0
    signal_misses = 0
    noise_misses = 0
    for _trial in range(trials):
        secret = rng.randrange(2)
        # 1. Victim establishes its block in its private caches + LLC.
        for _ in range(3):
            cycle += 1 + h.access(1, victim_line, cycle=cycle)
        # 2. Attacker primes the target set.
        for line in attacker_lines:
            cycle += 1 + h.access(0, line, cycle=cycle)
        # 3. Victim's secret-dependent access.
        if secret:
            cycle += 1 + h.access(1, victim_line, cycle=cycle)
        else:
            cycle += 1 + h.access(1, decoy_line, cycle=cycle)
        # 4. Attacker probes (a subset, to keep the probe itself from
        # refilling the whole set) and times each access.
        probe_misses = 0
        for line in attacker_lines[:assoc]:
            lat = h.access(0, line, cycle=cycle)
            cycle += 1 + lat
            if lat >= miss_threshold:
                probe_misses += 1
        guess = 1 if probe_misses > 0 else 0
        if guess == secret:
            correct += 1
        if secret:
            signal_misses += probe_misses
        else:
            noise_misses += probe_misses
    return PrimeProbeResult(
        scheme=scheme_name,
        trials=trials,
        correct=correct,
        signal_probe_misses=signal_misses,
        noise_probe_misses=noise_misses,
    )
