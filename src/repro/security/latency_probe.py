"""The relocated-access latency channel (paper III-C1).

Accessing a relocated block costs max(tag, directory) + data latency plus
1-3 cycles over a plain LLC hit.  The paper argues this delta "will be
impossible to distinguish ... from the latency fluctuations that happen
due to various non-deterministic latency components (such as queuing
delays)".  This module quantifies that argument: it collects the LLC-hit
latency of accesses to relocated and non-relocated shared blocks, adds a
configurable measurement jitter (standing in for the round-trip queueing
noise of a real machine; the event-cost model's hit path is otherwise
deterministic), and reports the accuracy of the optimal single-threshold
distinguisher.

Accuracy ~0.5 = the channel is closed at that noise level; accuracy ~1.0
= a zero-noise machine would leak whether a block suffered an LLC
conflict, which is exactly the residual risk the paper acknowledges and
dismisses for realistic noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hierarchy.cmp import CacheHierarchy
from repro.params import SystemConfig
from repro.schemes import make_scheme
from repro.security.primeprobe import _eviction_set


@dataclass
class LatencyProbeResult:
    scheme: str
    samples: int
    jitter_sigma: float
    relocated_mean: float
    normal_mean: float
    distinguisher_accuracy: float

    @property
    def channel_open(self) -> bool:
        return self.distinguisher_accuracy >= 0.75


def _best_threshold_accuracy(neg: list[float], pos: list[float]) -> float:
    """Accuracy of the best single-threshold classifier separating the
    two latency populations."""
    if not neg or not pos:
        return 0.0
    points = sorted(set(neg) | set(pos))
    best = 0.5
    for t in points:
        tp = sum(1 for x in pos if x > t)
        tn = sum(1 for x in neg if x <= t)
        acc = (tp + tn) / (len(pos) + len(neg))
        best = max(best, acc, 1 - acc)
    return best


def relocation_latency_probe(
    config: SystemConfig,
    scheme_name: str = "ziv:notinprc",
    samples: int = 64,
    jitter_sigma: float = 0.0,
    seed: int = 5,
) -> LatencyProbeResult:
    """Measure relocated vs normal LLC-hit latencies under jitter.

    Core 1 pins blocks privately so that core 0's fills relocate them;
    core 0 then samples LLC-hit latencies to relocated blocks (through the
    directory pointer) and to ordinary shared blocks.
    """
    rng = random.Random(seed)
    h = CacheHierarchy(config, make_scheme(scheme_name), llc_policy="lru")
    assoc = config.llc.ways
    target_bank, target_set = 0, 2
    pinned = _eviction_set(config, target_bank, target_set, 2,
                           base_tag=9000)
    filler = _eviction_set(config, target_bank, target_set, assoc,
                           base_tag=300)
    # The reference block lives in another LLC set of the same bank but
    # maps to the SAME private L1/L2 sets as the filler lines, so the
    # filler stream evicts core 0's private copy and the reference access
    # genuinely measures an LLC hit.
    normal_ref = _eviction_set(config, target_bank, target_set + 2, 1,
                               base_tag=9500)[0]
    cycle = 0
    relocated_lat: list[float] = []
    normal_lat: list[float] = []
    for _ in range(samples):
        # Victim core pins its blocks privately.
        for a in pinned:
            cycle += 1 + h.access(1, a, cycle=cycle)
        # Attacker floods the set; ZIV relocates the pinned blocks.
        for a in filler:
            cycle += 1 + h.access(0, a, cycle=cycle)
        # Sample: access a (likely relocated) pinned block from core 0 --
        # a new sharer, served through the directory pointer -- and an
        # ordinary shared block in another set.
        entry = h.directory.lookup(pinned[0])
        lat = h.access(0, pinned[0], cycle=cycle)
        cycle += 1 + lat
        was_relocated = entry is not None and entry.relocated
        jitter = rng.gauss(0.0, jitter_sigma) if jitter_sigma else 0.0
        if was_relocated:
            relocated_lat.append(lat + jitter)
        h.access(1, normal_ref, cycle=cycle)  # keep it LLC-resident
        cycle += 1
        lat2 = h.access(0, normal_ref, cycle=cycle)
        cycle += 1 + lat2
        if lat2 < config.dram.row_hit_latency // 2:  # only LLC hits count
            jitter2 = rng.gauss(0.0, jitter_sigma) if jitter_sigma else 0.0
            normal_lat.append(lat2 + jitter2)
        # Evict core 0's fresh private copies by streaming its L1/L2 sets.
        for a in filler:
            cycle += 1 + h.access(0, a, cycle=cycle)
    acc = _best_threshold_accuracy(normal_lat, relocated_lat)
    return LatencyProbeResult(
        scheme=scheme_name,
        samples=samples,
        jitter_sigma=jitter_sigma,
        relocated_mean=(
            sum(relocated_lat) / len(relocated_lat) if relocated_lat else 0.0
        ),
        normal_mean=sum(normal_lat) / len(normal_lat) if normal_lat else 0.0,
        distinguisher_accuracy=acc,
    )
