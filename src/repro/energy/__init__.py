"""Energy accounting (paper Section V-C / Fig. 19)."""

from repro.energy.model import EnergyModel, EnergyTable

__all__ = ["EnergyModel", "EnergyTable"]
