"""CACTI-style per-access energy table and EPI accounting.

The paper estimates the relocation energy with CACTI at 22 nm and the DRAM
energy with the Micron DDR3 power calculator, reporting (i) the relocation
contribution to energy-per-instruction (at most ~12 pJ, growing with L2
capacity -- Fig. 19) and (ii) the EPI *saved* in the L2/LLC/DRAM through
fewer misses (~0.5 pJ + ~14.6 pJ at the 512 KB point).

We reproduce the *accounting*: a table of per-event energies whose default
values are chosen so a full-scale configuration lands in the paper's pJ
range, an :class:`EnergyModel` that turns simulation counters into EPI, and
the same breakdown the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies in pico-Joules (22 nm-ish defaults)."""

    l1_access: float = 5.0
    l2_access: float = 12.0
    llc_tag_access: float = 6.0
    llc_data_read: float = 30.0
    llc_data_write: float = 33.0
    dir_access: float = 2.0
    dir_access_widened: float = 2.8  # 28/29-bit vs 10/11-bit entries (III-C4)
    dram_access: float = 450.0
    pv_update: float = 0.15  # property-vector flip + nextRS logic
    interconnect_hop: float = 1.5


@dataclass(slots=True)
class EnergyModel:
    """Accumulates event counts and reports energy / EPI breakdowns."""

    table: EnergyTable = field(default_factory=EnergyTable)
    ziv_mode: bool = False  # widened directory entries when True

    l1_accesses: int = 0
    l2_accesses: int = 0
    llc_tag_accesses: int = 0
    llc_data_reads: int = 0
    llc_data_writes: int = 0
    dir_accesses: int = 0
    dram_accesses: int = 0
    relocations: int = 0
    pv_updates: int = 0

    # -- recording -------------------------------------------------------------

    def record_relocation(self) -> None:
        """One relocation = LLC data read + LLC data write + dir update."""
        self.relocations += 1
        self.llc_data_reads += 1
        self.llc_data_writes += 1
        self.dir_accesses += 1

    # -- reporting -------------------------------------------------------------

    def _dir_energy_per_access(self) -> float:
        return (
            self.table.dir_access_widened
            if self.ziv_mode
            else self.table.dir_access
        )

    def total_energy_pj(self) -> float:
        t = self.table
        return (
            self.l1_accesses * t.l1_access
            + self.l2_accesses * t.l2_access
            + self.llc_tag_accesses * t.llc_tag_access
            + self.llc_data_reads * t.llc_data_read
            + self.llc_data_writes * t.llc_data_write
            + self.dir_accesses * self._dir_energy_per_access()
            + self.dram_accesses * t.dram_access
            + self.pv_updates * t.pv_update
        )

    def relocation_energy_pj(self) -> float:
        """Energy attributable to the ZIV relocation machinery alone:
        the block read+write per relocation, the widened-directory delta on
        every directory access, and PV maintenance (paper Fig. 19)."""
        t = self.table
        reloc = self.relocations * (t.llc_data_read + t.llc_data_write)
        dir_delta = (
            self.dir_accesses * (t.dir_access_widened - t.dir_access)
            if self.ziv_mode
            else 0.0
        )
        return reloc + dir_delta + self.pv_updates * t.pv_update

    def relocation_epi_pj(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return self.relocation_energy_pj() / instructions

    def epi_pj(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return self.total_energy_pj() / instructions

    def hierarchy_energy_pj(self) -> float:
        """L2 + LLC energy (the paper's "L2 cache and the LLC" bucket)."""
        t = self.table
        return (
            self.l2_accesses * t.l2_access
            + self.llc_tag_accesses * t.llc_tag_access
            + self.llc_data_reads * t.llc_data_read
            + self.llc_data_writes * t.llc_data_write
        )

    def dram_energy_pj(self) -> float:
        return self.dram_accesses * self.table.dram_access


def epi_saving_pj(
    baseline: EnergyModel, candidate: EnergyModel, instructions: int
) -> dict[str, float]:
    """Per-instruction energy saved by ``candidate`` vs ``baseline``
    (positive = candidate cheaper), broken down as the paper does:
    "EPI saved in the L2 caches, LLC, and DRAM as a result of fewer
    misses" separately from the relocation cost.  The candidate's
    relocation block read/write energy is therefore excluded from the
    hierarchy bucket (it is the ``relocation_cost`` bucket)."""
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    t = candidate.table
    reloc_rw = candidate.relocations * (t.llc_data_read + t.llc_data_write)
    return {
        "hierarchy": (
            baseline.hierarchy_energy_pj()
            - (candidate.hierarchy_energy_pj() - reloc_rw)
        )
        / instructions,
        "dram": (baseline.dram_energy_pj() - candidate.dram_energy_pj())
        / instructions,
        "relocation_cost": candidate.relocation_epi_pj(instructions),
    }
