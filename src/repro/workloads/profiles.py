"""Synthetic application profiles standing in for SPEC CPU 2017.

The paper draws 36 application-input pairs from SPEC CPU 2017 (ref inputs,
500M-instruction SimPoints).  We define 36 named profiles -- 12 behavioural
archetypes x 3 working-set variants -- whose *relationship to the scaled
cache hierarchy* mirrors the relationship of the real suite to the paper's
hierarchy: some fit in the L2 (and suffer inclusion victims inflicted by
others), some live in the LLC with circular reuse (and make MIN-like
policies victimise recently used blocks), some stream or thrash (and
inflict the evictions).  Working-set sizes below are in blocks and sized
against the scaled geometry (L2 = 64..192 blocks/core, LLC = 2048 blocks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.trace import CoreTrace, TraceRecord
from repro.workloads.patterns import make_pattern


def _fnv1a(*parts) -> int:
    """Deterministic 32-bit hash (Python's ``hash`` is salted per run)."""
    h = 0x811C9DC5
    for part in parts:
        for byte in str(part).encode():
            h ^= byte
            h = (h * 0x01000193) & 0xFFFFFFFF
    return h


@dataclass(frozen=True)
class Region:
    """One access region of a profile."""

    kind: str  # pattern name
    size: int  # blocks
    weight: float  # fraction of accesses
    pcs: int = 4  # distinct load/store PCs touching the region


@dataclass(frozen=True)
class AppProfile:
    """A synthetic application: weighted regions + intensity knobs."""

    name: str
    regions: tuple[Region, ...]
    write_ratio: float = 0.15
    mean_gap: int = 6  # non-memory instructions between accesses

    def footprint(self) -> int:
        return sum(r.size for r in self.regions)


def _archetypes() -> dict[str, tuple[tuple, float, int]]:
    """12 behavioural archetypes: (regions, write_ratio, mean_gap).

    Region sizes are for the middle ("ref") variant; the small/large
    variants scale them by 3/4 and 3/2.
    """
    return {
        # LLC-thrashing pointer chaser (mcf-like): inflicts evictions.
        "mcf": (
            (("chase", 1536, 0.85), ("hot", 24, 0.15)),
            0.10,
            4,
        ),
        # Pure streaming (lbm-like): maximal LLC pressure, zero LLC reuse.
        "lbm": ((("streaming", 4096, 1.0),), 0.40, 3),
        # Pointer chase over an LLC-share-sized heap (omnetpp-like).
        "omnetpp": (
            (("chase", 448, 0.7), ("hot", 40, 0.3)),
            0.20,
            6,
        ),
        # Mostly L2-resident with a moderate circular tail (gcc-like).
        "gcc": (
            (("hot", 48, 0.6), ("circular", 192, 0.4)),
            0.25,
            7,
        ),
        # The classic circular pattern at ~LLC-share size (xalancbmk-like):
        # makes MIN/Hawkeye victimise recently used (privately cached)
        # blocks -- the paper's Section I-A analysis.
        "xalancbmk": ((("circular", 288, 0.9), ("hot", 16, 0.1)), 0.12, 5),
        # Stencil sweeps (cactuBSSN-like).
        "cactus": (
            (("stencil", 512, 0.8), ("hot", 32, 0.2)),
            0.30,
            5,
        ),
        # L2-resident game-tree search (deepsjeng-like): a victim of other
        # cores' inclusion victims.
        "deepsjeng": ((("hot", 56, 1.0),), 0.18, 8),
        # Small hot set (leela-like).
        "leela": ((("hot", 28, 1.0),), 0.12, 9),
        # Nearly cache-resident (exchange2-like): very low MPKI.
        "exchange2": ((("hot", 12, 1.0),), 0.08, 12),
        # Mixed stencil + streaming (wrf-like).
        "wrf": (
            (("stencil", 640, 0.5), ("streaming", 1024, 0.5)),
            0.35,
            4,
        ),
        # Large circular loop (bwaves-like): LLC-resident with long reuse.
        "bwaves": ((("circular", 1024, 0.95), ("hot", 16, 0.05)), 0.30, 4),
        # Streaming with a reused tile (fotonik3d-like).
        "fotonik3d": (
            (("streaming", 2048, 0.6), ("circular", 224, 0.4)),
            0.33,
            4,
        ),
    }


_VARIANTS = {"1": 0.75, "2": 1.0, "3": 1.5}


def _build_profiles() -> dict[str, AppProfile]:
    profiles: dict[str, AppProfile] = {}
    for base, (regions, wr, gap) in _archetypes().items():
        for suffix, scale in _VARIANTS.items():
            name = f"{base}.{suffix}"
            scaled = tuple(
                Region(kind, max(4, int(size * scale)), weight)
                for kind, size, weight in regions
            )
            profiles[name] = AppProfile(
                name=name, regions=scaled, write_ratio=wr, mean_gap=gap
            )
    return profiles


_PROFILES = _build_profiles()

#: The 36 profile names (12 archetypes x 3 working-set variants).
ALL_PROFILE_NAMES = tuple(sorted(_PROFILES))


def get_profile(name: str) -> AppProfile:
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; known: {ALL_PROFILE_NAMES}"
        ) from None


def build_trace(
    profile,
    n_accesses: int,
    base_addr: int = 0,
    seed: int = 0,
    name: str | None = None,
) -> CoreTrace:
    """Generate a trace of ``n_accesses`` for one core.

    ``base_addr`` (a block address) places the application in a disjoint
    part of the address space; multiprogrammed mixes give every core its
    own base.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    rng = random.Random(_fnv1a(profile.name, seed, base_addr))
    patterns = []
    region_bases = []
    pc_pools = []
    # Random region placement emulates physical page allocation: distinct
    # processes (and copies of the same binary) do not alias onto the same
    # LLC/directory sets in a real machine.
    cursor = rng.randrange(1 << 14)
    for idx, region in enumerate(profile.regions):
        patterns.append(
            make_pattern(region.kind, region.size, seed=_fnv1a(seed, idx))
        )
        region_bases.append(cursor)
        cursor += region.size + 16 + rng.randrange(512)
        pc_pools.append(
            [
                _fnv1a("pc", profile.name, idx, k) & 0x7FFFFFFF
                for k in range(region.pcs)
            ]
        )
    weights = [r.weight for r in profile.regions]
    total_w = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total_w
        cumulative.append(acc)

    max_gap = max(1, 2 * profile.mean_gap)
    records = []
    for _ in range(n_accesses):
        u = rng.random()
        region_idx = 0
        while cumulative[region_idx] < u and region_idx < len(cumulative) - 1:
            region_idx += 1
        off = patterns[region_idx].next_offset()
        addr = base_addr + region_bases[region_idx] + off
        is_write = rng.random() < profile.write_ratio
        pcs = pc_pools[region_idx]
        pc = pcs[rng.randrange(len(pcs))]
        gap = rng.randrange(max_gap)
        records.append(TraceRecord(gap, addr, is_write, pc))
    return CoreTrace(records, name or profile.name)
