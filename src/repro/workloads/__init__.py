"""Synthetic workload generation and characterisation.

Stand-ins for the paper's SPEC CPU 2017 SimPoint traces, PARSEC / SPEC OMP
multi-threaded applications, and the TPC-E server trace (see DESIGN.md
section 3 for the substitution argument), plus reuse-distance analysis
tooling (:mod:`repro.workloads.analysis`).
"""

from repro.workloads.patterns import (
    CircularPattern,
    HotPattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StreamingPattern,
)
from repro.workloads.profiles import (
    ALL_PROFILE_NAMES,
    AppProfile,
    build_trace,
    get_profile,
)
from repro.workloads.mixes import (
    heterogeneous_mixes,
    homogeneous_mix,
    homogeneous_mixes,
)
from repro.workloads.multithreaded import (
    MT_APP_NAMES,
    multithreaded_workload,
)
from repro.workloads.analysis import (
    TraceProfile,
    format_profile_table,
    profile_trace,
    profile_workload,
    shared_footprint,
)

__all__ = [
    "CircularPattern",
    "HotPattern",
    "PointerChasePattern",
    "RandomPattern",
    "StencilPattern",
    "StreamingPattern",
    "AppProfile",
    "ALL_PROFILE_NAMES",
    "get_profile",
    "build_trace",
    "homogeneous_mix",
    "homogeneous_mixes",
    "heterogeneous_mixes",
    "MT_APP_NAMES",
    "multithreaded_workload",
    "TraceProfile",
    "profile_trace",
    "profile_workload",
    "shared_footprint",
    "format_profile_table",
]
