"""Access-pattern primitives.

Each pattern generates block addresses within a region of the address
space, parameterised by a working-set size in blocks.  The patterns are the
building blocks of the synthetic application profiles and were chosen to
span the regimes that drive the paper's phenomena:

* ``CircularPattern`` -- the cyclic pattern of Section I-A's MIN analysis:
  a loop over more blocks than the LLC associativity makes MIN (and
  Hawkeye, which learns from it) victimise recently used blocks, which are
  exactly the privately cached ones -> inclusion victims.
* ``HotPattern`` -- a private-cache-resident working set; such applications
  are the *victims* of other cores' inclusion victims.
* ``StreamingPattern`` -- no reuse beyond the spatial window; generates LLC
  pressure that evicts other cores' blocks.
* ``RandomPattern`` -- LLC-thrashing background noise.
* ``PointerChasePattern`` -- a permutation walk (mcf/omnetpp-like) with a
  long reuse distance equal to the region size.
* ``StencilPattern`` -- row sweeps with neighbour reuse (scientific codes).
"""

from __future__ import annotations

import random


class Pattern:
    """A stateful address generator over ``size`` blocks."""

    def __init__(self, size: int, seed: int = 0) -> None:
        if size <= 0:
            raise ValueError("pattern size must be positive")
        self.size = size
        self.rng = random.Random(seed)

    def next_offset(self) -> int:
        """The next block offset in [0, size)."""
        raise NotImplementedError


class StreamingPattern(Pattern):
    """Sequential sweep, wrapping at the region end."""

    def __init__(self, size: int, seed: int = 0, stride: int = 1) -> None:
        super().__init__(size, seed)
        self.stride = stride
        self._pos = 0

    def next_offset(self) -> int:
        off = self._pos
        self._pos = (self._pos + self.stride) % self.size
        return off


class CircularPattern(StreamingPattern):
    """Alias of a wrapping sweep; named for the paper's circular access
    pattern (B1, B2, ..., BN, B1, ...) with N above the associativity."""


class HotPattern(Pattern):
    """Skewed random accesses over a small, cache-resident set.

    Approximates a Zipf-like distribution by drawing the minimum of two
    uniforms, which biases toward low offsets without the cost of a true
    Zipf sampler."""

    def next_offset(self) -> int:
        a = self.rng.randrange(self.size)
        b = self.rng.randrange(self.size)
        return min(a, b)


class RandomPattern(Pattern):
    """Uniform random over the region."""

    def next_offset(self) -> int:
        return self.rng.randrange(self.size)


class PointerChasePattern(Pattern):
    """Walk a random permutation cycle: every block is revisited exactly
    once per lap, giving a reuse distance equal to the region size."""

    def __init__(self, size: int, seed: int = 0) -> None:
        super().__init__(size, seed)
        perm = list(range(size))
        self.rng.shuffle(perm)
        # Build a single cycle so the walk covers the whole region.
        self._next = {perm[i]: perm[(i + 1) % size] for i in range(size)}
        self._pos = perm[0]

    def next_offset(self) -> int:
        off = self._pos
        self._pos = self._next[off]
        return off


class StencilPattern(Pattern):
    """Row-major sweep touching vertical neighbours, like a 2D stencil."""

    def __init__(self, size: int, seed: int = 0, row: int = 16) -> None:
        super().__init__(size, seed)
        self.row = max(1, row)
        self._pos = 0
        self._phase = 0

    def next_offset(self) -> int:
        base = self._pos
        if self._phase == 0:
            off = base
        elif self._phase == 1:
            off = (base + self.row) % self.size
        else:
            off = (base - self.row) % self.size
        self._phase += 1
        if self._phase == 3:
            self._phase = 0
            self._pos = (self._pos + 1) % self.size
        return off


PATTERN_FACTORY = {
    "streaming": StreamingPattern,
    "circular": CircularPattern,
    "hot": HotPattern,
    "random": RandomPattern,
    "chase": PointerChasePattern,
    "stencil": StencilPattern,
}


def make_pattern(kind: str, size: int, seed: int = 0) -> Pattern:
    try:
        cls = PATTERN_FACTORY[kind]
    except KeyError:
        raise ValueError(
            f"unknown pattern {kind!r}; known: {sorted(PATTERN_FACTORY)}"
        ) from None
    return cls(size, seed)
