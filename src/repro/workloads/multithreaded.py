"""Synthetic multi-threaded workloads (paper Section IV / V-B).

The paper evaluates canneal, facesim, vips (PARSEC), 316.applu (SPEC OMP
2001) on the 8-core machine, and TPC-E on MySQL on a 128-core machine.  We
generate shared-address-space traces whose first-order characteristics
match what the paper relies on:

* ``canneal`` -- random swaps over a large shared graph: LLC-thrashing,
  low inclusion-victim sensitivity (its blocks rarely live in the L2).
* ``facesim`` / ``vips`` -- streaming frame pipelines with heavy *LLC*
  reuse of shared data but little L2 residency: baseline inclusive and
  non-inclusive perform alike, while QBS/SHARP sacrifice LLC hits and
  lose (the paper's Fig. 17 observation).
* ``applu`` -- blocked circular sweeps over shared arrays plus hot private
  tiles: high sensitivity; ZIV-LikelyDead beats non-inclusive (Fig. 16).
* ``tpce`` -- a scaled server profile: hot shared index blocks, random row
  reads over a large table, and per-thread private working sets; run on
  the scaled many-core configuration.
"""

from __future__ import annotations

import random

from repro.sim.trace import CoreTrace, TraceRecord, Workload
from repro.workloads.patterns import make_pattern
from repro.workloads.profiles import _fnv1a

MT_APP_NAMES = ("canneal", "facesim", "vips", "applu", "tpce")

#: Per-app recipe: (shared regions, private regions, write_ratio, mean_gap)
#: Regions are (kind, size_blocks, weight); weights are normalised across
#: shared+private together.  Private regions are replicated per thread.
_RECIPES = {
    "canneal": (
        (("random", 6144, 0.75),),
        (("hot", 20, 0.25),),
        0.25,
        5,
    ),
    "facesim": (
        (("circular", 896, 0.65),),
        (("streaming", 512, 0.20), ("hot", 24, 0.15)),
        0.30,
        4,
    ),
    "vips": (
        (("circular", 704, 0.55),),
        (("streaming", 768, 0.30), ("hot", 16, 0.15)),
        0.35,
        4,
    ),
    "applu": (
        (("circular", 1152, 0.45),),
        (("circular", 96, 0.40), ("hot", 24, 0.15)),
        0.30,
        5,
    ),
    "tpce": (
        (("hot", 192, 0.30), ("random", 8192, 0.35)),
        (("hot", 48, 0.20), ("streaming", 128, 0.15)),
        0.20,
        6,
    ),
}

_SHARED_BASE = 1 << 22
_PRIVATE_STRIDE = 1 << 24


def multithreaded_workload(
    app: str, cores: int = 8, n_accesses: int = 20000, seed: int = 0
) -> Workload:
    """Build the shared-memory workload ``app`` for ``cores`` threads."""
    try:
        shared_regions, private_regions, write_ratio, mean_gap = _RECIPES[app]
    except KeyError:
        raise ValueError(
            f"unknown multi-threaded app {app!r}; known: {MT_APP_NAMES}"
        ) from None

    # Shared region layout is common to all threads; the randomised
    # placement emulates physical page allocation.
    layout_rng = random.Random(_fnv1a(app, seed, "layout"))
    shared_bases = []
    cursor = _SHARED_BASE + layout_rng.randrange(1 << 14)
    for kind, size, _w in shared_regions:
        shared_bases.append(cursor)
        cursor += size + 64 + layout_rng.randrange(512)

    traces = []
    for core in range(cores):
        rng = random.Random(_fnv1a(app, seed, core))
        patterns = []
        bases = []
        weights = []
        pc_pools = []
        for idx, (kind, size, weight) in enumerate(shared_regions):
            # Threads start at staggered phases of the shared pattern so
            # they are not artificially synchronised.
            pat = make_pattern(kind, size, seed=_fnv1a(app, seed, "sh", idx))
            for _ in range(core * (size // max(1, cores))):
                pat.next_offset()
            patterns.append(pat)
            bases.append(shared_bases[idx])
            weights.append(weight)
            pc_pools.append(
                [_fnv1a("pc", app, "sh", idx, k) & 0x7FFFFFFF for k in range(4)]
            )
        cursor = (core + 1) * _PRIVATE_STRIDE + rng.randrange(1 << 14)
        for idx, (kind, size, weight) in enumerate(private_regions):
            patterns.append(
                make_pattern(kind, size, seed=_fnv1a(app, seed, core, idx))
            )
            bases.append(cursor)
            cursor += size + 64 + rng.randrange(512)
            weights.append(weight)
            pc_pools.append(
                [_fnv1a("pc", app, "pr", idx, k) & 0x7FFFFFFF for k in range(4)]
            )

        total_w = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total_w
            cumulative.append(acc)
        max_gap = max(1, 2 * mean_gap)
        records = []
        for _ in range(n_accesses):
            u = rng.random()
            ridx = 0
            while cumulative[ridx] < u and ridx < len(cumulative) - 1:
                ridx += 1
            off = patterns[ridx].next_offset()
            addr = bases[ridx] + off
            is_write = rng.random() < write_ratio
            pcs = pc_pools[ridx]
            records.append(
                TraceRecord(
                    rng.randrange(max_gap),
                    addr,
                    is_write,
                    pcs[rng.randrange(len(pcs))],
                )
            )
        traces.append(CoreTrace(records, name=f"{app}-t{core}"))
    return Workload(traces, name=f"mt-{app}")
