"""Multi-programmed workload construction (paper Section IV).

* *Homogeneous* mixes run one copy of the same application on every core
  (36 mixes, one per application-input pair).
* *Heterogeneous* mixes draw eight **different** applications per mix; the
  paper builds 36 random mixes in which every application-input pair
  appears an equal number of times (36 x 8 / 36 = 8 appearances each).
  We reproduce that balanced construction with a seeded shuffle plus a
  repair pass that swaps out within-mix duplicates.

Each core's copy lives at a disjoint address base, so multi-programmed
blocks are never shared (the paper's workloads are single-threaded).
"""

from __future__ import annotations

import random

from repro.sim.trace import Workload
from repro.workloads.profiles import ALL_PROFILE_NAMES, build_trace

#: Address-space stride between cores (in blocks): far larger than any
#: profile footprint, so per-core regions never collide.
CORE_ADDR_STRIDE = 1 << 24


def homogeneous_mix(
    app: str, cores: int = 8, n_accesses: int = 20000, seed: int = 0
) -> Workload:
    """All cores run ``app`` (distinct copies, distinct data)."""
    traces = [
        build_trace(
            app,
            n_accesses,
            base_addr=(core + 1) * CORE_ADDR_STRIDE,
            seed=seed * 1009 + core,
            name=app,
        )
        for core in range(cores)
    ]
    return Workload(traces, name=f"homo-{app}")


def homogeneous_mixes(
    cores: int = 8,
    n_accesses: int = 20000,
    seed: int = 0,
    apps: tuple[str, ...] | None = None,
) -> list[Workload]:
    """One homogeneous mix per application-input pair."""
    names = apps if apps is not None else ALL_PROFILE_NAMES
    return [
        homogeneous_mix(app, cores, n_accesses, seed=seed + i)
        for i, app in enumerate(names)
    ]


def heterogeneous_mixes(
    n_mixes: int = 36,
    cores: int = 8,
    n_accesses: int = 20000,
    seed: int = 7,
    apps: tuple[str, ...] | None = None,
) -> list[Workload]:
    """Balanced random mixes of ``cores`` different applications each."""
    names = list(apps if apps is not None else ALL_PROFILE_NAMES)
    rng = random.Random(seed)
    slots = n_mixes * cores
    pool: list[str] = []
    while len(pool) < slots:
        pool.extend(names)
    pool = pool[:slots]
    rng.shuffle(pool)
    groups = [pool[i * cores:(i + 1) * cores] for i in range(n_mixes)]
    _repair_duplicates(groups, rng)
    workloads = []
    for mix_idx, group in enumerate(groups):
        traces = [
            build_trace(
                app,
                n_accesses,
                base_addr=(core + 1) * CORE_ADDR_STRIDE,
                seed=seed * 7919 + mix_idx * 97 + core,
                name=app,
            )
            for core, app in enumerate(group)
        ]
        workloads.append(Workload(traces, name=f"hetero-{mix_idx:02d}"))
    return workloads


def _repair_duplicates(groups: list[list[str]], rng: random.Random) -> None:
    """Swap entries between mixes until no mix holds the same app twice.

    The swap preserves the global multiset of slots, keeping the equal-
    representation property."""
    for _round in range(64):
        fixed = True
        for gi, group in enumerate(groups):
            seen: dict[str, int] = {}
            for si, app in enumerate(group):
                if app in seen:
                    fixed = False
                    # Find another mix that can absorb the duplicate.
                    for gj in rng.sample(range(len(groups)), len(groups)):
                        if gj == gi:
                            continue
                        other = groups[gj]
                        for sj, candidate in enumerate(other):
                            if candidate not in group and app not in other:
                                group[si], other[sj] = candidate, app
                                break
                        else:
                            continue
                        break
                else:
                    seen[app] = si
        if fixed:
            return
