"""Workload characterisation tooling.

Answers the questions a user asks before trusting a synthetic trace as a
stand-in for a real application: how big is the footprint relative to each
cache level, what does the reuse-distance profile look like (the quantity
that decides hit rates under LRU), how write-heavy is it, and how
memory-intensive (accesses per kilo-instruction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import CoreTrace, Workload


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one core trace."""

    name: str
    accesses: int
    instructions: int
    footprint: int
    write_ratio: float
    apki: float  # accesses per kilo-instruction
    distinct_pcs: int
    reuse_distance_histogram: dict  # log2-bucketed stack distances
    cold_fraction: float  # first-touch accesses

    def reuse_fraction_within(self, capacity: int) -> float:
        """Fraction of non-cold accesses whose LRU stack distance is below
        ``capacity`` -- an upper bound on a ``capacity``-block fully
        associative LRU cache's hit rate."""
        total = sum(self.reuse_distance_histogram.values())
        if not total:
            return 0.0
        within = sum(
            n
            for bucket, n in self.reuse_distance_histogram.items()
            if (1 << bucket) < capacity
        )
        return within / total


def reuse_distances(addrs) -> tuple[dict, int]:
    """LRU stack distances, log2-bucketed; returns (histogram, cold count).

    Uses the classic stack algorithm over a recency list with a dict
    position index; O(n * d) worst case but fine at trace scale."""
    stack: list[int] = []  # most recent last
    position: dict[int, int] = {}
    histogram: dict[int, int] = {}
    cold = 0
    for addr in addrs:
        pos = position.get(addr)
        if pos is None:
            cold += 1
        else:
            distance = len(stack) - 1 - pos
            bucket = distance.bit_length() - 1 if distance > 0 else 0
            histogram[bucket] = histogram.get(bucket, 0) + 1
            stack.pop(pos)
            for moved in range(pos, len(stack)):
                position[stack[moved]] = moved
        position[addr] = len(stack)
        stack.append(addr)
    return histogram, cold


def profile_trace(trace: CoreTrace) -> TraceProfile:
    """Characterise one core trace."""
    addrs = [r.addr for r in trace]
    histogram, cold = reuse_distances(addrs)
    writes = sum(1 for r in trace if r.is_write)
    instructions = trace.instructions
    return TraceProfile(
        name=trace.name,
        accesses=len(trace),
        instructions=instructions,
        footprint=trace.footprint(),
        write_ratio=writes / len(trace) if len(trace) else 0.0,
        apki=1000.0 * len(trace) / instructions if instructions else 0.0,
        distinct_pcs=len({r.pc for r in trace}),
        reuse_distance_histogram=histogram,
        cold_fraction=cold / len(trace) if len(trace) else 0.0,
    )


def profile_workload(workload: Workload) -> list[TraceProfile]:
    return [profile_trace(t) for t in workload]


def shared_footprint(workload: Workload) -> int:
    """Blocks touched by at least two cores (0 for multiprogrammed)."""
    seen: dict[int, int] = {}
    for trace in workload:
        for addr in {r.addr for r in trace}:
            seen[addr] = seen.get(addr, 0) + 1
    return sum(1 for n in seen.values() if n > 1)


def format_profile_table(profiles: list[TraceProfile]) -> str:
    header = (
        f"{'trace':16s} {'accesses':>9s} {'footprint':>9s} {'APKI':>7s} "
        f"{'writes':>7s} {'cold':>6s} {'pcs':>4s}"
    )
    lines = [header, "-" * len(header)]
    for p in profiles:
        lines.append(
            f"{p.name:16s} {p.accesses:>9d} {p.footprint:>9d} "
            f"{p.apki:>7.1f} {p.write_ratio:>7.2f} {p.cold_fraction:>6.2f} "
            f"{p.distinct_pcs:>4d}"
        )
    return "\n".join(lines)
