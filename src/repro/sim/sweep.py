"""Parameter-sweep utility.

A thin, deterministic grid runner over (configuration, scheme, policy)
combinations that returns tidy rows -- the plumbing every study in
``examples/`` and ``benchmarks/`` otherwise reimplements.  Unlike the
experiment modules (which mirror specific paper figures), this is the
general-purpose API a downstream user reaches for first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.params import SystemConfig
from repro.sim.engine import SimResult, Simulation
from repro.sim.metrics import geomean, mix_speedup
from repro.sim.trace import Workload


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid."""

    label: str
    config: SystemConfig
    scheme: str
    policy: str = "lru"


@dataclass
class SweepRow:
    """Aggregated outcome of one sweep point over all workloads."""

    label: str
    scheme: str
    policy: str
    speedup: float
    speedup_min: float
    speedup_max: float
    llc_misses: int
    l2_misses: int
    inclusion_victims: int
    relocations: int
    results: list[SimResult]


def run_sweep(
    points: Sequence[SweepPoint],
    workloads: Sequence[Workload],
    baseline: Optional[SweepPoint] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> list[SweepRow]:
    """Run every point over every workload.

    ``baseline`` defaults to the first point; per-workload speedups are
    computed against the baseline's run of the same workload.
    """
    from repro.hierarchy.cmp import CacheHierarchy
    from repro.schemes import make_scheme

    if not points:
        raise ValueError("sweep needs at least one point")
    if not workloads:
        raise ValueError("sweep needs at least one workload")
    baseline = baseline or points[0]

    def run_point(point: SweepPoint) -> list[SimResult]:
        out = []
        for wl in workloads:
            if progress is not None:
                progress(f"{point.label}: {wl.name}")
            hierarchy = CacheHierarchy(
                point.config, make_scheme(point.scheme),
                llc_policy=point.policy,
            )
            out.append(
                Simulation(
                    hierarchy, wl, llc_policy_name=point.policy
                ).run()
            )
        return out

    base_runs = run_point(baseline)
    rows = []
    for point in points:
        runs = (
            base_runs
            if point == baseline
            else run_point(point)
        )
        speedups = [mix_speedup(b, r) for b, r in zip(base_runs, runs)]
        rows.append(
            SweepRow(
                label=point.label,
                scheme=point.scheme,
                policy=point.policy,
                speedup=geomean(speedups),
                speedup_min=min(speedups),
                speedup_max=max(speedups),
                llc_misses=sum(r.stats.llc_misses for r in runs),
                l2_misses=sum(r.stats.l2_misses for r in runs),
                inclusion_victims=sum(
                    r.stats.inclusion_victims_llc for r in runs
                ),
                relocations=sum(r.stats.relocations for r in runs),
                results=runs,
            )
        )
    return rows


def format_sweep(rows: Iterable[SweepRow]) -> str:
    header = (
        f"{'point':24s} {'speedup':>8s} {'min':>6s} {'max':>6s} "
        f"{'llc_miss':>9s} {'incl':>7s} {'reloc':>7s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.label:24s} {r.speedup:>8.3f} {r.speedup_min:>6.3f} "
            f"{r.speedup_max:>6.3f} {r.llc_misses:>9d} "
            f"{r.inclusion_victims:>7d} {r.relocations:>7d}"
        )
    return "\n".join(lines)
