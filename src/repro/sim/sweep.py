"""Parameter-sweep utility.

A thin, deterministic grid runner over (configuration, scheme, policy)
combinations that returns tidy rows -- the plumbing every study in
``examples/`` and ``benchmarks/`` otherwise reimplements.  Unlike the
experiment modules (which mirror specific paper figures), this is the
general-purpose API a downstream user reaches for first.

Runs are resolved through :func:`repro.sim.parallel.run_many`: pass
``jobs=N`` to fan the grid out over ``N`` worker processes (``jobs<=0``
means one per CPU), with results merged back in grid order so the rows are
identical to a serial sweep.  Points are identified by their *recipe key*
(a content hash of configuration + scheme + policy + workload), so two
points that describe the same machine share one simulation regardless of
their labels -- including the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.params import SystemConfig
from repro.sim.engine import SimResult
from repro.sim.metrics import geomean, mix_speedup
from repro.sim.parallel import RunRecipe, run_many
from repro.sim.trace import Workload


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid."""

    label: str
    config: SystemConfig
    scheme: str
    policy: str = "lru"

    def recipe(self, workload: Workload) -> RunRecipe:
        # Resolve REPRO_AUDIT here, at recipe-construction time in the
        # submitting process, exactly like make_recipe: audit settings are
        # part of the cache key and must never be re-read in a worker.
        from repro.sim.audit import resolve_audit

        config = self.config
        audit_params = resolve_audit(None, config.audit)
        if audit_params != config.audit:
            config = config.replace(audit=audit_params)
        return RunRecipe(
            workload=workload,
            scheme=self.scheme,
            config=config,
            policy=self.policy,
        )


@dataclass
class SweepRow:
    """Aggregated outcome of one sweep point over all workloads."""

    label: str
    scheme: str
    policy: str
    speedup: float
    speedup_min: float
    speedup_max: float
    llc_misses: int
    l2_misses: int
    inclusion_victims: int
    relocations: int
    results: list[SimResult]


def run_sweep(
    points: Sequence[SweepPoint],
    workloads: Sequence[Workload],
    baseline: Optional[SweepPoint] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
) -> list[SweepRow]:
    """Run every point over every workload.

    ``baseline`` defaults to the first point; per-workload speedups are
    computed against the baseline's run of the same workload.  Any point
    whose recipe matches the baseline's (by content, not by object or
    label identity) reuses the baseline runs instead of re-simulating.
    ``jobs`` fans the whole grid out over worker processes.
    """
    if not points:
        raise ValueError("sweep needs at least one point")
    if not workloads:
        raise ValueError("sweep needs at least one workload")
    baseline = baseline or points[0]

    # One flat submission: baseline first, then every point x workload.
    # run_many dedups by recipe key, so a point sharing the baseline's
    # recipe (or another point's) costs nothing extra.
    recipes: list[RunRecipe] = [baseline.recipe(wl) for wl in workloads]
    labels: list[str] = [f"{baseline.label}: {wl.name}" for wl in workloads]
    for point in points:
        for wl in workloads:
            recipes.append(point.recipe(wl))
            labels.append(f"{point.label}: {wl.name}")
    results = run_many(recipes, jobs=jobs, progress=progress, labels=labels)

    n = len(workloads)
    base_runs = results[:n]
    rows = []
    for i, point in enumerate(points):
        runs = results[n * (i + 1):n * (i + 2)]
        speedups = [mix_speedup(b, r) for b, r in zip(base_runs, runs)]
        rows.append(
            SweepRow(
                label=point.label,
                scheme=point.scheme,
                policy=point.policy,
                speedup=geomean(speedups),
                speedup_min=min(speedups),
                speedup_max=max(speedups),
                llc_misses=sum(r.stats.llc_misses for r in runs),
                l2_misses=sum(r.stats.l2_misses for r in runs),
                inclusion_victims=sum(
                    r.stats.inclusion_victims_llc for r in runs
                ),
                relocations=sum(r.stats.relocations for r in runs),
                results=runs,
            )
        )
    return rows


def format_sweep(rows: Iterable[SweepRow]) -> str:
    header = (
        f"{'point':24s} {'speedup':>8s} {'min':>6s} {'max':>6s} "
        f"{'llc_miss':>9s} {'incl':>7s} {'reloc':>7s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.label:24s} {r.speedup:>8.3f} {r.speedup_min:>6.3f} "
            f"{r.speedup_max:>6.3f} {r.llc_misses:>9d} "
            f"{r.inclusion_victims:>7d} {r.relocations:>7d}"
        )
    return "\n".join(lines)
