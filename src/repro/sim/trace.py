"""Trace containers.

A *core trace* is a sequence of memory accesses annotated with the number
of non-memory instructions since the previous access (the "gap"), the block
address, a read/write flag, and the PC of the access (consumed by Hawkeye's
predictor).  Traces stand in for the paper's SimPoint segments of SPEC CPU
2017 / PARSEC / TPC-E executions.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence


class TraceRecord:
    """One memory access of one core."""

    __slots__ = ("gap", "addr", "is_write", "pc")

    def __init__(self, gap: int, addr: int, is_write: bool, pc: int) -> None:
        self.gap = gap
        self.addr = addr
        self.is_write = is_write
        self.pc = pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rw = "W" if self.is_write else "R"
        return f"<{rw} {self.addr:#x} gap={self.gap} pc={self.pc:#x}>"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceRecord)
            and self.gap == other.gap
            and self.addr == other.addr
            and self.is_write == other.is_write
            and self.pc == other.pc
        )


class CoreTrace:
    """The access stream of one core plus bookkeeping."""

    def __init__(self, records: Sequence[TraceRecord], name: str = "app") -> None:
        self.records = list(records)
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, i: int) -> TraceRecord:
        return self.records[i]

    @property
    def instructions(self) -> int:
        """Total dynamic instructions represented (gaps + the accesses)."""
        return sum(r.gap + 1 for r in self.records)

    def footprint(self) -> int:
        """Number of distinct blocks touched."""
        return len({r.addr for r in self.records})

    def fingerprint(self) -> str:
        """Content hash of the trace (name + every record).

        Stable across processes and sessions -- the building block of the
        persistent result-cache keys in :mod:`repro.sim.parallel`."""
        h = hashlib.sha256()
        h.update(self.name.encode())
        update = h.update
        for r in self.records:
            update(b"%d,%d,%d,%d;" % (r.gap, r.addr, r.is_write, r.pc))
        return h.hexdigest()


class Workload:
    """A multi-core workload: one trace per core."""

    def __init__(self, traces: Sequence[CoreTrace], name: str = "mix") -> None:
        if not traces:
            raise ValueError("a workload needs at least one core trace")
        self.traces = list(traces)
        self.name = name

    @property
    def cores(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[CoreTrace]:
        return iter(self.traces)

    def __getitem__(self, core: int) -> CoreTrace:
        return self.traces[core]

    def total_accesses(self) -> int:
        return sum(len(t) for t in self.traces)

    def fingerprint(self) -> str:
        """Content hash of the whole workload (cached after first call).

        Identifies the workload in persistent result-cache keys: two
        workloads with identical names and records hash identically no
        matter which process generated them."""
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            h = hashlib.sha256()
            h.update(self.name.encode())
            for t in self.traces:
                h.update(t.fingerprint().encode())
            fp = self._fingerprint = h.hexdigest()
        return fp

    def describe(self) -> str:
        apps = ", ".join(t.name for t in self.traces)
        return f"{self.name}[{apps}]"


def lockstep_stream(workload: Workload) -> list[int]:
    """Canonical global access stream: round-robin by access index.

    This is the fixed interleaving used to define the Belady MIN oracle
    (paper footnote 2: MIN consumes the global L1 access stream, which is
    independent of LLC policy for a given schedule).  The engine's
    ``lockstep`` scheduling mode replays accesses in exactly this order.
    """

    streams = [t.records for t in workload]
    out: list[int] = []
    longest = max(len(s) for s in streams)
    for i in range(longest):
        for s in streams:
            if i < len(s):
                out.append(s[i].addr)
    return out


def interleave_records(
    workload: Workload,
) -> Iterator[tuple[int, TraceRecord]]:
    """(core, record) pairs in the canonical lock-step order."""
    streams = [t.records for t in workload]
    longest = max(len(s) for s in streams)
    for i in range(longest):
        for core, s in enumerate(streams):
            if i < len(s):
                yield core, s[i]
