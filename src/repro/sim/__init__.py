"""Simulation driver: traces, engine, statistics, metrics, tooling."""

from repro.sim.trace import TraceRecord, CoreTrace, Workload, lockstep_stream
from repro.sim.stats import SimStats, CoreStats
from repro.sim.engine import Simulation, SimResult
from repro.sim.metrics import (
    geomean,
    normalized_speedups,
    speedup_summary,
    weighted_speedup,
)
from repro.sim.parallel import (
    RunRecipe,
    cache_info,
    clear_result_cache,
    make_recipe,
    run_many,
)
from repro.sim.report import compare_results, describe_result
from repro.sim.sweep import SweepPoint, SweepRow, format_sweep, run_sweep
from repro.sim.telemetry import (
    ProgressPrinter,
    RunProgress,
    TelemetryCollector,
    TelemetryEvent,
    TelemetryResult,
    TimeSeries,
    events_from_jsonl,
    events_to_jsonl,
    parse_telemetry_spec,
    resolve_telemetry,
)
from repro.sim.tracefile import load_workload, save_workload

__all__ = [
    "TraceRecord",
    "CoreTrace",
    "Workload",
    "lockstep_stream",
    "SimStats",
    "CoreStats",
    "Simulation",
    "SimResult",
    "geomean",
    "normalized_speedups",
    "speedup_summary",
    "weighted_speedup",
    "RunRecipe",
    "make_recipe",
    "run_many",
    "cache_info",
    "clear_result_cache",
    "describe_result",
    "compare_results",
    "SweepPoint",
    "SweepRow",
    "run_sweep",
    "format_sweep",
    "save_workload",
    "load_workload",
    "TelemetryCollector",
    "TelemetryEvent",
    "TelemetryResult",
    "TimeSeries",
    "RunProgress",
    "ProgressPrinter",
    "parse_telemetry_spec",
    "resolve_telemetry",
    "events_to_jsonl",
    "events_from_jsonl",
]
