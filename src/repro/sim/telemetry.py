"""Always-available telemetry: interval time series, event tracing, progress.

The end-of-run aggregates in :class:`~repro.sim.stats.SimStats` flatten
exactly the dynamics the paper argues about -- inter-relocation intervals
(Fig. 18), the CHAR threshold ``tau = 1/2^d`` adapting through the TRBV
(III-D6), property-vector occupancy over time.  This module makes those
dynamics first-class data, in three layers:

* **Interval sampling** -- every ``interval`` accesses the collector
  snapshots the *delta* of every scalar :class:`SimStats` counter (plus
  the per-core counters, aggregated) and a set of instantaneous gauges
  (relocation-FIFO depth, per-property ``emptyPV`` state, the live CHAR
  ``d``/``tau``, directory occupancy) into a ring-buffered
  :class:`TimeSeries`.  A final tail sample is always taken at end of
  run, so -- as long as the ring did not overflow -- summing any delta
  column reproduces the end-of-run counter exactly.

* **Structured event tracing** -- opt-in discrete events (relocations
  with their ``<bank, set, way>`` tuple and chosen property,
  re-relocations, cross-bank fallbacks, back-invalidations with their
  trigger, directory evictions, ``tau`` adjustments) with category and
  severity filtering, round-trippable through JSONL
  (:func:`events_to_jsonl` / :func:`events_from_jsonl`).

* **Run progress** -- :class:`RunProgress` heartbeats emitted by
  :func:`repro.sim.parallel.run_many` (accesses/second, ETA, cache
  hit/miss provenance), rendered by :class:`ProgressPrinter` behind the
  ``--progress`` CLI flag.

Settings travel as :class:`repro.params.TelemetryParams` inside
:class:`~repro.params.SystemConfig`, so they are part of the parallel
runner's recipe cache key (like ``AuditParams``); the compact spec string
(``--telemetry=250,events=relocation+char`` on the CLI,
``REPRO_TELEMETRY=1000`` in the environment) is parsed by
:func:`parse_telemetry_spec`.  When telemetry is disabled the engine's
hot loop pays exactly one predicate check per access and nothing else.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, TextIO

from repro.params import (
    TELEMETRY_CATEGORIES,
    TELEMETRY_SEVERITIES,
    ConfigError,
    TelemetryParams,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hierarchy.cmp import CacheHierarchy

#: Environment variable holding a default telemetry spec.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

_OFF_TOKENS = ("off", "none", "false", "no", "disabled")

#: kind -> (category, severity) for every traced event type.
EVENT_KINDS = {
    "relocation": ("relocation", "info"),
    "re_relocation": ("relocation", "info"),
    "cross_bank_fallback": ("relocation", "warn"),
    "back_invalidation": ("coherence", "info"),
    "directory_eviction": ("directory", "info"),
    "tau_decrement": ("char", "info"),
    "tau_reset": ("char", "debug"),
}

_SEVERITY_RANK = {name: i for i, name in enumerate(TELEMETRY_SEVERITIES)}


# ---------------------------------------------------------------------------
# Spec parsing / resolution
# ---------------------------------------------------------------------------


def parse_telemetry_spec(spec: Optional[str]) -> TelemetryParams:
    """Parse a compact telemetry spec string into :class:`TelemetryParams`.

    Comma-separated tokens:

    * ``on`` (or empty) -- enable with defaults (sample every 1000th access)
    * an integer ``N`` -- sampling interval in accesses
    * ``ring=N`` -- ring-buffer capacity (samples retained)
    * ``events`` / ``events=all`` -- trace every event category
    * ``events=relocation+char`` -- trace a ``+``-joined category subset
    * ``maxevents=N`` -- retained-event cap
    * ``severity=debug|info|warn`` -- minimum traced severity
    * ``off`` -- telemetry disabled

    Examples: ``"250"``, ``"1000,events=relocation"``,
    ``"100,ring=8192,events=all,severity=debug"``.
    """
    if spec is None:
        return TelemetryParams()
    kwargs: dict = {"enabled": True}
    for raw in spec.split(","):
        token = raw.strip().lower()
        if not token or token == "on":
            continue
        if token in _OFF_TOKENS:
            kwargs["enabled"] = False
        elif token.lstrip("+").isdigit():
            kwargs["interval"] = int(token)
        elif token.startswith("ring="):
            kwargs["ring_capacity"] = _int_value(token)
        elif token.startswith("maxevents="):
            kwargs["max_events"] = _int_value(token)
        elif token.startswith("severity="):
            kwargs["min_severity"] = token.split("=", 1)[1]
        elif token == "events":
            kwargs["events"] = "all"
        elif token.startswith("events="):
            kwargs["events"] = token.split("=", 1)[1]
        else:
            raise ConfigError(
                f"bad telemetry spec token {token!r}; expected 'on', 'off', "
                f"an integer interval, 'ring=N', 'maxevents=N', "
                f"'severity=LEVEL' or 'events[=cat+cat]'"
            )
    return TelemetryParams(**kwargs)


def _int_value(token: str) -> int:
    name, _, value = token.partition("=")
    if not value.isdigit():
        raise ConfigError(f"telemetry {name} wants an integer, got {value!r}")
    return int(value)


def telemetry_params_from_env() -> Optional[TelemetryParams]:
    """:class:`TelemetryParams` from ``REPRO_TELEMETRY``, or None when the
    variable is unset/empty."""
    spec = os.environ.get(TELEMETRY_ENV_VAR)
    if spec is None or not spec.strip():
        return None
    return parse_telemetry_spec(spec)


def resolve_telemetry(
    explicit, config_telemetry: Optional[TelemetryParams] = None
) -> TelemetryParams:
    """Resolve the telemetry settings for one run.

    Precedence mirrors :func:`repro.sim.audit.resolve_audit`: an explicit
    argument (a :class:`TelemetryParams` or a spec string) wins; else the
    ``REPRO_TELEMETRY`` environment variable; else the configuration's own
    ``telemetry`` field (default: disabled)."""
    if explicit is not None:
        if isinstance(explicit, TelemetryParams):
            return explicit
        if isinstance(explicit, str):
            return parse_telemetry_spec(explicit)
        raise TypeError(
            f"telemetry must be TelemetryParams or a spec string, "
            f"got {type(explicit).__name__}"
        )
    env = telemetry_params_from_env()
    if env is not None:
        return env
    return (
        config_telemetry if config_telemetry is not None else TelemetryParams()
    )


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetryEvent:
    """One traced discrete event.

    ``access_index`` is the global position of the access during which the
    event occurred (-1 when outside any access).  ``data`` carries the
    kind-specific payload -- see ``docs/OBSERVABILITY.md`` for the schema
    of every kind."""

    kind: str
    category: str
    severity: str
    access_index: int
    data: dict

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "category": self.category,
            "severity": self.severity,
            "access_index": self.access_index,
            **self.data,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TelemetryEvent":
        d = dict(d)
        return cls(
            kind=d.pop("kind"),
            category=d.pop("category"),
            severity=d.pop("severity"),
            access_index=d.pop("access_index"),
            data=d,
        )


def events_to_jsonl(events) -> str:
    """Serialise events to JSONL (one JSON object per line)."""
    return "".join(
        json.dumps(e.to_dict(), sort_keys=True) + "\n" for e in events
    )


def events_from_jsonl(text: str) -> list[TelemetryEvent]:
    """Parse a JSONL event stream back into :class:`TelemetryEvent`\\ s."""
    return [
        TelemetryEvent.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def write_events_jsonl(events, path) -> int:
    """Write events to a JSONL file; returns the number written."""
    events = list(events)
    with open(path, "w") as fh:
        fh.write(events_to_jsonl(events))
    return len(events)


# ---------------------------------------------------------------------------
# Time series
# ---------------------------------------------------------------------------


class TimeSeries:
    """A fixed-capacity ring of samples over named columns.

    Column 0 is always ``access_index`` (accesses completed when the
    sample was taken); delta columns carry the change of the matching
    counter since the previous sample; gauge columns carry instantaneous
    values.  When the ring is full the oldest sample is dropped and
    ``dropped`` incremented -- totals over a column are then lower bounds.
    """

    def __init__(self, columns: list, capacity: int) -> None:
        self.columns = list(columns)
        self.capacity = capacity
        self._samples: deque = deque(maxlen=capacity)
        self.dropped = 0
        self._index = {name: i for i, name in enumerate(self.columns)}

    def append(self, sample: tuple) -> None:
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append(sample)

    @property
    def samples(self) -> list:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def column(self, name: str) -> list:
        """All values of one column, oldest first."""
        i = self._index[name]
        return [s[i] for s in self._samples]

    def total(self, name: str) -> int:
        """Sum of one (delta) column over the retained samples."""
        return sum(self.column(name))

    def to_dict(self) -> dict:
        return {
            "columns": self.columns,
            "samples": [list(s) for s in self._samples],
            "dropped": self.dropped,
            "capacity": self.capacity,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TimeSeries":
        ts = cls(d["columns"], d["capacity"])
        for s in d["samples"]:
            ts.append(tuple(s))
        ts.dropped = d.get("dropped", 0)
        return ts


# ---------------------------------------------------------------------------
# The per-run result
# ---------------------------------------------------------------------------


@dataclass
class TelemetryResult:
    """Everything one run's telemetry collected (picklable, cached with
    the :class:`~repro.sim.engine.SimResult`)."""

    params: TelemetryParams
    series: TimeSeries
    events: list = field(default_factory=list)
    dropped_events: int = 0

    def summary(self) -> str:
        lines = [
            f"telemetry: {len(self.series)} sample(s) at interval "
            f"{self.params.interval}"
            + (f" ({self.series.dropped} dropped)" if self.series.dropped
               else "")
        ]
        if self.params.event_categories():
            lines.append(
                f"telemetry: {len(self.events)} event(s) traced"
                + (f" ({self.dropped_events} dropped)"
                   if self.dropped_events else "")
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The collector driven by the simulation engine
# ---------------------------------------------------------------------------

#: SimStats scalar counters sampled as deltas, in column order.
SIMSTATS_COUNTERS = (
    "llc_hits",
    "llc_misses",
    "llc_fills",
    "llc_writebacks_in",
    "llc_writebacks_out",
    "relocated_hits",
    "back_invalidations_llc",
    "inclusion_victims_llc",
    "back_invalidations_dir",
    "inclusion_victims_dir",
    "coherence_invalidations",
    "eviction_notices",
    "directory_evictions",
    "directory_spills",
    "relocations",
    "relocations_cross_bank",
    "relocations_rechained",
    "relocation_same_set",
    "qbs_retries",
    "qbs_failures",
    "sharp_alarms",
    "prefetches_issued",
    "prefetch_fills",
    "prefetch_useful",
    "dram_reads",
    "dram_writes",
)

#: CoreStats counters sampled as deltas, summed over the cores.
CORESTATS_COUNTERS = (
    "accesses",
    "l1_hits",
    "l1_misses",
    "l2_hits",
    "l2_misses",
)


class TelemetryCollector:
    """Samples counters/gauges and collects events over one simulation.

    The engine calls :meth:`on_access` *before* each access with the
    access's global position, so event stamps and sample boundaries agree:
    a sample taken at index ``k`` reflects exactly ``k`` completed
    accesses.  :meth:`finalize` takes the tail sample and detaches the
    collector from the hierarchy."""

    def __init__(self, hierarchy: "CacheHierarchy",
                 params: TelemetryParams) -> None:
        self.hierarchy = hierarchy
        self.params = params
        self.access_index = -1
        self._countdown = params.interval + 1
        self._categories = frozenset(params.event_categories())
        self._min_rank = _SEVERITY_RANK[params.min_severity]
        self.events: list[TelemetryEvent] = []
        self.dropped_events = 0

        self._gauge_names = self._discover_gauges(hierarchy)
        columns = (
            ["access_index"]
            + list(SIMSTATS_COUNTERS)
            + list(CORESTATS_COUNTERS)
            + self._gauge_names
        )
        self.series = TimeSeries(columns, params.ring_capacity)
        self._last_counters = self._snapshot_counters()
        self._finalized = False

    # -- binding -----------------------------------------------------------

    def bind(self) -> None:
        """Attach to the hierarchy so event-emission sites (scheme, CHAR,
        coherence paths) can reach the collector."""
        self.hierarchy.telemetry = self
        if self.hierarchy.char is not None:
            self.hierarchy.char.telemetry = self

    def unbind(self) -> None:
        self.hierarchy.telemetry = None
        if self.hierarchy.char is not None:
            self.hierarchy.char.telemetry = None

    # -- sampling ----------------------------------------------------------

    def on_access(self, access_index: int) -> None:
        """Pre-access hook: stamp the index; sample on interval boundaries."""
        self.access_index = access_index
        self._countdown -= 1
        if self._countdown == 0:
            self._countdown = self.params.interval
            self._sample(access_index)

    def _snapshot_counters(self) -> tuple:
        s = self.hierarchy.stats
        cores = s.cores
        return tuple(
            [getattr(s, name) for name in SIMSTATS_COUNTERS]
            + [
                sum(getattr(c, name) for c in cores)
                for name in CORESTATS_COUNTERS
            ]
        )

    def _discover_gauges(self, h: "CacheHierarchy") -> list:
        names = ["dir_occupancy"]
        scheme = h.scheme
        if getattr(scheme, "reloc", None) is not None:
            names.append("reloc_fifo_depth")
        tracker = getattr(scheme, "tracker", None)
        if tracker is not None:
            names += [f"empty_pv:{prop}" for prop in tracker.properties]
        if h.char is not None:
            names.append("char_d_min")
        return names

    def _gauges(self) -> list:
        h = self.hierarchy
        out = [h.directory.tracked_count()]
        scheme = h.scheme
        reloc = getattr(scheme, "reloc", None)
        if reloc is not None:
            out.append(
                max(len(st.pending_departures) for st in reloc._state)
            )
        tracker = getattr(scheme, "tracker", None)
        if tracker is not None:
            for prop in tracker.properties:
                out.append(
                    sum(
                        1
                        for bank_pvs in tracker.pvs
                        if bank_pvs[prop].empty
                    )
                )
        if h.char is not None:
            out.append(min(bs.d for bs in h.char.bank_state))
        return out

    def _sample(self, access_index: int) -> None:
        current = self._snapshot_counters()
        deltas = [a - b for a, b in zip(current, self._last_counters)]
        self._last_counters = current
        self.series.append(tuple([access_index] + deltas + self._gauges()))

    # -- event tracing -----------------------------------------------------

    def emit(self, kind: str, **data) -> None:
        """Record one event (filtered by category and severity)."""
        category, severity = EVENT_KINDS[kind]
        if category not in self._categories:
            return
        if _SEVERITY_RANK[severity] < self._min_rank:
            return
        if len(self.events) >= self.params.max_events:
            self.dropped_events += 1
            return
        self.events.append(TelemetryEvent(
            kind=kind,
            category=category,
            severity=severity,
            access_index=self.access_index,
            data=data,
        ))

    # -- finalisation ------------------------------------------------------

    def finalize(self, total_accesses: int) -> TelemetryResult:
        """Tail sample (so delta sums match end-of-run counters), detach,
        and return the picklable result."""
        if not self._finalized:
            self._finalized = True
            self._sample(total_accesses)
            self.unbind()
        return TelemetryResult(
            params=self.params,
            series=self.series,
            events=self.events,
            dropped_events=self.dropped_events,
        )


# ---------------------------------------------------------------------------
# Run progress heartbeats (consumed by repro.sim.parallel.run_many)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamProgress:
    """One chunk-boundary heartbeat from a streamed/checkpointed run.

    Emitted by :meth:`repro.sim.engine.Simulation.run` through its
    ``progress`` callback every ``checkpoint_every`` accesses.  ``chunk``
    is the boundary index just completed (``accesses_done //
    checkpoint_every``); ``checkpointed`` says whether state was saved
    at this boundary.  ``label`` names the workload and ``engine`` the
    hierarchy engine (``"object"``/``"fast"``) so interleaved heartbeat
    lines from concurrent runs stay attributable."""

    accesses_done: int
    total_accesses: int
    chunk: int
    chunks: int
    checkpointed: bool
    label: str = ""
    engine: str = ""

    @property
    def fraction(self) -> float:
        return (
            self.accesses_done / self.total_accesses
            if self.total_accesses else 1.0
        )


@dataclass(frozen=True)
class RunProgress:
    """One heartbeat from :func:`repro.sim.parallel.run_many`.

    ``source`` says where the just-resolved recipe came from (``"memo"``,
    ``"disk"`` or ``"run"``); the ``from_*``/``simulated`` counters
    accumulate that provenance.  ``accesses_per_s`` covers freshly
    simulated runs only (cache hits would inflate it), and ``eta_s`` is
    None until at least one fresh simulation has completed.  ``key`` is
    the resolved recipe's full cache key (``short_key`` truncates it for
    display) and ``engine`` the configured hierarchy engine, so
    interleaved heartbeats from different fleets stay attributable and
    cross-reference the run ledger."""

    completed: int
    total: int
    label: str
    source: str
    from_memo: int
    from_disk: int
    simulated: int
    elapsed_s: float
    accesses: int
    accesses_per_s: float
    eta_s: Optional[float]
    key: str = ""
    engine: str = ""

    @property
    def short_key(self) -> str:
        """First 8 hex digits of the recipe key (``"--------"`` when
        unknown) -- same abbreviation ``repro obs ls`` prints."""
        return self.key[:8] if self.key else "--------"


class ProgressTracker:
    """Builds successive :class:`RunProgress` heartbeats for one
    ``run_many`` invocation."""

    def __init__(self, total: int, jobs: int = 1) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.completed = 0
        self.from_memo = 0
        self.from_disk = 0
        self.simulated = 0
        self.accesses = 0
        # Wall-clock reads below are heartbeat-only: they feed the
        # ProgressPrinter line, never a SimResult, so the result cache
        # stays deterministic.
        self._t0 = time.perf_counter()  # repro-lint: ignore[determinism]
        self._sim_t0: Optional[float] = None
        self._sim_elapsed = 0.0

    def advance(self, label: str, source: str, result,
                key: str = "", engine: str = "") -> RunProgress:
        self.completed += 1
        if source == "memo":
            self.from_memo += 1
        elif source == "disk":
            self.from_disk += 1
        else:
            if self._sim_t0 is None:
                self._sim_t0 = self._t0
            self.simulated += 1
            self._sim_elapsed = (
                time.perf_counter()  # repro-lint: ignore[determinism]
                - self._sim_t0
            )
            if result is not None:
                self.accesses += result.stats.total_accesses
        elapsed = (
            time.perf_counter() - self._t0  # repro-lint: ignore[determinism]
        )
        rate = (
            self.accesses / self._sim_elapsed
            if self.simulated and self._sim_elapsed > 0
            else 0.0
        )
        remaining = self.total - self.completed
        eta = None
        if self.simulated and self._sim_elapsed > 0:
            per_run = self._sim_elapsed / self.simulated
            # Pessimistic: assume every remaining recipe is a cache miss.
            eta = remaining * per_run / self.jobs
        return RunProgress(
            completed=self.completed,
            total=self.total,
            label=label,
            source=source,
            from_memo=self.from_memo,
            from_disk=self.from_disk,
            simulated=self.simulated,
            elapsed_s=elapsed,
            accesses=self.accesses,
            accesses_per_s=rate,
            eta_s=eta,
            key=key,
            engine=engine,
        )


class ProgressPrinter:
    """Renders heartbeats as a single self-overwriting status line.

    The default stream is stderr so progress never corrupts piped table
    output.  Call the instance with each :class:`RunProgress`; call
    :meth:`done` once at the end to terminate the line."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._last_len = 0

    def __call__(self, p: RunProgress) -> None:
        pct = 100.0 * p.completed / p.total if p.total else 100.0
        parts = [
            f"[{p.completed}/{p.total}] {pct:3.0f}%",
            f"sim {p.simulated}",
            f"memo {p.from_memo}",
            f"disk {p.from_disk}",
        ]
        if p.accesses_per_s:
            parts.append(f"{p.accesses_per_s / 1000.0:.0f}k acc/s")
        if p.eta_s is not None:
            parts.append(f"eta {_fmt_seconds(p.eta_s)}")
        # Identify the run that just resolved: short recipe key + engine
        # keep interleaved fleets tellable-apart in captured logs.
        tail = p.short_key
        if p.engine:
            tail += f"/{p.engine}"
        if p.label:
            tail += f" {p.label}"
        parts.append(tail)
        line = " | ".join(parts)
        pad = max(0, self._last_len - len(line))
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._last_len = len(line)

    def done(self) -> None:
        if self._last_len:
            self.stream.write("\n")
            self.stream.flush()
            self._last_len = 0


def _fmt_seconds(s: float) -> str:
    if s >= 3600:
        return f"{s / 3600:.1f}h"
    if s >= 60:
        return f"{int(s) // 60}m{int(s) % 60:02d}s"
    return f"{s:.0f}s"
