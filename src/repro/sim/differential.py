"""Differential oracle harness: object engine vs fast engine.

The array-state engine (:mod:`repro.sim.fast`) only earns its speed if
it is *bit-identical* to the reference object engine -- same
:class:`~repro.sim.stats.SimStats` and per-core counters, same cycle
count, same energy ledger, same scheme extras, same invariant-audit
outcome and same telemetry stream.  This module runs one
:class:`~repro.sim.parallel.RunRecipe` through both engines and reports
every field that differs, so a single call answers "does the fast
engine still reproduce the oracle on this run?".

Typical use::

    from repro.sim.differential import diff_recipe, diff_grid

    report = diff_recipe(make_recipe(wl, "ziv:notinprc", policy="srrip"))
    assert report.ok, report.summary()

    # the full supported scheme x policy grid on one workload
    reports = diff_grid([wl])
    assert all(r.ok for r in reports)

Determinism note: this module feeds test and CI gates, so it performs
no wall-clock reads (the :mod:`repro.lint` determinism rule covers it);
timing comparisons live in ``benchmarks/bench_fast_engine.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sim.engine import SimResult
from repro.sim.fast import SUPPORTED_POLICIES, SUPPORTED_SCHEMES
from repro.sim.parallel import RunRecipe, make_recipe

#: Canonical grid axes: every scheme/policy pair the fast engine claims.
GRID_SCHEMES: tuple[str, ...] = tuple(sorted(SUPPORTED_SCHEMES))
GRID_POLICIES: tuple[str, ...] = tuple(sorted(SUPPORTED_POLICIES))


@dataclass(frozen=True)
class Divergence:
    """One field where the two engines disagree."""

    field: str
    object_value: str
    fast_value: str

    def __str__(self) -> str:
        return (
            f"{self.field}: object={self.object_value} "
            f"fast={self.fast_value}"
        )


@dataclass
class DiffReport:
    """Outcome of one recipe run through both engines."""

    scheme: str
    policy: str
    workload: str
    directory_mode: str
    divergences: list[Divergence] = field(default_factory=list)
    object_result: Optional[SimResult] = None
    fast_result: Optional[SimResult] = None

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        head = (
            f"differential {self.scheme}/{self.policy}/"
            f"{self.directory_mode} on {self.workload}: "
        )
        if self.ok:
            return head + "identical"
        lines = [head + f"{len(self.divergences)} divergence(s)"]
        lines += [f"  {d}" for d in self.divergences]
        return "\n".join(lines)


def _clip(value) -> str:
    text = repr(value)
    return text if len(text) <= 200 else text[:197] + "..."


def _diff_mapping(prefix: str, a: dict, b: dict, out: list) -> None:
    for key in sorted(set(a) | set(b), key=str):
        va = a.get(key, "<absent>")
        vb = b.get(key, "<absent>")
        if isinstance(va, dict) and isinstance(vb, dict):
            _diff_mapping(f"{prefix}.{key}", va, vb, out)
        elif va != vb:
            out.append(Divergence(f"{prefix}.{key}", _clip(va), _clip(vb)))


def compare_results(obj: SimResult, fast: SimResult) -> list[Divergence]:
    """Every observable field where the two results differ.

    Statistics (including per-core counters), cycle counts, the energy
    ledger, scheme extras, the audit report and the telemetry stream are
    all compared; an empty list means the runs were indistinguishable.
    """
    out: list[Divergence] = []
    _diff_mapping(
        "stats",
        dataclasses.asdict(obj.stats),
        dataclasses.asdict(fast.stats),
        out,
    )
    if obj.cycles != fast.cycles:
        out.append(Divergence("cycles", _clip(obj.cycles),
                              _clip(fast.cycles)))
    if obj.energy is not None or fast.energy is not None:
        ea = dataclasses.asdict(obj.energy) if obj.energy else {}
        eb = dataclasses.asdict(fast.energy) if fast.energy else {}
        _diff_mapping("energy", ea, eb, out)
    _diff_mapping(
        "scheme_stats", obj.scheme_stats or {}, fast.scheme_stats or {}, out
    )
    out.extend(_compare_audit(obj.audit, fast.audit))
    out.extend(_compare_telemetry(obj.telemetry, fast.telemetry))
    return out


def _compare_audit(a, b) -> list[Divergence]:
    if a is None and b is None:
        return []
    if a is None or b is None:
        return [Divergence("audit", _clip(a), _clip(b))]
    out: list[Divergence] = []
    if a.sweeps != b.sweeps:
        out.append(Divergence("audit.sweeps", _clip(a.sweeps),
                              _clip(b.sweeps)))
    if a.truncated != b.truncated:
        out.append(
            Divergence("audit.truncated", _clip(a.truncated),
                       _clip(b.truncated))
        )
    if a.violations != b.violations:
        out.append(
            Divergence(
                "audit.violations",
                _clip([str(v) for v in a.violations]),
                _clip([str(v) for v in b.violations]),
            )
        )
    return out


def _compare_telemetry(a, b) -> list[Divergence]:
    if a is None and b is None:
        return []
    if a is None or b is None:
        return [Divergence("telemetry", _clip(a), _clip(b))]
    out: list[Divergence] = []
    if a.params != b.params:
        out.append(Divergence("telemetry.params", _clip(a.params),
                              _clip(b.params)))
    # TimeSeries has no __eq__; its dict form is the canonical content.
    _diff_mapping(
        "telemetry.series", a.series.to_dict(), b.series.to_dict(), out
    )
    if a.events != b.events:
        out.append(
            Divergence(
                "telemetry.events",
                _clip([str(e) for e in a.events]),
                _clip([str(e) for e in b.events]),
            )
        )
    if a.dropped_events != b.dropped_events:
        out.append(
            Divergence(
                "telemetry.dropped_events",
                _clip(a.dropped_events),
                _clip(b.dropped_events),
            )
        )
    return out


def diff_recipe(recipe: RunRecipe, keep_results: bool = False) -> DiffReport:
    """Run ``recipe`` through both engines and compare everything.

    The recipe's own ``config.engine`` is ignored: one run is forced to
    ``engine="object"`` and one to ``engine="fast"`` (both uncached --
    the persistent result cache is deliberately bypassed so a stale
    cache entry can never mask a divergence)."""
    obj = dataclasses.replace(
        recipe, config=recipe.config.replace(engine="object")
    ).execute()
    fast = dataclasses.replace(
        recipe, config=recipe.config.replace(engine="fast")
    ).execute()
    return DiffReport(
        scheme=recipe.scheme,
        policy=recipe.policy,
        workload=recipe.workload.name,
        directory_mode=recipe.config.directory_mode,
        divergences=compare_results(obj, fast),
        object_result=obj if keep_results else None,
        fast_result=fast if keep_results else None,
    )


def grid_recipes(
    workloads: Sequence,
    schemes: Iterable[str] = GRID_SCHEMES,
    policies: Iterable[str] = GRID_POLICIES,
    directory_modes: Iterable[str] = ("mesi", "zerodev"),
    l2: str = "256KB",
    cores: int = 8,
    audit="end,collect",
    telemetry=None,
) -> list[RunRecipe]:
    """The differential grid: scheme x policy x directory-mode x workload.

    Audit defaults to an end-of-run collecting sweep so every report also
    certifies that *both* engines finish in an invariant-clean state."""
    return [
        make_recipe(
            wl,
            scheme,
            policy=policy,
            l2=l2,
            cores=cores,
            directory_mode=dmode,
            audit=audit,
            telemetry=telemetry,
        )
        for scheme in schemes
        for policy in policies
        for dmode in directory_modes
        for wl in workloads
    ]


def diff_grid(
    workloads: Sequence,
    schemes: Iterable[str] = GRID_SCHEMES,
    policies: Iterable[str] = GRID_POLICIES,
    directory_modes: Iterable[str] = ("mesi", "zerodev"),
    l2: str = "256KB",
    cores: int = 8,
    audit="end,collect",
    telemetry=None,
) -> list[DiffReport]:
    """Run the full differential grid; one report per cell."""
    return [
        diff_recipe(r)
        for r in grid_recipes(
            workloads,
            schemes=schemes,
            policies=policies,
            directory_modes=directory_modes,
            l2=l2,
            cores=cores,
            audit=audit,
            telemetry=telemetry,
        )
    ]


def summarize(reports: Sequence[DiffReport]) -> str:
    """A one-line verdict plus the summary of every diverging cell."""
    bad = [r for r in reports if not r.ok]
    head = (
        f"differential grid: {len(reports)} cell(s), "
        f"{len(bad)} diverging"
    )
    return "\n".join([head] + [r.summary() for r in bad])
