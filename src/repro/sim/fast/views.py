"""Object-protocol views over the fast engine's flat arrays.

The invariant auditor (:mod:`repro.sim.audit`) and the telemetry
collector (:mod:`repro.sim.telemetry`) read hierarchy state through the
object engine's protocol -- ``llc.probe``/``llc.block``/``banks[b].blocks``,
``directory.peek``/``iter_valid``, ``private[c].resident_addrs`` and the
scheme's ``tracker``/``reloc`` attributes.  These views materialise that
protocol on demand from :class:`~repro.sim.fast.engine.FastHierarchy`'s
packed lists, so the *same* audit code validates both engines and the
differential harness can compare audit reports verbatim.

Views are read paths only: block/entry objects are materialised copies,
never the engine's state, so an auditor (which must be side-effect free)
cannot perturb a run through them.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.block import CacheBlock, DirectoryEntry


def _materialize_block(h, pos: int) -> CacheBlock:
    """A CacheBlock copy of the packed LLC state at ``pos``."""
    blk = CacheBlock()
    addr = h.llc_tag[pos]
    if addr >= 0:
        m = h.llc_meta[pos]
        blk.addr = addr
        blk.valid = True
        blk.dirty = bool(m & 1)
        blk.relocated = bool(m & 2)
        blk.not_in_prc = bool(m & 4)
        blk.nru = bool(m & 8)
        blk.rrpv = m >> 4
        blk.stamp = h.llc_stamp[pos]
    return blk


class _PolicyView:
    """The slice of the replacement-policy interface audits consult."""

    __slots__ = ()

    max_rrpv = 7


class _LazySetBlocks:
    """``cache.blocks`` of one bank: a sequence of per-set block lists,
    materialised set-by-set as the auditor indexes or iterates."""

    __slots__ = ("_h", "_bank")

    def __init__(self, h, bank: int) -> None:
        self._h = h
        self._bank = bank

    def __len__(self) -> int:
        return self._h.llc_spb

    def __getitem__(self, set_idx: int) -> list[CacheBlock]:
        h = self._h
        if not (0 <= set_idx < h.llc_spb):
            raise IndexError(set_idx)
        base = (self._bank * h.llc_spb + set_idx) * h.llc_ways
        return [_materialize_block(h, base + w) for w in range(h.llc_ways)]

    def __iter__(self) -> Iterator[list[CacheBlock]]:
        for set_idx in range(self._h.llc_spb):
            yield self[set_idx]


class FastBankView:
    """One LLC bank: ``.blocks`` plus the policy's ``max_rrpv``."""

    __slots__ = ("blocks", "policy")

    def __init__(self, h, bank: int) -> None:
        self.blocks = _LazySetBlocks(h, bank)
        self.policy = _PolicyView()


class FastLLCView:
    """The audit/telemetry face of the packed LLC."""

    def __init__(self, h) -> None:
        self._h = h
        self.geometry = h.config.llc
        self.policy_name = h.policy_name
        self.banks = [FastBankView(h, b) for b in range(h.llc_banks)]

    def bank_of(self, addr: int) -> int:
        return addr & self._h.llc_bank_mask

    def set_of(self, addr: int) -> int:
        h = self._h
        return (addr >> h.llc_bank_bits) & h.llc_set_mask

    def probe(self, addr: int) -> int:
        """Way of a non-relocated home-set copy, -1 if absent (relocated
        copies are invisible, as in the object LLC's probe)."""
        h = self._h
        pos = h.llc_map.get(addr, -1)
        if pos >= 0 and not (h.llc_meta[pos] & 2):
            return pos % h.llc_ways
        return -1

    def location(self, addr: int) -> tuple[int, int, int]:
        h = self._h
        bank = addr & h.llc_bank_mask
        set_idx = (addr >> h.llc_bank_bits) & h.llc_set_mask
        return bank, set_idx, self.probe(addr)

    def block(self, bank: int, set_idx: int, way: int) -> CacheBlock:
        h = self._h
        return _materialize_block(
            h, (bank * h.llc_spb + set_idx) * h.llc_ways + way
        )

    def resident_addrs(self) -> set[int]:
        return set(self._h.llc_map)

    def occupancy(self) -> int:
        return len(self._h.llc_map)

    @property
    def blocks_total(self) -> int:
        return self.geometry.blocks


class FastDirectoryView:
    """The audit/telemetry face of the flat sparse directory."""

    def __init__(self, h) -> None:
        self._h = h

    def _entry_at(self, pos: int) -> DirectoryEntry:
        h = self._h
        e = DirectoryEntry()
        e.addr = h.d_addr[pos]
        e.valid = True
        e.sharers = h.d_sharers[pos]
        e.owner = h.d_owner[pos]
        e.nru = h.d_nru[pos]
        rp = h.d_reloc[pos]
        if rp >= 0:
            e.relocated = True
            e.reloc_bank = rp // h.bank_size
            e.reloc_set = (rp // h.llc_ways) % h.llc_spb
            e.reloc_way = rp % h.llc_ways
        return e

    def peek(self, addr: int) -> Optional[DirectoryEntry]:
        """Side-effect-free lookup (no NRU touch) for audits."""
        pos = self._h.d_map.get(addr, -1)
        return self._entry_at(pos) if pos >= 0 else None

    def iter_valid(self) -> Iterator[DirectoryEntry]:
        h = self._h
        d_addr = h.d_addr
        for pos in range(h.d_slice_size):
            if d_addr[pos] >= 0:
                yield self._entry_at(pos)
        # ZeroDEV spill entries follow in insertion order, mirroring the
        # object directory's spill-dict iteration.
        for pos in h.d_spill_addrs.values():
            yield self._entry_at(pos)

    def occupancy(self) -> int:
        return len(self._h.d_map)

    def tracked_count(self) -> int:
        return len(self._h.d_map)

    @property
    def spill_count(self) -> int:
        return self._h.spill_count

    @property
    def mode(self) -> str:
        return self._h.config.directory_mode


class FastPrivateView:
    """One core's private hierarchy as the audit protocol sees it."""

    __slots__ = ("_h", "core")

    def __init__(self, h, core: int) -> None:
        self._h = h
        self.core = core

    def resident_addrs(self) -> set[int]:
        h = self._h
        return set(h._l1s[self.core].map) | set(h._l2s[self.core].map)

    def in_l1(self, addr: int) -> bool:
        return addr in self._h._l1s[self.core].map

    def in_l2(self, addr: int) -> bool:
        return addr in self._h._l2s[self.core].map

    def has_block(self, addr: int) -> bool:
        return self.in_l1(addr) or self.in_l2(addr)


class _TrackerView:
    """PropertyTracker facade: the audits and gauges only read
    ``properties`` and ``pvs`` (the real PropertyVector objects)."""

    __slots__ = ("properties", "pvs")

    def __init__(self, properties: tuple, pvs: list) -> None:
        self.properties = properties
        self.pvs = pvs


class FastSchemeView:
    """InclusionScheme facade driving on_stats/audit/telemetry hooks."""

    def __init__(self, h) -> None:
        self._h = h
        self.name = h.scheme_name
        self.inclusive = h.inclusive
        self.zero_inclusion_victims = h._ziv
        self.needs_char = False
        if h._ziv:
            self.tracker = _TrackerView(h._ladder, h._pvs)
            self.reloc = h._reloc
        else:
            self.tracker = None
            self.reloc = None

    def on_stats(self) -> dict:
        h = self._h
        if not h._ziv:
            return {}
        reloc = h._reloc
        pv_flips = sum(
            pv.flips for bank in h._pvs for pv in bank.values()
        )
        return {
            "property_hits": dict(h.stats.property_hits),
            "pv_flips": pv_flips,
            "reloc_intervals": reloc.intervals_recorded,
            "interval_histogram": dict(reloc.interval_log2_histogram),
            "short_intervals": reloc.short_intervals,
            "fifo_peak": reloc.fifo_peak,
            "fifo_overflows": reloc.fifo_overflows,
        }
