"""Array-state fast simulation engine.

A second implementation of the CMP hierarchy that stores all cache,
directory and ZIV state in flat Python lists (tags, bit-packed metadata,
address->position maps) instead of per-block objects.  It reproduces the
object engine's counters, audit state and telemetry bit-for-bit -- the
differential harness in :mod:`repro.sim.differential` enforces this --
while running several times faster, which makes dense sweeps practical.

Select it with ``SystemConfig(engine="fast")`` or ``--engine fast``.
"""

from repro.sim.fast.engine import (
    SUPPORTED_POLICIES,
    SUPPORTED_SCHEMES,
    FastHierarchy,
    UnsupportedConfigError,
    supports,
)

__all__ = [
    "FastHierarchy",
    "UnsupportedConfigError",
    "supports",
    "SUPPORTED_POLICIES",
    "SUPPORTED_SCHEMES",
]
